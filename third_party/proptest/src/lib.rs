//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the `proptest!`
//! macro (including `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! `prop_assert*`, range / tuple / `any::<T>()` strategies, `prop_map`,
//! `collection::vec`, and `option::of`. Test cases are sampled from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly run-to-run. There is no shrinking: a failing case
//! reports the sampled inputs via the assertion message instead.

#![allow(clippy::all)]

use std::fmt;

pub mod test_runner {
    use std::fmt;

    /// Failure raised by `prop_assert*`; carried as `Err` through the test
    /// body closure.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Per-test deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so each test draws an independent but
        /// reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Run configuration; only the case count is meaningful here.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always-`value` strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<E>` with length drawn from `len`.
    pub struct VecStrategy<E> {
        elem: E,
        len: Range<usize>,
    }

    /// `vec(elem, len_range)`: vectors of `elem`-generated values.
    pub fn vec<E: Strategy>(elem: E, len: Range<usize>) -> VecStrategy<E> {
        VecStrategy { elem, len }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, `None` about a quarter of the time
    /// (matching upstream's default weighting closely enough for tests).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod prelude {
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// `Debug`-format a sampled input for failure messages.
pub fn describe_input(name: &str, value: &dyn fmt::Debug) -> String {
    format!("{} = {:?}", name, value)
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            a
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No rejection machinery: an assumption miss just skips the case.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    // With an explicit config: `#![proptest_config(expr)]` first.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                let __inputs = [$($crate::describe_input(stringify!($arg), &$arg)),+].join(", ");
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1, __cfg.cases, e, __inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in crate::collection::vec(0u32..5, 0..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() < 9);
            for e in v {
                prop_assert!(e < 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honored(pair in (0u64..4, any::<bool>()), opt in crate::option::of(1u8..3)) {
            prop_assert!(pair.0 < 4);
            if let Some(o) = opt {
                prop_assert_eq!(o / 1, o);
                prop_assert!(o >= 1 && o < 3);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..20);
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn prop_map_applies() {
        use crate::strategy::Strategy;
        let s = (1u32..3, 1u32..3, 1u32..3).prop_map(|(a, b, c)| a + b + c);
        let mut rng = crate::test_runner::TestRng::deterministic("m");
        for _ in 0..20 {
            let v = s.sample(&mut rng);
            assert!((3..=6).contains(&v));
        }
    }
}
