//! Offline stand-in for the `rand` crate.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64, the
//! same construction the real crate uses for its 64-bit `SmallRng`) plus the
//! [`Rng`]/[`SeedableRng`] trait subset the workspace touches. Streams are
//! high-quality and fully deterministic for a given seed; they are not
//! bit-compatible with upstream `rand` (nothing in this repo depends on the
//! exact stream, only on reproducibility).

#![allow(clippy::all)]

/// Low-level generator interface.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed; equal seeds yield equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain (or `[0,1)` for floats),
/// standing in for upstream's `Standard` distribution.
pub trait SampleStandard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1), matching upstream's convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the rejection loop is
                // entered with probability < span / 2^64.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= threshold {
                        return self.start + hi as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of `T` uniformly (integers over the full domain,
    /// floats in `[0,1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform over a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state is a fixed point of xoshiro; SplitMix64 can
            // only produce it with negligible probability, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_range(0u64..7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
