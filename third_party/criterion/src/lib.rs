//! Offline stand-in for `criterion`.
//!
//! Supports the bench surface this workspace uses: `Criterion::default()`
//! with `sample_size` / `warm_up_time` / `measurement_time` builders,
//! `bench_function`, `Bencher::iter`, `black_box`, and both forms of
//! `criterion_group!` plus `criterion_main!`. Benches run for the configured
//! measurement window and print the mean wall-clock time per iteration —
//! no statistics, plots, or HTML reports.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench harness configuration and registry.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up: run once to page everything in, untimed.
        f(&mut b);
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        let budget = self.measurement;
        let start = Instant::now();
        let mut samples = 0usize;
        while samples < self.sample_size && start.elapsed() < budget {
            f(&mut b);
            samples += 1;
        }
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!("{:<40} {:>12.3?}/iter ({} iters)", name, per_iter, b.iters);
        self
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated runs of `f`.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // A modest fixed batch: these benches measure millisecond-scale
        // simulations, so per-iteration timer overhead is negligible.
        const BATCH: u64 = 4;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Declare a bench group; both the simple and the `name/config/targets`
/// forms of the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }
}
