//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace patches `bytes` to this crate (see `[patch.crates-io]` in the
//! root manifest). It implements exactly the subset the runtime uses: a
//! cheaply-cloneable immutable byte container ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the [`BufMut`] write helpers. Semantics match the real
//! crate for that subset (e.g. `put_u16`/`put_u32`/`put_u64` are big-endian,
//! the `_le` variants little-endian), so swapping the real dependency back in
//! is a one-line manifest change.

#![allow(clippy::all)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheaply cloneable, logically contiguous, immutable slice of memory.
///
/// Clones share one reference-counted allocation; [`Bytes::slice`] produces a
/// zero-copy view into the same allocation. The backing store is an
/// `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that `Bytes::from(vec)` and
/// [`BytesMut::freeze`] take ownership of the vector's allocation instead of
/// re-copying it — the simulators freeze every encoded envelope, so this is
/// on the per-message hot path.
///
/// In addition to the contiguous form, [`Bytes::chained`] concatenates two
/// `Bytes` without copying either (a two-part rope). Dereferencing a chain
/// as `&[u8]` flattens it lazily — once per chain, cached, shared by
/// clones — but `len`, `clone`, and any `slice` that falls entirely inside
/// one part stay zero-copy. This is a deliberate extension over the real
/// `bytes` crate (see `chained` for the migration note).
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Repr {
    Contig(Arc<Vec<u8>>),
    Chain(Arc<Chain>),
}

struct Chain {
    head: Bytes,
    tail: Bytes,
    /// Lazily flattened copy, built the first time a chain is dereferenced
    /// as a contiguous `&[u8]`; shared by all clones of the chain.
    flat: OnceLock<Vec<u8>>,
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chain")
            .field("head", &self.head)
            .field("tail", &self.tail)
            .finish()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Bytes {
    /// An empty `Bytes`.
    #[inline]
    pub fn new() -> Self {
        Bytes {
            repr: Repr::Contig(Arc::new(Vec::new())),
            start: 0,
            end: 0,
        }
    }

    /// Zero-copy concatenation: the result reads as `head` followed by
    /// `tail`, sharing both allocations.
    ///
    /// Divergence from the real `bytes` crate (which has no owned rope
    /// type): when swapping the real dependency back in, replace calls
    /// with an explicit copy-concat (`[&head[..], &tail[..]].concat()`) —
    /// contents are identical, only the host-side copy returns.
    pub fn chained(head: Bytes, tail: Bytes) -> Self {
        if head.is_empty() {
            return tail;
        }
        if tail.is_empty() {
            return head;
        }
        let end = head.len() + tail.len();
        Bytes {
            repr: Repr::Chain(Arc::new(Chain {
                head,
                tail,
                flat: OnceLock::new(),
            })),
            start: 0,
            end,
        }
    }

    /// Wrap a static slice. (The stand-in copies once at construction; the
    /// contents are identical and the workspace only uses this for short
    /// header literals.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copy `data` into a fresh allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Number of bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same allocation. On a chain, a
    /// range that falls entirely inside one part resolves to that part's
    /// contiguous backing (this is how envelope decode gets the payload
    /// back out of a chained wire buffer without flattening it).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        let (start, end) = (self.start + lo, self.start + hi);
        if let Repr::Chain(c) = &self.repr {
            let hl = c.head.len();
            if end <= hl {
                return c.head.slice(start..end);
            }
            if start >= hl {
                return c.tail.slice(start - hl..end - hl);
            }
        }
        Bytes {
            repr: self.repr.clone(),
            start,
            end,
        }
    }

    /// Recover the backing `Vec` when this handle is the sole owner of a
    /// contiguous, un-sliced buffer — the recycling fast path for pooled
    /// send buffers (`Bytes::from(vec)` out, `try_reclaim` back in, zero
    /// allocation per round trip). Returns the handle unchanged in the
    /// `Err` when the buffer is shared, chained, or a sub-slice.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { repr, start, end } = self;
        match repr {
            Repr::Contig(arc) if start == 0 && end == arc.len() => {
                Arc::try_unwrap(arc).map_err(|arc| Bytes {
                    repr: Repr::Contig(arc),
                    start,
                    end,
                })
            }
            repr => Err(Bytes { repr, start, end }),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        match &self.repr {
            Repr::Contig(data) => &data[self.start..self.end],
            Repr::Chain(c) => {
                let flat = c.flat.get_or_init(|| {
                    let mut v = Vec::with_capacity(c.head.len() + c.tail.len());
                    v.extend_from_slice(&c.head);
                    v.extend_from_slice(&c.tail);
                    v
                });
                &flat[self.start..self.end]
            }
        }
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of the vector's allocation — no copy.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            repr: Repr::Contig(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A growable byte buffer; freeze it into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[inline]
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with room for `cap` bytes.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::ops::DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", &self.vec)
    }
}

/// Write-side helpers, matching the endianness conventions of the real
/// `bytes` crate (`put_uN` big-endian, `put_*_le` little-endian).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_slice(&[val]);
        }
    }

    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }

    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    fn put_f64_le(&mut self, n: f64) {
        self.put_slice(&n.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.vec.resize(self.vec.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..).len(), 3);
    }

    #[test]
    fn bufmut_endianness_matches_real_bytes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u16(0x0102);
        m.put_u64_le(0x0807060504030201);
        let b = m.freeze();
        assert_eq!(&b[..2], &[0x01, 0x02]);
        assert_eq!(&b[2..10], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn put_bytes_fills() {
        let mut m = BytesMut::new();
        m.put_bytes(0xAB, 3);
        assert_eq!(&m[..], &[0xAB, 0xAB, 0xAB]);
    }

    #[test]
    fn chained_reads_as_concatenation() {
        let c = Bytes::chained(Bytes::from(vec![1, 2, 3]), Bytes::from(vec![4, 5]));
        assert_eq!(c.len(), 5);
        assert_eq!(&c[..], &[1, 2, 3, 4, 5]);
        // Deref again: flattened cache path.
        assert_eq!(&c[..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn chained_slice_within_one_part_is_that_part() {
        let head = Bytes::from(vec![1, 2, 3]);
        let tail = Bytes::from(vec![4, 5, 6, 7]);
        let c = Bytes::chained(head, tail);
        assert_eq!(&c.slice(..3)[..], &[1, 2, 3]);
        assert_eq!(&c.slice(3..)[..], &[4, 5, 6, 7]);
        assert_eq!(&c.slice(4..6)[..], &[5, 6]);
        // A spanning slice still reads correctly.
        assert_eq!(&c.slice(2..5)[..], &[3, 4, 5]);
    }

    #[test]
    fn chained_with_empty_parts_collapses() {
        let b = Bytes::from(vec![9, 8]);
        assert_eq!(&Bytes::chained(Bytes::new(), b.clone())[..], &[9, 8]);
        assert_eq!(&Bytes::chained(b, Bytes::new())[..], &[9, 8]);
    }

    #[test]
    fn chained_clones_share_the_flatten() {
        let c = Bytes::chained(Bytes::from(vec![1; 64]), Bytes::from(vec![2; 64]));
        let d = c.clone();
        assert_eq!(c, d);
        assert_eq!(d.slice(60..70).len(), 10);
    }

    #[test]
    fn nested_chains_flatten() {
        let inner = Bytes::chained(Bytes::from(vec![1]), Bytes::from(vec![2]));
        let outer = Bytes::chained(inner, Bytes::from(vec![3]));
        assert_eq!(&outer[..], &[1, 2, 3]);
    }

    #[test]
    fn try_reclaim_recovers_sole_contiguous_allocation() {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(&[1, 2, 3]);
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        let back = b.try_reclaim().expect("sole owner reclaims");
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(back.as_ptr(), ptr, "same allocation, no copy");
        assert!(back.capacity() >= 64);
    }

    #[test]
    fn try_reclaim_refuses_shared_sliced_and_chained() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let clone = b.clone();
        let b = b.try_reclaim().expect_err("shared buffer stays shared");
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        drop(clone);

        let s = b.slice(1..3);
        assert_eq!(&s.try_reclaim().expect_err("sub-slice")[..], &[2, 3]);

        let c = Bytes::chained(Bytes::from(vec![1; 8]), Bytes::from(vec![2; 8]));
        assert_eq!(c.try_reclaim().expect_err("chain").len(), 16);
    }

    #[test]
    fn try_reclaim_succeeds_once_clones_drop() {
        let b = Bytes::from(vec![7; 5]);
        drop(b.clone());
        assert_eq!(b.try_reclaim().expect("sole again"), vec![7; 5]);
    }
}
