//! No-op derive macros backing the offline `serde` stand-in.
//!
//! Each derive scans the item's top-level tokens for the `struct`/`enum`
//! keyword, takes the following identifier as the type name, and emits an
//! empty marker-trait impl. Generic types are not supported (none of the
//! workspace's serde-derived types are generic); deriving on one is a compile
//! error pointing here rather than a silent misbehavior.

#![allow(clippy::all)]

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        assert!(
                            p.as_char() != '<',
                            "serde stand-in derives do not support generic types"
                        );
                    }
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde stand-in derive: no struct/enum name found");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Serialize for {} {{}}", type_name(input))
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Deserialize for {} {{}}", type_name(input))
        .parse()
        .unwrap()
}
