//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its configuration types
//! so they are wire-ready when a real serializer is linked, but no serializer
//! crate is part of the build (and the build environment is offline). This
//! stand-in supplies the two traits as markers plus derive macros that emit
//! empty impls, keeping every `#[derive(Serialize, Deserialize)]` site
//! compiling unchanged. Swapping the real `serde` back in is a one-line
//! manifest change; no call sites move.

#![allow(clippy::all)]

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
