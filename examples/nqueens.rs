//! N-Queens example: exact parallel state-space search over the simulated
//! machine, on both machine layers, checked against the known counts.
//!
//! ```text
//! cargo run --release -p charm-examples --bin nqueens [-- N [threshold] [pes]]
//! ```

use charm_apps::nqueens::{known_solutions, run_nqueens, NqConfig, WorkMode};
use charm_apps::LayerKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let threshold: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let pes: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(48);

    println!("{n}-Queens, threshold {threshold}, {pes} PEs (24 cores/node)\n");
    let cfg = NqConfig {
        n,
        threshold,
        mode: WorkMode::Exact { ns_per_node: 120 },
        seed: 1,
    };
    for layer in [LayerKind::ugni(), LayerKind::mpi()] {
        let r = run_nqueens(&layer, pes, 24.min(pes), &cfg);
        println!(
            "{:<22} solutions {:>10}  tasks {:>8}  nodes {:>12}  time {:>10}  busy {:.1}%",
            layer.name(),
            r.solutions,
            r.tasks,
            r.nodes,
            sim_core::time::fmt(r.time_ns),
            r.utilization.0 * 100.0
        );
        if let Some(expect) = known_solutions(n) {
            assert_eq!(r.solutions, expect, "wrong count on {}", layer.name());
        }
    }
    println!("\ncounts verified against the known N-Queens sequence.");
}
