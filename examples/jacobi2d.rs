//! Jacobi 2D example: a 5-point Laplace stencil on a chare array with
//! real ghost exchanges over the simulated network, verified against the
//! sequential solver.
//!
//! ```text
//! cargo run --release -p charm-examples --bin jacobi2d [-- N [blocks] [iters]]
//! ```

use charm_apps::jacobi2d::{jacobi_sequential, run_jacobi, JacobiConfig};
use charm_apps::LayerKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(96);
    let blocks: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let iters: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);

    let cfg = JacobiConfig { n, blocks, iters };
    println!("Jacobi 2D: {n}x{n} grid, {blocks}x{blocks} blocks, {iters} iterations\n");

    for layer in [LayerKind::ugni(), LayerKind::mpi()] {
        let r = run_jacobi(&layer, 16, 4, &cfg);
        println!(
            "{:<22} residual {:>12.6e}  virtual time {:>10}",
            layer.name(),
            r.residual,
            sim_core::time::fmt(r.time_ns)
        );
    }

    let r = run_jacobi(&LayerKind::ugni(), 16, 4, &cfg);
    let (seq, _) = jacobi_sequential(n, iters);
    let max_diff = r
        .grid
        .iter()
        .zip(&seq)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |parallel - sequential| = {max_diff:e}");
    assert_eq!(max_diff, 0.0, "parallel result must be bitwise identical");
    println!("parallel result is bitwise identical to the sequential sweep.");
}
