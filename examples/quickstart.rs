//! Quickstart: bring up a simulated Cray XE6 job, register a handler, and
//! bounce a message across nodes over the uGNI machine layer.
//!
//! ```text
//! cargo run --release -p charm-examples --bin quickstart
//! ```

use charm_rt::prelude::*;
use lrts_ugni::{UgniConfig, UgniLayer};

fn main() {
    // 8 PEs, 2 cores per node -> 4 simulated Gemini nodes.
    let cfg = ClusterCfg::new(8, 2);
    let mut cluster = Cluster::new(cfg, Box::new(UgniLayer::new(UgniConfig::optimized())));

    // A Converse handler: forward the token to the next PE, stop after one
    // full circle.
    let relay = cluster.register_handler(|ctx, env| {
        let hops = wire::unpack_u64(&env.payload, 0);
        println!(
            "PE {:>2} (node {}) got the token at t = {}",
            ctx.pe(),
            ctx.node(),
            sim_core::time::fmt(ctx.now()),
        );
        if hops == 0 {
            ctx.stop();
            return;
        }
        ctx.charge(2_000); // pretend to compute for 2 us
        let next = (ctx.pe() + 1) % ctx.num_pes();
        ctx.send(next, env.handler, wire::pack_u64s(&[hops - 1]));
    });

    cluster.inject(0, 0, relay, wire::pack_u64s(&[8]));
    let report = cluster.run();

    println!("\ndone at t = {}", sim_core::time::fmt(report.end_time));
    println!(
        "messages: {} sent / {} delivered; handler executions: {}",
        report.stats.msgs_sent, report.stats.msgs_delivered, report.stats.handlers_run
    );
    let (busy, ovh, idle) = cluster.trace().utilization(None);
    println!(
        "utilization: {:.1}% busy, {:.1}% runtime overhead, {:.1}% idle",
        busy * 100.0,
        ovh * 100.0,
        idle * 100.0
    );
    assert!(report.stopped_early, "token never completed the ring");
}
