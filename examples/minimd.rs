//! miniMD example: the NAMD-like molecular-dynamics proxy (patches,
//! pairwise computes, PME-like global phase every step) on both machine
//! layers.
//!
//! ```text
//! cargo run --release -p charm-examples --bin minimd [-- atoms [cores] [steps]]
//! ```

use charm_apps::minimd::{run_minimd, MdConfig, System};
use charm_apps::LayerKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let atoms: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(System::Dhfr.atoms());
    let cores: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(96);
    let steps: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);

    let mut cfg = MdConfig::for_system(System::Dhfr, steps);
    cfg.atoms = atoms;

    println!("miniMD: {atoms} atoms on {cores} cores, {steps} steps, PME every step\n");
    for layer in [LayerKind::ugni(), LayerKind::mpi()] {
        let r = run_minimd(&layer, cores, 24.min(cores), &cfg);
        println!(
            "{:<22} {:>8.3} ms/step  ({} patches, busy {:.1}%, overhead {:.1}%)",
            layer.name(),
            r.ms_per_step,
            r.patches,
            r.utilization.0 * 100.0,
            r.utilization.1 * 100.0
        );
    }
}
