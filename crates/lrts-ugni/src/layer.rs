//! The uGNI machine layer (paper §III-C and §IV).
//!
//! Protocols implemented here, mapped to the paper:
//!
//! * **Small messages** (≤ SMSG limit): `GNI_SmsgSendWTag` with per-
//!   connection credits; the receiver drains its mailbox from the progress
//!   engine and hands copies to Converse (§III-C).
//! * **Large messages**: the GET-based rendezvous of Fig. 5 — the sender
//!   registers its buffer and ships a small `INIT_TAG` control message with
//!   the memory handle; the receiver allocates + registers a landing
//!   buffer, posts an FMA or BTE **GET** (by size), and on completion sends
//!   `ACK_TAG` back so the sender can free. Cost without the pool is
//!   exactly the paper's Equation 1.
//! * **Memory pool** (§IV-B): message buffers come from a pre-registered
//!   pool, removing `T_malloc + T_register` from both sides.
//! * **Persistent messages** (§IV-A, Fig. 7a): a pre-registered receive
//!   buffer lets the sender **PUT** directly and follow with one
//!   `PERSISTENT_TAG` notification — `T_cost = T_rdma + T_smsg`.
//! * **Intra-node pxshm** (§IV-C): double- or single-copy shared-memory
//!   delivery that bypasses the NIC entirely.

use crate::config::{IntraNode, SmallPath, UgniConfig};
use bytes::{BufMut, Bytes, BytesMut};
use charm_rt::cluster::MachineCtx;
use charm_rt::lrts::{MachineLayer, PersistentHandle};
use charm_rt::msg::PeId;
use gemini_net::{Addr, MemHandle, RdmaOp};
use mempool::{Block, MemPool};
use sim_core::{LazyVec, Time};
use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use ugni::{CqEvent, CqHandle, EpHandle, Gni, GniError, GniResult, PostDescriptor, SmsgSendOk};

// With the `verify` feature every uGNI call goes through the CheckedGni
// contract verifier; signatures are identical, so only the stored type
// changes. CheckedGni derefs to Gni for the read-only surface.
#[cfg(not(feature = "verify"))]
use ugni::Gni as LGni;
#[cfg(feature = "verify")]
use ugni_verify::CheckedGni as LGni;

const TAG_SMALL: u8 = 0;
const TAG_INIT: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_PERSIST: u8 = 3;

/// First retry delay after a fabric transaction error, virtual ns.
const RETRY_BACKOFF0: Time = 1_000;
/// Exponential backoff cap.
const RETRY_BACKOFF_MAX: Time = 65_536;

fn next_backoff(b: Time) -> Time {
    if b == 0 {
        RETRY_BACKOFF0
    } else {
        (b * 2).min(RETRY_BACKOFF_MAX)
    }
}

/// Bytes of the per-message sequence header prepended on the small path
/// when a fault plan is active (receiver-side duplicate suppression).
const SEQ_HDR: usize = 8;

/// Machine-layer event payloads (driven through `MachineCtx::schedule`).
enum Ev {
    /// Drain this PE's SMSG mailbox.
    PollSmsg,
    /// Drain this node's shared MSGQ (the event's PE does the software
    /// demultiplexing for its node).
    PollMsgq,
    /// Drain this PE's transaction CQ.
    PollCq,
    /// Credits may have freed on the connection to `peer`: retry queued
    /// sends.
    Retry { peer: PeId },
    /// Sender-side buffer prepared; ship the rendezvous INIT control
    /// message (fires after T_malloc+T_register / pool alloc).
    StartRendezvous { xid: u64 },
    /// Receiver-side landing buffer ready; post the GET.
    PostGet { xid: u64 },
    /// A persistent PUT completed locally; notify the receiver.
    PersistPutDone { xid: u64 },
    /// A persistent PUT failed in the fabric; post it again (chaos mode).
    RepostPut { xid: u64 },
    /// A pxshm message becomes visible to the receiver.
    ShmArrive { data: Bytes, copy_out: bool },
}

/// A buffer obtained either from the pool or via malloc+register.
enum Buf {
    Pooled(Block),
    Direct { addr: Addr, handle: MemHandle },
}

impl Buf {
    fn addr(&self) -> Addr {
        match self {
            Buf::Pooled(b) => b.addr,
            Buf::Direct { addr, .. } => *addr,
        }
    }

    fn handle(&self) -> MemHandle {
        match self {
            Buf::Pooled(b) => b.handle,
            Buf::Direct { handle, .. } => *handle,
        }
    }
}

struct PendingSend {
    src_pe: PeId,
    dst_pe: PeId,
    buf: Buf,
    bytes: u64,
}

struct PendingRecv {
    dst_pe: PeId,
    src_pe: PeId,
    buf: Buf,
    bytes: u64,
    remote_handle: MemHandle,
    remote_addr: Addr,
    /// Current retry backoff; nonzero once the GET has faulted.
    backoff: Time,
}

/// An in-flight persistent PUT being tracked for fabric-error recovery
/// (chaos mode only; fault-free runs use the direct `PersistPutDone` path).
struct PendingPut {
    handle: PersistentHandle,
    src_pe: PeId,
    dst_pe: PeId,
    bytes: u64,
    backoff: Time,
}

/// Small/control messages parked behind exhausted credits or a faulted
/// transaction on one connection, FIFO, with a single armed retry timer.
#[derive(Default)]
struct ConnBacklog {
    q: VecDeque<(u8, Bytes)>,
    armed: bool,
    /// Current transaction-error backoff (0 = healthy connection).
    backoff: Time,
}

struct PersistChan {
    src_pe: PeId,
    dst_pe: PeId,
    max_bytes: u64,
    /// Pre-registered receive buffer on the destination (paper Fig. 7a).
    remote: Buf,
    /// Pre-registered send buffer on the source.
    local: Buf,
}

#[derive(Debug, Default, Clone)]
pub struct UgniStats {
    pub small_msgs: u64,
    pub rendezvous_msgs: u64,
    pub persistent_msgs: u64,
    pub shm_msgs: u64,
    pub credit_retries: u64,
    pub bytes: u64,
    /// SMP mode: protocol CPU time absorbed by the per-node comm threads
    /// instead of worker PEs.
    pub comm_thread_ns: Time,
    /// Small-path sends that failed in the fabric and were re-sent.
    pub send_faults: u64,
    /// FMA/BTE transactions that failed and were re-posted.
    pub rdma_faults: u64,
    /// CQ overruns recovered via resync.
    pub cq_resyncs: u64,
    /// Direct-path registrations that hit NIC resource exhaustion and fell
    /// back to the pre-registered pool.
    pub reg_fallbacks: u64,
    /// Duplicate small-path messages suppressed by the receiver (resends
    /// after a corrupted-completion delivery).
    pub dup_drops: u64,
    /// Sends and re-posts abandoned because the peer's node is inside a
    /// crash window it never leaves (retrying forever would wedge the
    /// connection; the FT layer above re-drives delivery after recovery).
    pub dead_peer_drops: u64,
    /// Total CPU time charged as fault recovery.
    pub recovery_ns: Time,
}

/// Materialization grain for per-PE poll state (24 B per PE here; a
/// sparse job touching scattered PEs should not pay 24 KiB pages).
const POLL_PAGE: usize = 64;

/// The machine layer object.
pub struct UgniLayer {
    cfg: UgniConfig,
    gni: Option<LGni>,
    /// One transaction CQ per PE, created on the PE's first traffic (a
    /// whole-machine job at Hopper scale must not allocate 150k+ CQs up
    /// front when a run touches a fraction of them; handles are opaque,
    /// so first-touch creation order is unobservable).
    cqs: BTreeMap<PeId, CqHandle>,
    /// Lazily created endpoints per (src_pe, dst_pe).
    eps: HashMap<(PeId, PeId), EpHandle>,
    /// One message pool per PE (per process, as in non-SMP Charm++),
    /// created on first allocation from the PE's fixed address window.
    pools: BTreeMap<PeId, MemPool>,
    /// Per-connection send backlog (credit exhaustion + fabric faults).
    backlog: HashMap<(PeId, PeId), ConnBacklog>,
    sends: HashMap<u64, PendingSend>,
    recvs: HashMap<u64, PendingRecv>,
    persists: HashMap<PersistentHandle, PersistChan>,
    /// In-flight persistent payloads keyed by xid.
    persist_data: HashMap<u64, (Bytes, PeId)>,
    /// Persistent PUTs awaiting a CQ completion (chaos mode only).
    persist_pending: HashMap<u64, PendingPut>,
    /// True when the configured fault plan can inject anything. All
    /// recovery bookkeeping that would perturb timing (sequence headers,
    /// CQ-reaped PUT completions) is gated on this so fault-free runs stay
    /// bit-identical to the pre-chaos code.
    chaos: bool,
    /// Next small-path sequence number per connection (chaos mode).
    seq_tx: HashMap<(PeId, PeId), u64>,
    /// Sequence numbers already delivered per connection (chaos mode).
    seq_seen: HashMap<(PeId, PeId), HashSet<u64>>,
    /// SMP mode: per-node comm-thread availability.
    comm_busy: Vec<Time>,
    /// Earliest armed poll event per PE (coalescing: one in-flight
    /// PollSmsg/PollMsgq/PollCq each; u64::MAX = none armed). Paged lazily
    /// at a small grain ([`POLL_PAGE`]): the disarmed state IS the
    /// default, so idle PEs cost nothing, and sparse jobs touching
    /// scattered PEs materialize little around each.
    poll_armed: LazyVec<[Time; 3], POLL_PAGE>,
    next_xid: u64,
    pub stats: UgniStats,
}

impl UgniLayer {
    pub fn new(cfg: UgniConfig) -> Self {
        let chaos = cfg.params.fault.is_active();
        UgniLayer {
            cfg,
            gni: None,
            cqs: BTreeMap::new(),
            eps: HashMap::new(),
            pools: BTreeMap::new(),
            backlog: HashMap::new(),
            sends: HashMap::new(),
            recvs: HashMap::new(),
            persists: HashMap::new(),
            persist_data: HashMap::new(),
            persist_pending: HashMap::new(),
            chaos,
            seq_tx: HashMap::new(),
            seq_seen: HashMap::new(),
            comm_busy: Vec::new(),
            poll_armed: LazyVec::new(0, [Time::MAX; 3]),
            next_xid: 0,
            stats: UgniStats::default(),
        }
    }

    /// Charge `ns` of protocol processing for `pe`'s traffic. In non-SMP
    /// mode this is worker-PE overhead (the progress engine runs inside
    /// the process); in SMP mode the per-node comm thread absorbs it.
    /// Returns the time at which the processing completes.
    fn charge_comm(&mut self, ctx: &mut MachineCtx, pe: PeId, ns: Time) -> Time {
        if !self.cfg.smp {
            ctx.charge_overhead(pe, ns);
            return ctx.pe_free_at(pe).max(ctx.now());
        }
        let node = ctx.node_of(pe) as usize;
        let start = self.comm_busy[node].max(ctx.now());
        self.comm_busy[node] = start + ns;
        self.stats.comm_thread_ns += ns;
        start + ns
    }

    /// Like [`UgniLayer::charge_comm`] but accounted as fault recovery:
    /// retries, CQ resyncs, and registration fallbacks land in the trace's
    /// recovery category instead of ordinary overhead.
    fn charge_rec(&mut self, ctx: &mut MachineCtx, pe: PeId, ns: Time) -> Time {
        self.stats.recovery_ns += ns;
        if !self.cfg.smp {
            ctx.charge_recovery(pe, ns);
            return ctx.pe_free_at(pe).max(ctx.now());
        }
        let node = ctx.node_of(pe) as usize;
        let start = self.comm_busy[node].max(ctx.now());
        self.comm_busy[node] = start + ns;
        self.stats.comm_thread_ns += ns;
        start + ns
    }

    /// Schedule a progress poll for `pe`'s traffic, coalescing with any
    /// already-armed poll of the same kind (the drain loops process every
    /// ready message, so one in-flight poll per PE suffices — without
    /// this, deferred duplicate polls pile up quadratically on busy PEs).
    /// In SMP mode the comm thread polls regardless of worker business.
    fn schedule_poll(&mut self, ctx: &mut MachineCtx, at: Time, pe: PeId, ev: Ev) {
        let at = at.max(ctx.now());
        let kind = match ev {
            Ev::PollSmsg => 0,
            Ev::PollMsgq => 1,
            Ev::PollCq => 2,
            // panic-ok: callers pass poll events only — a misuse is a code bug
            _ => unreachable!("schedule_poll on a non-poll event"),
        };
        if at >= self.poll_armed.get(pe as usize)[kind] {
            return; // the armed poll will see this message too
        }
        self.poll_armed.get_mut(pe as usize)[kind] = at;
        if self.cfg.smp {
            ctx.schedule_nodefer(at, pe, Box::new(ev));
        } else {
            ctx.schedule(at, pe, Box::new(ev));
        }
    }

    /// Mark a poll kind as disarmed (called on drain entry). Skips the
    /// write when already disarmed so cold pages stay unmaterialized.
    fn disarm(&mut self, pe: PeId, kind: usize) {
        if self.poll_armed.get(pe as usize)[kind] != Time::MAX {
            self.poll_armed.get_mut(pe as usize)[kind] = Time::MAX;
        }
    }

    /// Base of `pe`'s fixed mempool address window. Purely a function of
    /// the PE id, so a lazily created pool is identical to an eager one.
    /// Windows are 2^40 bytes starting at 2^62: large enough for any
    /// pool's simulated slabs, clear of the per-node bump windows at
    /// `(node + 1) << 44`, and — unlike a wider spacing — overflow-free
    /// up to 4M PEs (`2^62 + 2^22 * 2^40 < 2^63`).
    fn pool_base(pe: PeId) -> u64 {
        (1u64 << 62) + ((pe as u64) << 40)
    }

    /// The PE's transaction CQ, created on first touch.
    fn cq(&mut self, pe: PeId) -> CqHandle {
        if let Some(&cq) = self.cqs.get(&pe) {
            return cq;
        }
        let cq = self.gni_mut().cq_create();
        self.cqs.insert(pe, cq);
        cq
    }

    pub fn gni(&self) -> &Gni {
        self.gni.as_ref().expect("layer not initialized")
    }

    /// Contract-verifier findings for this layer's uGNI instance.
    /// `Some` only when built with the `verify` feature.
    #[cfg(feature = "verify")]
    pub fn contract_report(&self) -> Option<ugni_verify::ContractReport> {
        self.gni.as_ref().map(|g| g.report())
    }

    #[cfg(not(feature = "verify"))]
    pub fn contract_report(&self) -> Option<ugni_verify::ContractReport> {
        None
    }

    fn gni_mut(&mut self) -> &mut LGni {
        // panic-ok: init() runs before any traffic; absence is a harness bug
        self.gni.as_mut().expect("layer not initialized")
    }

    fn ep(&mut self, ctx: &MachineCtx, src_pe: PeId, dst_pe: PeId) -> EpHandle {
        if let Some(&ep) = self.eps.get(&(src_pe, dst_pe)) {
            return ep;
        }
        let cq = self.cq(src_pe);
        let (sn, dn) = (ctx.node_of(src_pe), ctx.node_of(dst_pe));
        let ep = self
            .gni_mut()
            .ep_create_inst(sn, src_pe, dn, dst_pe, cq)
            // panic-ok: CQ handles and node ids are fixed at init
            .expect("ep bind: CQ and nodes fixed at init");
        self.eps.insert((src_pe, dst_pe), ep);
        ep
    }

    /// Allocate a message buffer on `pe`'s node: pool or malloc+register.
    /// Returns the buffer and the CPU cost.
    fn alloc_buf(&mut self, ctx: &MachineCtx, pe: PeId, bytes: u64) -> (Buf, Time) {
        let node = ctx.node_of(pe);
        let params = self.cfg.params.clone();
        if self.cfg.use_mempool {
            let gni = self.gni.as_mut().expect("init");
            let reg = gni.fabric_mut().reg_table(node);
            let pool = self
                .pools
                .entry(pe)
                .or_insert_with(|| MemPool::new(Self::pool_base(pe)));
            let (block, cost) = pool.alloc(&params, reg, bytes);
            (Buf::Pooled(block), cost)
        } else {
            let gni = self.gni.as_mut().expect("init");
            let addr = gni.alloc_addr(node).expect("node within job");
            let malloc = params.malloc_cost(bytes);
            match gni.mem_register(node, addr, bytes) {
                Ok((handle, reg_cost)) => (Buf::Direct { addr, handle }, malloc + reg_cost),
                Err(_) => {
                    // Transient NIC memory-descriptor exhaustion
                    // (GNI_RC_ERROR_RESOURCE): fall back to the
                    // pre-registered pool so the transfer still proceeds.
                    self.stats.reg_fallbacks += 1;
                    let reg = gni.fabric_mut().reg_table(node);
                    let pool = self
                        .pools
                        .entry(pe)
                        .or_insert_with(|| MemPool::new(Self::pool_base(pe)));
                    let (block, cost) = pool.alloc(&params, reg, bytes);
                    (Buf::Pooled(block), malloc + cost)
                }
            }
        }
    }

    /// Free a message buffer; returns the CPU cost (deregister+free for the
    /// direct path, a pool push for the pooled path).
    fn free_buf(&mut self, ctx: &MachineCtx, pe: PeId, buf: Buf) -> Time {
        let node = ctx.node_of(pe);
        let params = self.cfg.params.clone();
        match buf {
            Buf::Pooled(block) => {
                let gni = self.gni.as_mut().expect("init");
                gni.mem_clear(node, block.addr);
                let reg = gni.fabric_mut().reg_table(node);
                self.pools
                    .entry(pe)
                    .or_insert_with(|| MemPool::new(Self::pool_base(pe)))
                    .free(&params, reg, block)
            }
            Buf::Direct { addr, handle } => {
                let gni = self.gni.as_mut().expect("init");
                gni.mem_clear(node, addr);
                // A stale handle is a bookkeeping bug, not a fabric fault:
                // charge nothing extra and keep going.
                gni.mem_deregister(node, handle).unwrap_or(0) + params.malloc_base
            }
        }
    }

    /// Queue-or-send a tagged SMSG on a connection, preserving FIFO order
    /// behind any credit backlog. `earliest` is when this message's own
    /// preparation is done (a burst of rendezvous preps must not make each
    /// control message wait for the *sum* of all preps).
    fn smsg(
        &mut self,
        ctx: &mut MachineCtx,
        src_pe: PeId,
        dst_pe: PeId,
        tag: u8,
        data: Bytes,
        earliest: Time,
    ) {
        // Chaos mode: frame every small-path message with a per-connection
        // sequence number so the receiver can suppress the duplicates that
        // corrupted-completion resends produce (exactly-once delivery).
        let data = if self.chaos {
            let ctr = self.seq_tx.entry((src_pe, dst_pe)).or_default();
            let seq = *ctr;
            *ctr += 1;
            let mut b = BytesMut::with_capacity(SEQ_HDR + data.len());
            b.put_u64(seq);
            b.put_slice(&data);
            b.freeze()
        } else {
            data
        };
        let key = (src_pe, dst_pe);
        if self.backlog.get(&key).is_some_and(|b| !b.q.is_empty()) {
            self.backlog.get_mut(&key).unwrap().q.push_back((tag, data));
            return;
        }
        self.try_smsg(ctx, src_pe, dst_pe, tag, data, earliest);
    }

    /// Attempt one SMSG (or MSGQ message, by configuration); on credit
    /// exhaustion or a fabric fault, park it and arm a retry timer.
    fn try_smsg(
        &mut self,
        ctx: &mut MachineCtx,
        src_pe: PeId,
        dst_pe: PeId,
        tag: u8,
        data: Bytes,
        earliest: Time,
    ) {
        let ep = self.ep(ctx, src_pe, dst_pe);
        let now = earliest.max(ctx.now());
        let use_msgq = self.cfg.small_path == SmallPath::Msgq;
        let res = if use_msgq {
            self.gni_mut().msgq_send_w_tag(now, ep, tag, data.clone())
        } else {
            self.gni_mut().smsg_send_w_tag(now, ep, tag, data.clone())
        };
        self.smsg_result(ctx, src_pe, dst_pe, tag, data, now, use_msgq, res, false);
    }

    /// Park a small-path message on its connection backlog (front for
    /// in-order retries, back for fresh sends) and make sure exactly one
    /// retry timer is armed for the connection.
    #[allow(clippy::too_many_arguments)]
    fn park_and_arm(
        &mut self,
        ctx: &mut MachineCtx,
        src_pe: PeId,
        peer: PeId,
        tag: u8,
        data: Bytes,
        at: Time,
        front: bool,
    ) {
        let e = self.backlog.entry((src_pe, peer)).or_default();
        if front {
            e.q.push_front((tag, data));
        } else {
            e.q.push_back((tag, data));
        }
        if !e.armed {
            e.armed = true;
            // Retries interleave with other machine-layer work (the
            // progress engine runs between protocol steps), so they must
            // not defer behind long overhead windows.
            ctx.schedule_nodefer(at, src_pe, Box::new(Ev::Retry { peer }));
        }
    }

    /// Shared outcome handling for every small-path send attempt (fresh
    /// sends and backlog retries, SMSG and MSGQ). Returns true when the
    /// message went out.
    #[allow(clippy::too_many_arguments)]
    fn smsg_result(
        &mut self,
        ctx: &mut MachineCtx,
        src_pe: PeId,
        dst_pe: PeId,
        tag: u8,
        data: Bytes,
        now: Time,
        use_msgq: bool,
        res: GniResult<SmsgSendOk>,
        front: bool,
    ) -> bool {
        match res {
            Ok(ok) => {
                self.charge_comm(ctx, src_pe, ok.cpu);
                let ev: Ev = if use_msgq { Ev::PollMsgq } else { Ev::PollSmsg };
                self.schedule_poll(ctx, ok.deliver_at, dst_pe, ev);
                if let Some(b) = self.backlog.get_mut(&(src_pe, dst_pe)) {
                    b.backoff = 0;
                }
                true
            }
            Err(GniError::NoCredits { retry_at }) => {
                self.stats.credit_retries += 1;
                let at = retry_at.max(now + 1);
                self.park_and_arm(ctx, src_pe, dst_pe, tag, data, at, front);
                false
            }
            Err(GniError::TransactionError {
                cpu,
                error_at,
                delivered_at,
                ..
            }) => {
                // The fabric lost or corrupted the message. The send CPU
                // was burned either way; if the payload landed anyway
                // (corrupted completion) wake the receiver so it drains —
                // the re-send becomes a duplicate its dedup filter drops.
                self.stats.send_faults += 1;
                self.charge_rec(ctx, src_pe, cpu);
                if let Some(t) = delivered_at {
                    let ev: Ev = if use_msgq { Ev::PollMsgq } else { Ev::PollSmsg };
                    self.schedule_poll(ctx, t, dst_pe, ev);
                }
                let backoff = {
                    let e = self.backlog.entry((src_pe, dst_pe)).or_default();
                    e.backoff = next_backoff(e.backoff);
                    e.backoff
                };
                let at = error_at.max(now) + backoff;
                if self
                    .cfg
                    .params
                    .fault
                    .node_dead_forever(ctx.node_of(dst_pe), at)
                {
                    // The peer is gone and never coming back: retrying
                    // forever would wedge the connection. Give up; with FT
                    // enabled the rollback-replay path regenerates the
                    // message for whichever PE adopts the destination.
                    self.stats.dead_peer_drops += 1;
                    return false;
                }
                self.park_and_arm(ctx, src_pe, dst_pe, tag, data, at, front);
                false
            }
            // panic-ok: non-credit smsg errors are protocol bugs, not faults
            Err(e) => panic!("small-path send failed: {e:?}"),
        }
    }

    fn conn_retry(&mut self, ctx: &mut MachineCtx, src_pe: PeId, peer: PeId) {
        if let Some(b) = self.backlog.get_mut(&(src_pe, peer)) {
            b.armed = false;
        }
        loop {
            let Some(b) = self.backlog.get_mut(&(src_pe, peer)) else {
                return;
            };
            let Some((tag, data)) = b.q.pop_front() else {
                return;
            };
            let ep = self.ep(ctx, src_pe, peer);
            let now = ctx.pe_free_at(src_pe).max(ctx.now());
            let use_msgq = self.cfg.small_path == SmallPath::Msgq;
            let res = if use_msgq {
                self.gni_mut().msgq_send_w_tag(now, ep, tag, data.clone())
            } else {
                self.gni_mut().smsg_send_w_tag(now, ep, tag, data.clone())
            };
            if !self.smsg_result(ctx, src_pe, peer, tag, data, now, use_msgq, res, true) {
                return;
            }
        }
    }

    fn rendezvous_start(&mut self, ctx: &mut MachineCtx, xid: u64) {
        let (src_pe, dst_pe, bytes, addr, handle) = {
            let p = self.sends.get(&xid).expect("unknown rendezvous xid");
            (p.src_pe, p.dst_pe, p.bytes, p.buf.addr(), p.buf.handle())
        };
        // INIT_TAG control message: xid, size, memory handle + address of
        // the sender buffer (paper Fig. 5).
        let mut b = BytesMut::with_capacity(33);
        b.put_u8(TAG_INIT);
        b.put_u64(xid);
        b.put_u64(bytes);
        b.put_u64(handle.0);
        b.put_u64(addr.0);
        // The SR event fires exactly when this message's buffer prep is
        // done, so the control message departs now.
        let at = ctx.now();
        self.smsg(ctx, src_pe, dst_pe, TAG_INIT, b.freeze(), at);
    }

    fn handle_init(&mut self, ctx: &mut MachineCtx, dst_pe: PeId, src_pe: PeId, ctrl: &Bytes) {
        let xid = u64::from_be_bytes(ctrl[1..9].try_into().unwrap());
        let bytes = u64::from_be_bytes(ctrl[9..17].try_into().unwrap());
        let handle = MemHandle(u64::from_be_bytes(ctrl[17..25].try_into().unwrap()));
        let addr = Addr(u64::from_be_bytes(ctrl[25..33].try_into().unwrap()));
        // Allocate the landing buffer (T_malloc + T_register, or the pool).
        let (buf, cost) = self.alloc_buf(ctx, dst_pe, bytes);
        let ready = self.charge_comm(ctx, dst_pe, cost);
        self.recvs.insert(
            xid,
            PendingRecv {
                dst_pe,
                src_pe,
                buf,
                bytes,
                remote_handle: handle,
                remote_addr: addr,
                backoff: 0,
            },
        );
        // Post the GET once the buffer is ready (after the charge).
        let at = if self.cfg.smp {
            ready.max(ctx.now())
        } else {
            ctx.pe_free_at(dst_pe).max(ctx.now())
        };
        ctx.schedule_nodefer(at, dst_pe, Box::new(Ev::PostGet { xid }));
    }

    fn post_get(&mut self, ctx: &mut MachineCtx, xid: u64) {
        let (dst_pe, src_pe, bytes, local_mem, local_addr, remote_mem, remote_addr, backoff) = {
            let r = self.recvs.get(&xid).expect("unknown recv xid");
            (
                r.dst_pe,
                r.src_pe,
                r.bytes,
                r.buf.handle(),
                r.buf.addr(),
                r.remote_handle,
                r.remote_addr,
                r.backoff,
            )
        };
        let ep = self.ep(ctx, dst_pe, src_pe);
        let now = ctx.pe_free_at(dst_pe).max(ctx.now());
        let desc = PostDescriptor {
            op: RdmaOp::Get,
            local_mem,
            local_addr,
            remote_mem,
            remote_addr,
            bytes,
            data: None,
            user_id: xid,
        };
        let use_fma = bytes <= self.cfg.fma_bte_threshold && bytes <= self.cfg.params.fma_max_bytes;
        let ok = if use_fma {
            self.gni_mut().post_fma(now, ep, desc)
        } else {
            self.gni_mut().post_rdma(now, ep, desc)
        }
        .expect("rendezvous GET rejected");
        if backoff > 0 {
            // This is a re-post after a fabric fault: the CPU is recovery
            // work, not steady-state protocol overhead.
            self.charge_rec(ctx, dst_pe, ok.cpu);
        } else {
            self.charge_comm(ctx, dst_pe, ok.cpu);
        }
        self.schedule_poll(ctx, ok.local_cq_at, dst_pe, Ev::PollCq);
    }

    fn drain_cq(&mut self, ctx: &mut MachineCtx, pe: PeId) {
        self.disarm(pe, 2);
        let cq = self.cq(pe);
        loop {
            let now = ctx.now();
            let poll_cost = self.gni().cq_poll_cost();
            match self.gni_mut().cq_get_event(cq, now) {
                Ok(CqEvent::PostDone { user_id, op, data }) => {
                    self.charge_comm(ctx, pe, poll_cost);
                    match op {
                        RdmaOp::Get => self.get_done(ctx, user_id, data),
                        // Persistent PUT completions are normally consumed
                        // by the PersistPutDone event and this is a no-op;
                        // under chaos the pending table is authoritative
                        // because the PUT may have been re-posted.
                        RdmaOp::Put => self.put_done(ctx, pe, user_id),
                    }
                }
                Ok(CqEvent::SmsgRx { .. }) => {
                    // SMSG arrivals are drained via PollSmsg.
                }
                Ok(CqEvent::PostError { user_id, op, .. }) => {
                    self.stats.rdma_faults += 1;
                    self.charge_rec(ctx, pe, poll_cost);
                    self.repost_after_error(ctx, pe, user_id, op);
                }
                Err(GniError::NotDone) => {
                    self.charge_comm(ctx, pe, poll_cost);
                    if let Some(t) = self.gni().cq_next_ready(cq) {
                        self.schedule_poll(ctx, t, pe, Ev::PollCq);
                    }
                    return;
                }
                Err(GniError::CqOverrun) => {
                    // The CQ dropped completions. Resync: audit outstanding
                    // transactions, recover the lost events, keep draining.
                    let (cost, _n) = self
                        .gni_mut()
                        .cq_resync(cq, now)
                        .expect("cq resync on a healthy queue");
                    self.stats.cq_resyncs += 1;
                    self.charge_rec(ctx, pe, cost);
                }
                Err(e) => panic!("cq poll failed: {e:?}"),
            }
        }
    }

    /// A fabric-failed FMA/BTE transaction: schedule a re-post with capped
    /// exponential backoff in virtual time.
    fn repost_after_error(&mut self, ctx: &mut MachineCtx, pe: PeId, xid: u64, op: RdmaOp) {
        // A fault for a transfer no longer tracked (already completed or
        // cancelled) is stale; recovery absorbs it rather than aborting.
        match op {
            RdmaOp::Get => {
                let Some(r) = self.recvs.get_mut(&xid) else {
                    return;
                };
                r.backoff = next_backoff(r.backoff);
                let at = ctx.now() + r.backoff;
                // The GET pulls from the sender's memory: a sender node
                // that is down for good can never serve it. Abandon the
                // transfer instead of re-posting forever.
                let peer = r.src_pe;
                if self
                    .cfg
                    .params
                    .fault
                    .node_dead_forever(ctx.node_of(peer), at)
                {
                    self.stats.dead_peer_drops += 1;
                    self.recvs.remove(&xid);
                    return;
                }
                ctx.schedule_nodefer(at, pe, Box::new(Ev::PostGet { xid }));
            }
            RdmaOp::Put => {
                let Some(p) = self.persist_pending.get_mut(&xid) else {
                    return;
                };
                p.backoff = next_backoff(p.backoff);
                let at = ctx.now() + p.backoff;
                let peer = p.dst_pe;
                if self
                    .cfg
                    .params
                    .fault
                    .node_dead_forever(ctx.node_of(peer), at)
                {
                    self.stats.dead_peer_drops += 1;
                    self.persist_pending.remove(&xid);
                    self.persist_data.remove(&xid);
                    return;
                }
                ctx.schedule_nodefer(at, pe, Box::new(Ev::RepostPut { xid }));
            }
        }
    }

    /// A persistent PUT completed on the CQ. No-op in fault-free runs (the
    /// direct PersistPutDone event already notified); in chaos mode this is
    /// where the receiver-side notification is finally sent.
    fn put_done(&mut self, ctx: &mut MachineCtx, pe: PeId, xid: u64) {
        if self.persist_pending.remove(&xid).is_none() {
            return;
        }
        let dst_pe = self
            .persist_data
            .get(&xid)
            .expect("persist PUT done without data")
            .1;
        let mut b = BytesMut::with_capacity(9);
        b.put_u8(TAG_PERSIST);
        b.put_u64(xid);
        let at = ctx.now();
        self.smsg(ctx, pe, dst_pe, TAG_PERSIST, b.freeze(), at);
    }

    /// Re-post a fabric-failed persistent PUT (chaos mode). The payload is
    /// still held in `persist_data`, the channel buffers are permanent, so
    /// the descriptor can be rebuilt exactly.
    fn repost_put(&mut self, ctx: &mut MachineCtx, xid: u64) {
        // Stale re-post (transfer completed meanwhile): absorb, don't abort.
        let Some((handle, src_pe, dst_pe, bytes)) = self
            .persist_pending
            .get(&xid)
            .map(|p| (p.handle, p.src_pe, p.dst_pe, p.bytes))
        else {
            return;
        };
        let Some((local_mem, local_addr, remote_mem, remote_addr)) =
            self.persists.get(&handle).map(|chan| {
                (
                    chan.local.handle(),
                    chan.local.addr(),
                    chan.remote.handle(),
                    chan.remote.addr(),
                )
            })
        else {
            return;
        };
        let Some(data) = self.persist_data.get(&xid).map(|d| d.0.clone()) else {
            return;
        };
        let ep = self.ep(ctx, src_pe, dst_pe);
        let desc = PostDescriptor {
            op: RdmaOp::Put,
            local_mem,
            local_addr,
            remote_mem,
            remote_addr,
            bytes,
            data: Some(data),
            user_id: xid,
        };
        let now = ctx.now();
        let use_fma = bytes <= self.cfg.fma_bte_threshold && bytes <= self.cfg.params.fma_max_bytes;
        let ok = match if use_fma {
            self.gni_mut().post_fma(now, ep, desc)
        } else {
            self.gni_mut().post_rdma(now, ep, desc)
        } {
            Ok(ok) => ok,
            Err(_) => {
                // The NIC rejected the re-post (e.g. transiently invalid
                // handle); back off and try again instead of panicking.
                let backoff = {
                    let Some(p) = self.persist_pending.get_mut(&xid) else {
                        return;
                    };
                    p.backoff = next_backoff(p.backoff);
                    p.backoff
                };
                self.stats.rdma_faults += 1;
                ctx.schedule_nodefer(now + backoff, src_pe, Box::new(Ev::RepostPut { xid }));
                return;
            }
        };
        self.charge_rec(ctx, src_pe, ok.cpu);
        self.schedule_poll(ctx, ok.local_cq_at, src_pe, Ev::PollCq);
    }

    fn get_done(&mut self, ctx: &mut MachineCtx, xid: u64, data: Option<Bytes>) {
        let r = self.recvs.remove(&xid).expect("GET done for unknown xid");
        let data = data.expect("GET completed without data — sender buffer missing");
        debug_assert_eq!(data.len() as u64, r.bytes);
        // ACK so the sender can free (paper Fig. 5).
        let mut b = BytesMut::with_capacity(9);
        b.put_u8(TAG_ACK);
        b.put_u64(xid);
        let at = ctx.pe_free_at(r.dst_pe).max(ctx.now());
        self.smsg(ctx, r.dst_pe, r.src_pe, TAG_ACK, b.freeze(), at);
        // Hand the buffer to Converse (no copy — the runtime owns it).
        ctx.deliver_now(r.dst_pe, data);
        // The app consumes the message; return the landing buffer.
        let cost = self.free_buf(ctx, r.dst_pe, r.buf);
        self.charge_comm(ctx, r.dst_pe, cost);
    }

    fn handle_ack(&mut self, ctx: &mut MachineCtx, ctrl: &Bytes) {
        let xid = u64::from_be_bytes(ctrl[1..9].try_into().unwrap());
        let p = self.sends.remove(&xid).expect("ACK for unknown xid");
        let cost = self.free_buf(ctx, p.src_pe, p.buf);
        self.charge_comm(ctx, p.src_pe, cost);
    }

    fn drain_msgq(&mut self, ctx: &mut MachineCtx, pe: PeId) {
        self.disarm(pe, 1);
        let node = ctx.node_of(pe);
        loop {
            let now = ctx.now();
            match self.gni_mut().msgq_get_next_w_tag(node, now) {
                Ok((rx, dst_inst)) => {
                    // The drainer (worker or comm thread) pays the
                    // demultiplex cost; the message belongs to `dst_inst`.
                    self.charge_comm(ctx, pe, rx.cpu);
                    self.process_small(ctx, dst_inst, rx);
                }
                Err(GniError::NotDone) => {
                    // Coalescing: suppressed polls mean pending future
                    // arrivals need a fresh wake-up.
                    if let Some(t) = self.gni().msgq_next_arrival(node) {
                        self.schedule_poll(ctx, t, pe, Ev::PollMsgq);
                    }
                    return;
                }
                Err(e) => panic!("msgq drain failed: {e:?}"),
            }
        }
    }

    fn drain_smsg(&mut self, ctx: &mut MachineCtx, pe: PeId) {
        self.disarm(pe, 0);
        let node = ctx.node_of(pe);
        loop {
            let now = ctx.now();
            match self.gni_mut().smsg_get_next_w_tag(node, pe, now) {
                Ok(rx) => {
                    self.charge_comm(ctx, pe, rx.cpu);
                    self.process_small(ctx, pe, rx);
                }
                Err(GniError::NotDone) => {
                    if let Some(t) = self.gni().smsg_next_arrival(node, pe) {
                        self.schedule_poll(ctx, t, pe, Ev::PollSmsg);
                    }
                    return;
                }
                Err(e) => panic!("smsg drain failed: {e:?}"),
            }
        }
    }

    /// Handle one received small-path message addressed to `pe`.
    fn process_small(&mut self, ctx: &mut MachineCtx, pe: PeId, rx: ugni::SmsgRecv) {
        // Chaos mode: strip the sequence header and drop duplicates (a
        // corrupted completion delivers the payload AND makes the sender
        // re-send — dedup restores exactly-once delivery).
        let data = if self.chaos {
            let seq = u64::from_be_bytes(rx.data[..SEQ_HDR].try_into().unwrap());
            if !self.seq_seen.entry((rx.from, pe)).or_default().insert(seq) {
                self.stats.dup_drops += 1;
                return;
            }
            rx.data.slice(SEQ_HDR..)
        } else {
            rx.data.clone()
        };
        match rx.tag {
            TAG_SMALL => {
                // Copy out of the mailbox into a runtime buffer. Small
                // buffers are never registered: the pool path pays a
                // free-list hit, the direct path a plain malloc.
                let len = data.len() as u64;
                let cost = if self.cfg.use_mempool {
                    let params = self.cfg.params.clone();
                    let node = ctx.node_of(pe);
                    let gni = self.gni.as_mut().expect("init");
                    let reg = gni.fabric_mut().reg_table(node);
                    let pool = self
                        .pools
                        .entry(pe)
                        .or_insert_with(|| MemPool::new(Self::pool_base(pe)));
                    let (b, c1) = pool.alloc(&params, reg, len);
                    let c2 = pool.free(&params, reg, b);
                    c1 + c2
                } else {
                    self.cfg.params.malloc_cost(len) + self.cfg.params.malloc_base
                };
                let done = self.charge_comm(ctx, pe, cost);
                ctx.deliver_at(done.max(ctx.now()), pe, data);
            }
            TAG_INIT => {
                let from = rx.from;
                self.handle_init(ctx, pe, from, &data);
            }
            TAG_ACK => self.handle_ack(ctx, &data),
            TAG_PERSIST => {
                let xid = u64::from_be_bytes(data[1..9].try_into().unwrap());
                let (data, dst_pe) = self
                    .persist_data
                    .remove(&xid)
                    .expect("persistent notify without data");
                debug_assert_eq!(dst_pe, pe);
                ctx.deliver_at(ctx.now(), pe, data);
            }
            t => panic!("unknown small-path tag {t}"),
        }
    }

    fn send_shm(&mut self, ctx: &mut MachineCtx, src_pe: PeId, dst_pe: PeId, msg: Bytes) {
        self.stats.shm_msgs += 1;
        let params = &self.cfg.params;
        let copy = params.memcpy_cost(msg.len() as u64);
        // Sender: lock/allocate a region in the shared segment + copy in.
        ctx.charge_overhead(src_pe, self.cfg.shm_overhead + copy);
        let copy_out = self.cfg.intranode == IntraNode::PxshmDoubleCopy;
        let at = ctx.now() + self.cfg.shm_overhead + copy + self.cfg.shm_notice;
        ctx.schedule(
            at,
            dst_pe,
            Box::new(Ev::ShmArrive {
                data: msg,
                copy_out,
            }),
        );
    }
}

impl MachineLayer for UgniLayer {
    fn name(&self) -> &'static str {
        "uGNI"
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn lookahead(&self) -> Time {
        self.cfg.params.conservative_lookahead()
    }

    fn init(&mut self, ctx: &mut MachineCtx) {
        // Per-PE structures (CQs, mempools, arming state) are created
        // lazily on first touch: init stays O(nodes), not O(PEs), so a
        // Hopper-scale machine costs nothing for the PEs a run never uses.
        let gni = LGni::new(self.cfg.params.clone(), ctx.num_nodes());
        self.comm_busy = vec![0; ctx.num_nodes() as usize];
        self.poll_armed = LazyVec::new(ctx.num_pes() as usize, [Time::MAX; 3]);
        self.gni = Some(gni);
    }

    fn sync_send(&mut self, ctx: &mut MachineCtx, src_pe: PeId, dst_pe: PeId, msg: Bytes) {
        debug_assert_ne!(src_pe, dst_pe, "self-sends bypass the machine layer");
        self.stats.bytes += msg.len() as u64;
        ctx.count_send(msg.len() as u64);

        let same_node = ctx.node_of(src_pe) == ctx.node_of(dst_pe);
        if same_node && self.cfg.smp {
            // SMP: workers share the address space — pass the pointer.
            self.stats.shm_msgs += 1;
            ctx.charge_overhead(src_pe, self.cfg.smp_handoff);
            ctx.deliver_at(ctx.now() + self.cfg.smp_handoff, dst_pe, msg);
            return;
        }
        if same_node && self.cfg.intranode != IntraNode::NetworkLoopback {
            self.send_shm(ctx, src_pe, dst_pe, msg);
            return;
        }
        if self.cfg.smp {
            // Worker hands the message to the node's comm thread.
            ctx.charge_overhead(src_pe, self.cfg.smp_handoff);
        }

        // Chaos mode frames small messages with a sequence header; keep
        // the framed message within the mailbox limit.
        let mut limit = self.gni().smsg_limit() as usize;
        if self.chaos {
            limit = limit.saturating_sub(SEQ_HDR);
        }
        if msg.len() <= limit {
            self.stats.small_msgs += 1;
            let at = ctx.pe_free_at(src_pe).max(ctx.now());
            self.smsg(ctx, src_pe, dst_pe, TAG_SMALL, msg, at);
            return;
        }

        // Large path: GET-based rendezvous (paper Fig. 5).
        self.stats.rendezvous_msgs += 1;
        let bytes = msg.len() as u64;
        let (buf, cost) = self.alloc_buf(ctx, src_pe, bytes);
        // The message content moves into the registered send buffer.
        let node = ctx.node_of(src_pe);
        self.gni_mut().mem_write(node, buf.addr(), msg);
        let xid = self.next_xid;
        self.next_xid += 1;
        self.sends.insert(
            xid,
            PendingSend {
                src_pe,
                dst_pe,
                buf,
                bytes,
            },
        );
        let ready = self.charge_comm(ctx, src_pe, cost);
        // Control message departs once the buffer is prepared (exactly
        // then: the preparation cost was just charged).
        let at = if self.cfg.smp {
            ready.max(ctx.now())
        } else {
            ctx.pe_free_at(src_pe).max(ctx.now())
        };
        ctx.schedule_nodefer(at, src_pe, Box::new(Ev::StartRendezvous { xid }));
    }

    fn on_event(&mut self, ctx: &mut MachineCtx, pe: PeId, ev: Box<dyn Any + Send>) {
        let ev = *ev.downcast::<Ev>().expect("foreign machine event");
        match ev {
            Ev::PollSmsg => self.drain_smsg(ctx, pe),
            Ev::PollMsgq => self.drain_msgq(ctx, pe),
            Ev::PollCq => self.drain_cq(ctx, pe),
            Ev::Retry { peer } => self.conn_retry(ctx, pe, peer),
            Ev::StartRendezvous { xid } => self.rendezvous_start(ctx, xid),
            Ev::PostGet { xid } => self.post_get(ctx, xid),
            Ev::RepostPut { xid } => self.repost_put(ctx, xid),
            Ev::PersistPutDone { xid } => {
                let dst_pe = self
                    .persist_data
                    .get(&xid)
                    .expect("persist PUT done without data")
                    .1;
                let mut b = BytesMut::with_capacity(9);
                b.put_u8(TAG_PERSIST);
                b.put_u64(xid);
                let at = ctx.now();
                self.smsg(ctx, pe, dst_pe, TAG_PERSIST, b.freeze(), at);
            }
            Ev::ShmArrive { data, copy_out } => {
                let mut cost = self.cfg.shm_overhead;
                if copy_out {
                    cost += self.cfg.params.memcpy_cost(data.len() as u64);
                }
                ctx.charge_overhead(pe, cost);
                ctx.deliver_now(pe, data);
            }
        }
    }

    fn create_persistent(
        &mut self,
        ctx: &mut MachineCtx,
        src_pe: PeId,
        dst_pe: PeId,
        max_bytes: u64,
        handle: PersistentHandle,
    ) {
        // Both sides' persistent buffers, registered once. (The set-up
        // handshake cost is charged here; steady-state sends never pay it.)
        let (remote, rcost) = self.alloc_buf(ctx, dst_pe, max_bytes);
        ctx.charge_overhead(dst_pe, rcost);
        let (local, lcost) = self.alloc_buf(ctx, src_pe, max_bytes);
        ctx.charge_overhead(src_pe, lcost + self.cfg.params.smsg_send_cpu);
        self.persists.insert(
            handle,
            PersistChan {
                src_pe,
                dst_pe,
                max_bytes,
                remote,
                local,
            },
        );
    }

    fn send_persistent(
        &mut self,
        ctx: &mut MachineCtx,
        handle: PersistentHandle,
        src_pe: PeId,
        dst_pe: PeId,
        msg: Bytes,
    ) {
        let Some(chan) = self.persists.get(&handle) else {
            // No channel: fall back to the ordinary path.
            self.sync_send(ctx, src_pe, dst_pe, msg);
            return;
        };
        assert!(msg.len() as u64 <= chan.max_bytes, "persistent overflow");
        assert_eq!((chan.src_pe, chan.dst_pe), (src_pe, dst_pe));
        let bytes = msg.len() as u64;
        let local_mem = chan.local.handle();
        let local_addr = chan.local.addr();
        let remote_mem = chan.remote.handle();
        let remote_addr = chan.remote.addr();
        self.stats.persistent_msgs += 1;
        self.stats.bytes += bytes;
        ctx.count_send(bytes);

        let xid = self.next_xid;
        self.next_xid += 1;
        self.persist_data.insert(xid, (msg.clone(), dst_pe));

        // "the sender can directly put its message data into the
        // persistent buffer" — no malloc, no registration, no control
        // message (paper §IV-A).
        let ep = self.ep(ctx, src_pe, dst_pe);
        let desc = PostDescriptor {
            op: RdmaOp::Put,
            local_mem,
            local_addr,
            remote_mem,
            remote_addr,
            bytes,
            data: Some(msg),
            user_id: xid,
        };
        let now = ctx.now();
        let use_fma = bytes <= self.cfg.fma_bte_threshold && bytes <= self.cfg.params.fma_max_bytes;
        let ok = if use_fma {
            self.gni_mut().post_fma(now, ep, desc)
        } else {
            self.gni_mut().post_rdma(now, ep, desc)
        }
        .expect("persistent PUT rejected");
        self.charge_comm(ctx, src_pe, ok.cpu);
        if self.chaos {
            // Reap the completion from the CQ so a PostError can trigger a
            // re-post; the fault-free direct event would wrongly notify
            // the receiver of a PUT that never landed.
            self.persist_pending.insert(
                xid,
                PendingPut {
                    handle,
                    src_pe,
                    dst_pe,
                    bytes,
                    backoff: 0,
                },
            );
            self.schedule_poll(ctx, ok.local_cq_at, src_pe, Ev::PollCq);
        } else {
            ctx.schedule_nodefer(ok.local_cq_at, src_pe, Box::new(Ev::PersistPutDone { xid }));
        }
    }

    fn node_fault(&mut self, ctx: &mut MachineCtx, node: gemini_net::NodeId) {
        // The node's NIC died with its memory. Armed polls point at
        // progress events the runtime will drop for the dead PEs; left
        // set, they would suppress every poll the node's fresh
        // incarnation needs, wedging its connections forever.
        for pe in 0..ctx.num_pes() {
            if ctx.node_of(pe) == node && self.poll_armed.get(pe as usize) != [Time::MAX; 3] {
                *self.poll_armed.get_mut(pe as usize) = [Time::MAX; 3];
            }
        }
        // Outbound backlogs and half-open transactions rooted on the dead
        // PEs die too (their retry timers are dropped with the node, so
        // keeping the entries would strand armed-but-dead connections).
        // Peers' transactions TOWARD the node stay: the fabric surfaces
        // NodeDown errors and their retry machinery reacts.
        let cores = ctx.cores_per_node();
        self.backlog.retain(|(src, _), _| src / cores != node);
        self.sends.retain(|_, p| p.src_pe / cores != node);
        self.recvs.retain(|_, r| r.dst_pe / cores != node);
        let dead_puts: Vec<u64> = self
            .persist_pending
            .iter()
            .filter(|(_, p)| p.src_pe / cores == node)
            .map(|(xid, _)| *xid)
            .collect();
        for xid in dead_puts {
            self.persist_pending.remove(&xid);
            self.persist_data.remove(&xid);
        }
    }
}
