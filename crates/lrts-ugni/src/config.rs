//! Configuration of the uGNI machine layer. Every optimization the paper
//! introduces is individually switchable so the ablation figures (6, 8a,
//! 8b, 8c) can be regenerated from the same code.

use gemini_net::GeminiParams;
use sim_core::Time;

/// Which small-message facility to use (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallPath {
    /// Per-peer SMSG mailboxes: best performance, memory grows with the
    /// number of connections.
    Smsg,
    /// Shared per-node message queue: memory grows only with node count,
    /// at lower performance.
    Msgq,
}

/// Intra-node delivery strategy (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraNode {
    /// Send through uGNI even for co-located PEs — simple, but the NIC
    /// becomes a bottleneck under mixed traffic (the paper's "original
    /// uGNI-based" curve in Fig. 8c).
    NetworkLoopback,
    /// POSIX-shared-memory with sender copy-in and receiver copy-out.
    PxshmDoubleCopy,
    /// Sender-side single copy: the receiver consumes the shared-memory
    /// message in place (works because the runtime owns message buffers).
    PxshmSingleCopy,
}

/// uGNI machine-layer configuration.
#[derive(Debug, Clone)]
pub struct UgniConfig {
    /// Hardware model parameters.
    pub params: GeminiParams,
    /// Small-message facility (§II-B).
    pub small_path: SmallPath,
    /// Use the pre-registered memory pool for message buffers (§IV-B).
    /// Off reproduces the paper's "initial design" of Fig. 6.
    pub use_mempool: bool,
    /// Intra-node strategy (§IV-C).
    pub intranode: IntraNode,
    /// FMA below/at this size, BTE above (paper §II-A: crossover between
    /// 2048 and 8192 bytes).
    pub fma_bte_threshold: u64,
    /// Fixed pxshm handshake overhead per message per side (lock/fence +
    /// notify), ns.
    pub shm_overhead: Time,
    /// Latency until the receiver's progress engine notices a shared-memory
    /// message, ns.
    pub shm_notice: Time,
    /// SMP mode (paper §VII future work): one communication thread per
    /// node runs the progress engine, so protocol processing neither
    /// consumes worker-PE time nor waits for busy workers, and intra-node
    /// messages pass by pointer within the shared address space.
    pub smp: bool,
    /// Worker -> comm-thread handoff cost per message in SMP mode (ns).
    pub smp_handoff: Time,
}

impl UgniConfig {
    /// The fully optimized configuration the paper evaluates in §V.
    pub fn optimized() -> Self {
        UgniConfig {
            params: GeminiParams::hopper(),
            small_path: SmallPath::Smsg,
            use_mempool: true,
            intranode: IntraNode::PxshmSingleCopy,
            fma_bte_threshold: 4096,
            shm_overhead: 250,
            shm_notice: 400,
            smp: false,
            smp_handoff: 120,
        }
    }

    /// The "initial version" of §III-C: no memory pool, no pxshm.
    pub fn initial() -> Self {
        UgniConfig {
            use_mempool: false,
            intranode: IntraNode::NetworkLoopback,
            ..Self::optimized()
        }
    }

    pub fn with_params(mut self, params: GeminiParams) -> Self {
        self.params = params;
        self
    }

    pub fn with_mempool(mut self, on: bool) -> Self {
        self.use_mempool = on;
        self
    }

    pub fn with_intranode(mut self, mode: IntraNode) -> Self {
        self.intranode = mode;
        self
    }

    pub fn with_small_path(mut self, path: SmallPath) -> Self {
        self.small_path = path;
        self
    }

    pub fn with_smp(mut self, on: bool) -> Self {
        self.smp = on;
        self
    }
}

impl Default for UgniConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_as_documented() {
        let opt = UgniConfig::optimized();
        let ini = UgniConfig::initial();
        assert!(opt.use_mempool && !ini.use_mempool);
        assert_eq!(opt.intranode, IntraNode::PxshmSingleCopy);
        assert_eq!(ini.intranode, IntraNode::NetworkLoopback);
        assert_eq!(opt.fma_bte_threshold, ini.fma_bte_threshold);
    }

    #[test]
    fn builders_compose() {
        let c = UgniConfig::optimized()
            .with_mempool(false)
            .with_intranode(IntraNode::PxshmDoubleCopy);
        assert!(!c.use_mempool);
        assert_eq!(c.intranode, IntraNode::PxshmDoubleCopy);
    }
}
