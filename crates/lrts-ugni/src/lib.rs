//! `lrts-ugni`: the paper's uGNI-based machine layer for the Charm-like
//! runtime — SMSG small-message path, GET-based rendezvous for large
//! messages, the pre-registered memory pool, persistent messages, and
//! POSIX-shared-memory intra-node delivery. See [`layer`] for the protocol
//! walk-through and [`config::UgniConfig`] for the ablation switches.

pub mod config;
pub mod layer;

pub use config::{IntraNode, SmallPath, UgniConfig};
pub use layer::{UgniLayer, UgniStats};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use charm_rt::prelude::*;
    use gemini_net::GeminiParams;

    fn cluster_with(cfg: UgniConfig, pes: u32, cores: u32) -> Cluster {
        Cluster::new(ClusterCfg::new(pes, cores), Box::new(UgniLayer::new(cfg)))
    }

    /// One-way latency of a `bytes`-payload message between PE 0 and PE 1
    /// (different nodes when cores=1): run a ping-pong and halve.
    fn one_way_latency(cfg: UgniConfig, bytes: usize, iters: u64, persistent: bool) -> f64 {
        let mut c = cluster_with(cfg, 2, 1);
        struct St {
            remaining: u64,
            handle: Option<PersistentHandle>,
            t_begin: sim_core::Time,
            elapsed: sim_core::Time,
        }
        c.init_user(|_| St {
            remaining: iters,
            handle: None,
            t_begin: 0,
            elapsed: 0,
        });
        let h = c.register_handler(move |ctx, env| {
            let peer = 1 - ctx.pe();
            if ctx.pe() == 0 {
                let now = ctx.now();
                let st = ctx.user::<St>();
                st.remaining -= 1;
                if st.remaining == 0 {
                    st.elapsed = now - st.t_begin;
                    ctx.stop();
                    return;
                }
            }
            let handle = ctx.user::<St>().handle;
            match handle {
                Some(hd) => ctx.send_persistent(hd, peer, env.handler, env.payload.clone()),
                None => ctx.send(peer, env.handler, env.payload.clone()),
            }
        });
        // Kick on each PE: optionally set up a persistent channel to the
        // peer; PE 0 (kicked second) then starts the ping-pong.
        let kick = c.register_handler(move |ctx, _env| {
            if persistent {
                let hd = ctx.create_persistent(1 - ctx.pe(), bytes as u64 + 64);
                ctx.user::<St>().handle = Some(hd);
            }
            if ctx.pe() == 0 {
                let payload = Bytes::from(vec![0u8; bytes]);
                let now = ctx.now();
                let st = ctx.user::<St>();
                st.remaining = iters;
                st.t_begin = now;
                let handle = st.handle;
                match handle {
                    Some(hd) => ctx.send_persistent(hd, 1, h, payload),
                    None => ctx.send(1, h, payload),
                }
            }
        });
        c.inject(0, 1, kick, Bytes::new());
        c.inject(10_000, 0, kick, Bytes::new());
        c.run();
        let st: &St = c.user(0);
        st.elapsed as f64 / (2.0 * iters as f64)
    }

    #[test]
    fn small_message_latency_near_paper() {
        // Paper §V-A: uGNI-based CHARM++ 8-byte one-way ≈ 1.6 µs.
        let lat = one_way_latency(UgniConfig::optimized(), 8, 100, false);
        assert!(
            (1200.0..2400.0).contains(&lat),
            "8B one-way {lat:.0}ns outside calibration band"
        );
    }

    #[test]
    fn large_messages_ride_rendezvous() {
        let mut c = cluster_with(UgniConfig::optimized(), 2, 1);
        let h = c.register_handler(|ctx, env| {
            if ctx.pe() == 1 {
                assert_eq!(env.payload.len(), 65536);
                ctx.stop();
            }
        });
        let kick = c.register_handler(move |ctx, _| {
            ctx.send(1, h, Bytes::from(vec![7u8; 65536]));
        });
        c.inject(0, 0, kick, Bytes::new());
        let r = c.run();
        assert!(r.stopped_early, "large message never arrived");
        let layer: &mut UgniLayer = c.layer_mut();
        assert_eq!(layer.stats.rendezvous_msgs, 1);
        assert_eq!(layer.stats.small_msgs, 0);
    }

    #[test]
    fn payload_integrity_across_rendezvous() {
        let mut c = cluster_with(UgniConfig::optimized(), 2, 1);
        let pattern: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let expect = pattern.clone();
        let h = c.register_handler(move |ctx, env| {
            if ctx.pe() == 1 {
                assert_eq!(&env.payload[..], &expect[..], "payload corrupted");
                ctx.stop();
            }
        });
        let payload = Bytes::from(pattern);
        let kick = c.register_handler(move |ctx, _| ctx.send(1, h, payload.clone()));
        c.inject(0, 0, kick, Bytes::new());
        assert!(c.run().stopped_early);
    }

    #[test]
    fn mempool_beats_no_mempool_for_large_messages() {
        // Paper Fig. 8b: memory pool halves large-message latency.
        let with = one_way_latency(UgniConfig::optimized(), 65536, 40, false);
        let without = one_way_latency(
            UgniConfig::optimized().with_mempool(false),
            65536,
            40,
            false,
        );
        assert!(
            with < without * 0.75,
            "pool {with:.0}ns vs none {without:.0}ns: expected >25% win"
        );
    }

    #[test]
    fn persistent_beats_plain_rendezvous() {
        // Paper Fig. 8a: persistent messages eliminate the control message
        // and all memory management.
        let plain = one_way_latency(UgniConfig::optimized(), 65536, 40, false);
        let persist = one_way_latency(UgniConfig::optimized(), 65536, 40, true);
        assert!(
            persist < plain,
            "persistent {persist:.0}ns not faster than plain {plain:.0}ns"
        );
    }

    #[test]
    fn small_messages_unaffected_by_mempool() {
        let with = one_way_latency(UgniConfig::optimized(), 64, 50, false);
        let without = one_way_latency(UgniConfig::optimized().with_mempool(false), 64, 50, false);
        let ratio = with / without;
        assert!(
            (0.8..1.2).contains(&ratio),
            "small-message latency should barely move: {with:.0} vs {without:.0}"
        );
    }

    #[test]
    fn single_copy_beats_double_copy_for_large_messages() {
        // Paper Fig. 8c: one fewer memcpy for every intra-node message.
        let single = one_way_latency_intranode(IntraNode::PxshmSingleCopy, 65536);
        let double = one_way_latency_intranode(IntraNode::PxshmDoubleCopy, 65536);
        assert!(
            single < double,
            "single copy {single:.0}ns should beat double copy {double:.0}ns"
        );
        // And in an *isolated* ping-pong, NIC loopback is competitive —
        // the paper: "This implementation is quite efficient in a pingpong
        // test". The pxshm win only appears under NIC contention (below).
        let nic = one_way_latency_intranode(IntraNode::NetworkLoopback, 65536);
        assert!(
            nic < double,
            "loopback should beat double copy in isolation"
        );
    }

    #[test]
    fn shm_wins_under_nic_contention() {
        // Paper §IV-C: "when there are lots of intra-node and inter-node
        // messages, the uGNI hardware can be a bottleneck and may cause
        // contention" — one should not route intra-node traffic through the
        // NIC. Two nodes x 4 cores: PEs 2,3 blast inter-node rendezvous
        // traffic while PE 0 <-> PE 1 run an intra-node ping-pong.
        fn pingpong_under_load(mode: IntraNode) -> sim_core::Time {
            let mut c = cluster_with(UgniConfig::optimized().with_intranode(mode), 8, 4);
            struct St {
                remaining: u64,
                t0: sim_core::Time,
                elapsed: sim_core::Time,
            }
            let iters = 40;
            c.init_user(|_| St {
                remaining: iters,
                t0: 0,
                elapsed: 0,
            });
            let pp = c.register_handler(move |ctx, env| {
                let peer = 1 - ctx.pe();
                if ctx.pe() == 0 {
                    let now = ctx.now();
                    let st = ctx.user::<St>();
                    st.remaining -= 1;
                    if st.remaining == 0 {
                        st.elapsed = now - st.t0;
                        return;
                    }
                }
                ctx.send(peer, env.handler, env.payload.clone());
            });
            let sink = c.register_handler(|_ctx, _env| {});
            let blast = c.register_handler(move |ctx, _| {
                // PEs 2 and 3 stream large messages to node 1.
                for _ in 0..200 {
                    ctx.send(ctx.pe() + 4, sink, Bytes::from(vec![0u8; 131_072]));
                }
            });
            let kick = c.register_handler(move |ctx, _| {
                let now = ctx.now();
                ctx.user::<St>().t0 = now;
                ctx.send(1, pp, Bytes::from(vec![0u8; 65_536]));
            });
            c.inject(0, 2, blast, Bytes::new());
            c.inject(0, 3, blast, Bytes::new());
            // Start the ping-pong once the background stream is flowing.
            c.inject(3_000_000, 0, kick, Bytes::new());
            c.run();
            c.user::<St>(0).elapsed
        }
        let loopback = pingpong_under_load(IntraNode::NetworkLoopback);
        let shm = pingpong_under_load(IntraNode::PxshmSingleCopy);
        assert!(
            shm < loopback,
            "under NIC contention shm {shm}ns should beat loopback {loopback}ns"
        );
    }

    fn one_way_latency_intranode(mode: IntraNode, bytes: usize) -> f64 {
        // Two PEs on the same node.
        let mut c = cluster_with(UgniConfig::optimized().with_intranode(mode), 2, 2);
        struct St {
            remaining: u64,
            t0: sim_core::Time,
            elapsed: sim_core::Time,
        }
        let iters = 30;
        c.init_user(|_| St {
            remaining: iters,
            t0: 0,
            elapsed: 0,
        });
        let h = c.register_handler(move |ctx, env| {
            let peer = 1 - ctx.pe();
            if ctx.pe() == 0 {
                let now = ctx.now();
                let st = ctx.user::<St>();
                st.remaining -= 1;
                if st.remaining == 0 {
                    st.elapsed = now - st.t0;
                    ctx.stop();
                    return;
                }
            }
            ctx.send(peer, env.handler, env.payload.clone());
        });
        let kick = c.register_handler(move |ctx, _| {
            ctx.user::<St>().t0 = ctx.now();
            ctx.send(1, h, Bytes::from(vec![0u8; bytes]));
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        c.user::<St>(0).elapsed as f64 / (2.0 * iters as f64)
    }

    #[test]
    fn msgq_mode_delivers_but_is_slower() {
        // Paper §II-B: "MSGQ overcomes the above scalability issue due to
        // memory cost, but at the expense of lower performance."
        let smsg = one_way_latency(UgniConfig::optimized(), 256, 40, false);
        let msgq = one_way_latency(
            UgniConfig::optimized().with_small_path(SmallPath::Msgq),
            256,
            40,
            false,
        );
        assert!(
            msgq > smsg * 1.2,
            "MSGQ {msgq:.0}ns should be clearly slower than SMSG {smsg:.0}ns"
        );
    }

    #[test]
    fn msgq_mode_handles_rendezvous_control_traffic() {
        // Large messages still work when the control messages ride MSGQ.
        let mut c = cluster_with(
            UgniConfig::optimized().with_small_path(SmallPath::Msgq),
            2,
            1,
        );
        let h = c.register_handler(|ctx, env| {
            if ctx.pe() == 1 {
                assert_eq!(env.payload.len(), 65536);
                ctx.stop();
            }
        });
        let kick = c.register_handler(move |ctx, _| {
            ctx.send(1, h, Bytes::from(vec![9u8; 65536]));
        });
        c.inject(0, 0, kick, Bytes::new());
        assert!(c.run().stopped_early, "rendezvous over MSGQ failed");
    }

    #[test]
    fn smp_mode_offloads_protocol_work_to_comm_threads() {
        // Paper §VII: SMP mode moves the progress engine off the workers.
        // Under a compute+communicate mix, workers in SMP mode accumulate
        // far less overhead.
        fn overhead_under_load(smp: bool) -> (f64, sim_core::Time) {
            let mut c = cluster_with(UgniConfig::optimized().with_smp(smp), 4, 2);
            c.init_user(|_| 0u64);
            let h = c.register_handler(|ctx, _env| {
                // Compute while more messages stream in.
                ctx.charge(30_000);
                *ctx.user::<u64>() += 1;
            });
            let kick = c.register_handler(move |ctx, _| {
                for i in 0..40 {
                    let dst = 2 + (i % 2);
                    ctx.send(dst, h, Bytes::from(vec![0u8; 32_768]));
                }
            });
            c.inject(0, 0, kick, Bytes::new());
            let r = c.run();
            let got: u64 = (0..4).map(|pe| *c.user::<u64>(pe)).sum();
            assert_eq!(got, 40, "smp={smp}: messages lost");
            let ovh = c.trace().total_overhead() as f64;
            (ovh, r.end_time)
        }
        let (ovh_classic, _t_classic) = overhead_under_load(false);
        let (ovh_smp, _t_smp) = overhead_under_load(true);
        assert!(
            ovh_smp < ovh_classic * 0.5,
            "SMP worker overhead {ovh_smp} should be well below classic {ovh_classic}"
        );
    }

    #[test]
    fn smp_intranode_pointer_passing_is_fast() {
        let classic = one_way_latency_intranode(IntraNode::PxshmSingleCopy, 65536);
        let smp = {
            let mut c = cluster_with(UgniConfig::optimized().with_smp(true), 2, 2);
            struct St {
                remaining: u64,
                t0: sim_core::Time,
                elapsed: sim_core::Time,
            }
            let iters = 30;
            c.init_user(|_| St {
                remaining: iters,
                t0: 0,
                elapsed: 0,
            });
            let h = c.register_handler(move |ctx, env| {
                let peer = 1 - ctx.pe();
                if ctx.pe() == 0 {
                    let now = ctx.now();
                    let st = ctx.user::<St>();
                    st.remaining -= 1;
                    if st.remaining == 0 {
                        st.elapsed = now - st.t0;
                        ctx.stop();
                        return;
                    }
                }
                ctx.send(peer, env.handler, env.payload.clone());
            });
            let kick = c.register_handler(move |ctx, _| {
                let now = ctx.now();
                ctx.user::<St>().t0 = now;
                ctx.send(1, h, Bytes::from(vec![0u8; 65536]));
            });
            c.inject(0, 0, kick, Bytes::new());
            c.run();
            c.user::<St>(0).elapsed as f64 / (2.0 * iters as f64)
        };
        assert!(
            smp * 5.0 < classic,
            "pointer passing {smp:.0}ns should crush copies {classic:.0}ns"
        );
    }

    #[test]
    fn credit_pressure_retries_and_delivers_everything() {
        // Blast many small messages over one connection to exhaust credits.
        let mut params = GeminiParams::hopper();
        params.smsg_credits = 2;
        let cfg = UgniConfig::optimized().with_params(params);
        let mut c = cluster_with(cfg, 2, 1);
        c.init_user(|_| 0u64);
        let n = 64;
        let h = c.register_handler(|ctx, _env| {
            *ctx.user::<u64>() += 1;
        });
        let kick = c.register_handler(move |ctx, _| {
            for _ in 0..n {
                ctx.send(1, h, Bytes::from_static(b"x"));
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        assert_eq!(*c.user::<u64>(1), n, "messages lost under credit pressure");
        let layer: &mut UgniLayer = c.layer_mut();
        assert!(layer.stats.credit_retries > 0, "test never hit the backlog");
    }

    #[test]
    fn many_to_one_delivers_all() {
        let mut c = cluster_with(UgniConfig::optimized(), 8, 1);
        c.init_user(|_| 0u64);
        let h = c.register_handler(|ctx, _| {
            *ctx.user::<u64>() += 1;
        });
        let kick = c.register_handler(move |ctx, _| {
            if ctx.pe() != 0 {
                for _ in 0..10 {
                    ctx.send(0, h, Bytes::from(vec![1u8; 2048]));
                }
            }
        });
        for pe in 0..8 {
            c.inject(0, pe, kick, Bytes::new());
        }
        c.run();
        assert_eq!(*c.user::<u64>(0), 70);
    }

    fn chaos_cfg(seed: u64, drop: f64, corrupt: f64) -> UgniConfig {
        let mut cfg = UgniConfig::optimized();
        cfg.params.fault = gemini_net::FaultPlan {
            seed,
            smsg_drop: drop,
            smsg_corrupt: corrupt,
            fma_drop: drop,
            fma_corrupt: corrupt,
            bte_drop: drop,
            bte_corrupt: corrupt,
            ..gemini_net::FaultPlan::none()
        };
        cfg
    }

    /// PE 0 blasts `n` small messages at PE 1 under the given config; the
    /// run drains to quiescence and returns (delivered count, end time,
    /// stats debug string).
    fn run_small_blast(cfg: UgniConfig, n: u64, bytes: usize) -> (u64, sim_core::Time, String) {
        let mut c = cluster_with(cfg, 2, 1);
        c.init_user(|_| 0u64);
        let h = c.register_handler(|ctx, _env| {
            *ctx.user::<u64>() += 1;
        });
        let kick = c.register_handler(move |ctx, _| {
            for _ in 0..n {
                ctx.send(1, h, Bytes::from(vec![3u8; bytes]));
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        let r = c.run();
        let got = *c.user::<u64>(1);
        let layer: &mut UgniLayer = c.layer_mut();
        (got, r.end_time, format!("{:?}", layer.stats))
    }

    #[test]
    fn chaos_small_messages_recover_exactly_once() {
        let mut c = cluster_with(chaos_cfg(42, 0.05, 0.05), 2, 1);
        c.init_user(|_| 0u64);
        let n = 200u64;
        let h = c.register_handler(|ctx, _env| {
            *ctx.user::<u64>() += 1;
        });
        let kick = c.register_handler(move |ctx, _| {
            for _ in 0..n {
                ctx.send(1, h, Bytes::from_static(b"payload"));
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        // Exactly-once despite drops (resent) and corrupted completions
        // (delivered + resent -> receiver dedup): not one more, not one
        // fewer.
        assert_eq!(*c.user::<u64>(1), n, "delivery not exactly-once");
        let layer: &mut UgniLayer = c.layer_mut();
        assert!(layer.stats.send_faults > 0, "plan injected no smsg faults");
        assert!(
            layer.stats.dup_drops > 0,
            "no corrupt-delivery duplicate was suppressed"
        );
        assert!(
            layer.stats.recovery_ns > 0,
            "recovery work was never accounted"
        );
    }

    #[test]
    fn chaos_rendezvous_reposts_and_preserves_payload() {
        let mut c = cluster_with(chaos_cfg(7, 0.2, 0.2), 2, 1);
        c.init_user(|_| 0u64);
        let pattern: Vec<u8> = (0..65536u32).map(|i| (i * 131 % 251) as u8).collect();
        let expect = pattern.clone();
        let n = 10u64;
        let h = c.register_handler(move |ctx, env| {
            assert_eq!(
                &env.payload[..],
                &expect[..],
                "rendezvous payload corrupted"
            );
            *ctx.user::<u64>() += 1;
        });
        let payload = Bytes::from(pattern);
        let kick = c.register_handler(move |ctx, _| {
            for _ in 0..n {
                ctx.send(1, h, payload.clone());
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        assert_eq!(*c.user::<u64>(1), n, "rendezvous not exactly-once");
        let layer: &mut UgniLayer = c.layer_mut();
        assert!(layer.stats.rdma_faults > 0, "plan injected no RDMA faults");
    }

    #[test]
    fn forced_cq_overrun_resyncs_and_completes() {
        let mut cfg = UgniConfig::optimized();
        cfg.params.fault.force_cq_overrun_at = Some(1);
        let (got, _, stats) = run_small_blast(cfg, 20, 40_000);
        assert_eq!(got, 20, "messages lost across the CQ overrun");
        assert!(
            stats.contains("cq_resyncs: 1"),
            "forced overrun never resynced: {stats}"
        );
    }

    #[test]
    fn persistent_sends_recover_from_put_faults() {
        let mut c = cluster_with(chaos_cfg(11, 0.2, 0.2), 2, 1);
        struct St {
            handle: Option<PersistentHandle>,
            got: u64,
        }
        c.init_user(|_| St {
            handle: None,
            got: 0,
        });
        let n = 20u64;
        let h = c.register_handler(|ctx, _env| {
            ctx.user::<St>().got += 1;
        });
        let send_all = c.register_handler(move |ctx, _| {
            let hd = ctx.user::<St>().handle.unwrap();
            for _ in 0..n {
                ctx.send_persistent(hd, 1, h, Bytes::from(vec![9u8; 4096]));
            }
        });
        let kick = c.register_handler(move |ctx, _| {
            let hd = ctx.create_persistent(1, 8192);
            ctx.user::<St>().handle = Some(hd);
            ctx.send(ctx.pe(), send_all, Bytes::new());
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        assert_eq!(c.user::<St>(1).got, n, "persistent path not exactly-once");
    }

    #[test]
    fn link_down_window_is_survivable() {
        let mut cfg = UgniConfig::optimized();
        cfg.params.fault.link_down.push(gemini_net::LinkDownWindow {
            node: 0,
            dim: 0,
            plus: true,
            from_ns: 50_000,
            until_ns: 250_000,
        });
        let (got, _, _) = run_small_blast(cfg, 100, 512);
        assert_eq!(got, 100, "messages lost across the link outage");
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let a = run_small_blast(chaos_cfg(99, 0.05, 0.05), 150, 1024);
        let b = run_small_blast(chaos_cfg(99, 0.05, 0.05), 150, 1024);
        assert_eq!(a, b, "same seed + same plan must replay identically");
        let c = run_small_blast(chaos_cfg(100, 0.05, 0.05), 150, 1024);
        assert_ne!(a.1, c.1, "different fault seed should perturb timing");
    }

    #[test]
    fn registration_exhaustion_falls_back_to_pool() {
        let mut cfg = UgniConfig::optimized().with_mempool(false);
        cfg.params.fault.seed = 5;
        cfg.params.fault.reg_fail = 0.5;
        let mut c = cluster_with(cfg, 2, 1);
        c.init_user(|_| 0u64);
        let n = 12u64;
        let h = c.register_handler(|ctx, env| {
            assert_eq!(env.payload.len(), 32768);
            *ctx.user::<u64>() += 1;
        });
        let kick = c.register_handler(move |ctx, _| {
            for _ in 0..n {
                ctx.send(1, h, Bytes::from(vec![5u8; 32768]));
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        assert_eq!(*c.user::<u64>(1), n);
        let layer: &mut UgniLayer = c.layer_mut();
        assert!(
            layer.stats.reg_fallbacks > 0,
            "50% reg failure never hit the fallback path"
        );
    }

    #[test]
    fn fma_bte_choice_follows_threshold() {
        let mut c = cluster_with(UgniConfig::optimized(), 2, 1);
        let h = c.register_handler(|_ctx, _env| {});
        let kick = c.register_handler(move |ctx, _| {
            ctx.send(1, h, Bytes::from(vec![0u8; 2048])); // FMA-range rendezvous
            ctx.send(1, h, Bytes::from(vec![0u8; 262144])); // BTE range
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        let layer: &mut UgniLayer = c.layer_mut();
        let stats = layer.gni().fabric().stats.clone();
        assert!(stats.fma_transactions >= 1, "2KB should use FMA");
        assert!(stats.bte_transactions >= 1, "256KB should use BTE");
    }
}
