//! miniMD: a NAMD-like molecular-dynamics proxy (paper §V-D, Fig. 13,
//! Table II).
//!
//! Reproduces NAMD's communication structure per timestep:
//!
//! 1. **Patches** (spatial domains) multicast their atom coordinates to
//!    the **compute objects** responsible for their pair interactions —
//!    messages in the 1–16 KB range, like the paper says;
//! 2. computes evaluate short-range forces (virtual work proportional to
//!    the atom product, with configurable initial imbalance) and return
//!    force messages to both partner patches;
//! 3. patches integrate and enter the **PME** surrogate: a global
//!    reduce-plus-broadcast carrying grid-sized payloads every step —
//!    standing in for the FFT transpose all-to-alls (DESIGN.md §1); it
//!    preserves what matters for the runtime comparison: a latency-bound
//!    global communication on every timestep.
//!
//! "Measurement-based load balancing" is modeled by switching compute
//! costs from the imbalanced initial distribution to the balanced one at a
//! configurable step, standing in for object migration.

use crate::common::LayerKind;
use bytes::Bytes;
use charm_rt::prelude::*;
use sim_core::{DetRng, Time};

/// Pair computes per patch: d = 0 (self) through MAX_D (downstream ring
/// neighbors). Each patch therefore touches 2*MAX_D + 1 = 13 computes,
/// NAMD's half-shell flavor.
const MAX_D: u64 = 6;

/// Benchmark systems from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// 5,570 atoms.
    Iapp,
    /// 23,558 atoms.
    Dhfr,
    /// 92,224 atoms.
    Apoa1,
}

impl System {
    pub fn atoms(self) -> u64 {
        match self {
            System::Iapp => 5_570,
            System::Dhfr => 23_558,
            System::Apoa1 => 92_224,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            System::Iapp => "IAPP",
            System::Dhfr => "DHFR",
            System::Apoa1 => "ApoA1",
        }
    }
}

#[derive(Debug, Clone)]
pub struct MdConfig {
    pub atoms: u64,
    pub steps: u32,
    /// Total short-range force work per atom per step (virtual ns).
    /// Calibrated from Table II: 2 cores x 979 ms/step / 92,224 atoms.
    pub ns_per_atom: u64,
    /// Number of patches (None: max(atoms/640, PEs/2), clamped to
    /// [8, 2 x PEs] — NAMD refines its decomposition as core counts grow).
    pub patches: Option<u32>,
    /// PME payload carried by the per-step global phase.
    pub pme_bytes: usize,
    /// Step at which measurement-based LB kicks in (None = off).
    pub lb_at_step: Option<u32>,
    /// Initial atom imbalance across patches (0.3 = +/-30%).
    pub imbalance: f64,
    pub seed: u64,
}

impl MdConfig {
    pub fn for_system(sys: System, steps: u32) -> Self {
        MdConfig {
            atoms: sys.atoms(),
            steps,
            ns_per_atom: 21_233,
            patches: None,
            pme_bytes: 2_048,
            lb_at_step: Some(2),
            imbalance: 0.3,
            seed: 0x4D44,
        }
    }
}

#[derive(Debug, Clone)]
pub struct MdResult {
    pub ms_per_step: f64,
    pub time_ns: Time,
    pub steps: u32,
    pub patches: u32,
    /// Busy/overhead/idle over the whole run.
    pub utilization: (f64, f64, f64),
}

struct Patch {
    coords_bytes: usize,
    forces_needed: u32,
    forces_got: u32,
    atoms: u64,
}

struct ComputeObj {
    inputs_needed: u32,
    inputs_got: u32,
    cost_imbalanced: u64,
    cost_balanced: u64,
    coords_bytes: usize,
    p: u64,
    q: u64,
}

/// Run miniMD; `num_pes` PEs with `cores_per_node` cores per node.
pub fn run_minimd(
    layer: &LayerKind,
    num_pes: u32,
    cores_per_node: u32,
    cfg: &MdConfig,
) -> MdResult {
    let mut c = if std::env::var("MD_TRACE").is_ok() {
        layer.cluster_traced(num_pes, cores_per_node, 1_000_000)
    } else {
        layer.cluster(num_pes, cores_per_node)
    };

    let patches = cfg
        .patches
        .unwrap_or_else(|| {
            ((cfg.atoms / 640) as u32)
                .max(num_pes / 2)
                .max(8)
                .min(num_pes * 2)
        })
        .max(2) as u64;

    // Atom distribution with configurable imbalance.
    let mut rng = DetRng::seed(cfg.seed);
    let weights: Vec<f64> = (0..patches)
        .map(|_| 1.0 + cfg.imbalance * (2.0 * rng.unit() - 1.0))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let atoms_of: Vec<u64> = weights
        .iter()
        .map(|w| ((cfg.atoms as f64) * w / wsum).max(1.0) as u64)
        .collect();

    // Per-pair work, imbalanced and balanced, normalized so each step's
    // total equals atoms x ns_per_atom.
    let total_work = (cfg.atoms * cfg.ns_per_atom) as f64;
    let mut pair_w = Vec::new();
    let mut wtot = 0.0;
    for p in 0..patches {
        for d in 0..=MAX_D {
            let q = (p + d) % patches;
            let w = (atoms_of[p as usize] as f64) * (atoms_of[q as usize] as f64);
            pair_w.push(w);
            wtot += w;
        }
    }
    let n_computes = pair_w.len() as u64;
    let balanced_cost = (total_work / n_computes as f64) as u64;
    let costs: Vec<u64> = pair_w
        .iter()
        .map(|w| (total_work * w / wtot) as u64)
        .collect();

    let lb_at = cfg.lb_at_step.unwrap_or(u32::MAX) as u64;

    // Exact per-patch force-message counts (wraparound on small rings
    // makes some pairs self-pairs, which produce one message, not two).
    let mut forces_needed = vec![0u32; patches as usize];
    for p in 0..patches {
        for d in 0..=MAX_D {
            let q = (p + d) % patches;
            forces_needed[p as usize] += 1;
            if q != p {
                forces_needed[q as usize] += 1;
            }
        }
    }

    let patch_aid = c.create_array("patches", patches, |p| {
        let ap = atoms_of[p as usize];
        Patch {
            coords_bytes: (ap as usize) * 24,
            forces_needed: forces_needed[p as usize],
            forces_got: 0,
            atoms: ap,
        }
    });
    let comp_aid = c.create_array("computes", n_computes, |idx| {
        let p = idx / (MAX_D + 1);
        let d = idx % (MAX_D + 1);
        let q = (p + d) % patches;
        // The owning patch always sends one coords message (downstream
        // loop); the partner patch sends a second through its upstream
        // loop, which reaches this compute exactly when q's upstream index
        // (q - d) equals p — true for every d >= 1, including self pairs.
        ComputeObj {
            inputs_needed: if d == 0 { 1 } else { 2 },
            inputs_got: 0,
            cost_imbalanced: costs[idx as usize],
            cost_balanced: balanced_cost,
            coords_bytes: (atoms_of[p as usize].max(atoms_of[q as usize]) as usize) * 24,
            p,
            q,
        }
    });

    let ids: std::sync::Arc<std::sync::OnceLock<(EntryId, EntryId, EntryId)>> =
        std::sync::Arc::new(std::sync::OnceLock::new());

    // Compute: receive coords [step u64, ...payload]; fire when complete.
    let ids_c = ids.clone();
    let comp_recv = c.register_entry::<ComputeObj>(comp_aid, move |ctx, st, _idx, payload| {
        let (_, _, patch_force) = *ids_c.get().expect("entries registered");
        let step = wire::unpack_u64(&payload, 0);
        st.inputs_got += 1;
        ctx.charge(120);
        if st.inputs_got < st.inputs_needed {
            return;
        }
        st.inputs_got = 0;
        let cost = if step >= lb_at {
            st.cost_balanced
        } else {
            st.cost_imbalanced
        };
        ctx.charge(cost);
        // Force messages back to both partner patches (one message for a
        // self pair).
        let fmsg = vec![0u8; st.coords_bytes.max(64)];
        ctx.charm_send(patch_aid, st.p, patch_force, Bytes::from(fmsg.clone()));
        if st.q != st.p {
            ctx.charm_send(patch_aid, st.q, patch_force, Bytes::from(fmsg));
        }
    });

    // Patch: a force message arrived; integrate + contribute when done.
    let patch_force = c.register_entry::<Patch>(patch_aid, move |ctx, st, _idx, _payload| {
        st.forces_got += 1;
        ctx.charge(80);
        if st.forces_got < st.forces_needed {
            return;
        }
        st.forces_got = 0;
        // Integration.
        ctx.charge(st.atoms * 12);
        // PME surrogate: global reduce (energies + grid summary).
        ctx.contribute(patch_aid, &[st.atoms as f64, 1.0], RedOp::Sum);
    });

    // Patch: `go` — multicast coordinates to all computes touching us.
    let ids_g = ids.clone();
    let patch_go = c.register_entry::<Patch>(patch_aid, move |ctx, st, idx, payload| {
        let (comp_recv, _, _) = *ids_g.get().expect("entries registered");
        let step = wire::unpack_u64(&payload, 0);
        ctx.charge(200);
        let mut coords = Vec::with_capacity(8 + st.coords_bytes);
        coords.extend_from_slice(&step.to_le_bytes());
        coords.resize(8 + st.coords_bytes, 0);
        let coords = Bytes::from(coords);
        // Downstream computes (idx, d).
        for d in 0..=MAX_D {
            ctx.charm_send(comp_aid, idx * (MAX_D + 1) + d, comp_recv, coords.clone());
        }
        // Upstream computes ((idx - d) mod patches, d).
        for d in 1..=MAX_D {
            let p = (idx + patches - d % patches) % patches;
            ctx.charm_send(comp_aid, p * (MAX_D + 1) + d, comp_recv, coords.clone());
        }
    });
    ids.set((comp_recv, patch_go, patch_force))
        .expect("set once");

    // Client: one reduction per step -> next `go` broadcast with the PME
    // result payload.
    struct Ctl {
        steps_left: u32,
        step: u64,
        t0: Time,
        total: Time,
    }
    let steps = cfg.steps;
    c.init_user(|_| Ctl {
        steps_left: steps,
        step: 0,
        t0: 0,
        total: 0,
    });
    let pme_bytes = cfg.pme_bytes;
    let client = c.register_handler(move |ctx, _env| {
        let now = ctx.now();
        let next = {
            let ctl = ctx.user::<Ctl>();
            ctl.total += now - ctl.t0;
            ctl.t0 = now;
            ctl.steps_left -= 1;
            ctl.step += 1;
            if ctl.steps_left == 0 {
                ctx.stop();
                None
            } else {
                Some(ctl.step)
            }
        };
        if let Some(step) = next {
            // PME result distribution: grid-sized broadcast payload.
            let mut payload = vec![0u8; 8 + pme_bytes];
            payload[..8].copy_from_slice(&step.to_le_bytes());
            ctx.charm_broadcast(patch_aid, patch_go, Bytes::from(payload));
        }
    });
    c.set_reduction_client(patch_aid, client, 0);

    let mut first = vec![0u8; 8 + cfg.pme_bytes];
    first[..8].copy_from_slice(&0u64.to_le_bytes());
    c.inject_broadcast(0, patch_aid, patch_go, Bytes::from(first));
    let report = c.run();

    if std::env::var("MD_TRACE").is_ok() {
        eprintln!("{}", c.trace().render_profile());
    }
    let ctl = c.user::<Ctl>(0);
    MdResult {
        ms_per_step: sim_core::time::to_ms(ctl.total) / cfg.steps as f64,
        time_ns: report.end_time,
        steps: cfg.steps,
        patches: patches as u32,
        utilization: c.trace().utilization(Some(report.end_time)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(atoms: u64, steps: u32) -> MdConfig {
        MdConfig {
            atoms,
            steps,
            ns_per_atom: 21_233,
            patches: None,
            pme_bytes: 2_048,
            lb_at_step: Some(2),
            imbalance: 0.3,
            seed: 42,
        }
    }

    #[test]
    fn completes_all_steps() {
        let r = run_minimd(&LayerKind::ugni(), 8, 4, &quick_cfg(4000, 4));
        assert_eq!(r.steps, 4);
        assert!(r.ms_per_step > 0.0);
        assert!(r.patches >= 2);
    }

    #[test]
    fn two_core_step_time_matches_calibration() {
        // Table II anchor: ApoA1 on 2 cores ~ 979 ms/step (uGNI).
        let mut cfg = quick_cfg(System::Apoa1.atoms(), 2);
        cfg.lb_at_step = None;
        let r = run_minimd(&LayerKind::ugni(), 2, 2, &cfg);
        assert!(
            (800.0..1200.0).contains(&r.ms_per_step),
            "2-core ApoA1 {:.0} ms/step out of band",
            r.ms_per_step
        );
    }

    #[test]
    fn strong_scaling_reduces_step_time() {
        let cfg = quick_cfg(20_000, 3);
        let t8 = run_minimd(&LayerKind::ugni(), 8, 4, &cfg).ms_per_step;
        let t32 = run_minimd(&LayerKind::ugni(), 32, 4, &cfg).ms_per_step;
        assert!(
            t32 < t8 * 0.5,
            "expected decent strong scaling: {t8:.2} -> {t32:.2} ms/step"
        );
    }

    #[test]
    fn ugni_beats_mpi_at_scale() {
        // Fig. 13 shape: ~10-18% uGNI advantage in fine-grain runs.
        let cfg = quick_cfg(10_000, 3);
        let u = run_minimd(&LayerKind::ugni(), 48, 8, &cfg).ms_per_step;
        let m = run_minimd(&LayerKind::mpi(), 48, 8, &cfg).ms_per_step;
        assert!(u < m, "uGNI {u:.3} !< MPI {m:.3} ms/step");
    }

    #[test]
    fn load_balancing_improves_step_time() {
        let mut cfg = quick_cfg(30_000, 6);
        cfg.imbalance = 0.8;
        cfg.lb_at_step = Some(3);
        let with_lb = run_minimd(&LayerKind::ugni(), 16, 4, &cfg);
        cfg.lb_at_step = None;
        let without = run_minimd(&LayerKind::ugni(), 16, 4, &cfg);
        assert!(
            with_lb.time_ns < without.time_ns,
            "LB should shorten the run: {} vs {}",
            with_lb.time_ns,
            without.time_ns
        );
    }

    #[test]
    fn deterministic() {
        let cfg = quick_cfg(5_000, 3);
        let a = run_minimd(&LayerKind::ugni(), 8, 4, &cfg).time_ns;
        let b = run_minimd(&LayerKind::ugni(), 8, 4, &cfg).time_ns;
        assert_eq!(a, b);
    }
}
