//! N-Queens on the state-space search engine (paper §V-C, Fig. 11,
//! Fig. 12, Table I).
//!
//! "A task-based parallelization scheme is used, wherein each task is
//! responsible for the exploration of some states and spawn new tasks if
//! necessary. After a new task is dynamically created, it is randomly
//! assigned to a processor. The grain size of each task is controlled by a
//! user-defined threshold."
//!
//! Tasks are bitboard prefixes (occupied columns + both diagonal masks).
//! Above the threshold depth a task expands into one child per valid
//! placement; at the threshold it becomes a *leaf* and the remaining
//! subproblem is solved sequentially.
//!
//! Two leaf work modes (DESIGN.md §4):
//!
//! * [`WorkMode::Exact`] really enumerates the subtree (used for N ≤ 13,
//!   validated against the known solution counts);
//! * [`WorkMode::Modeled`] charges virtual time drawn from a heavy-tailed
//!   prefix-seeded distribution calibrated so the total equals a
//!   paper-derived sequential solve time — full enumeration of 19-Queens
//!   (4.97e9 solutions) is out of laptop scope, but the *load-imbalance
//!   shape* (the long tail of Fig. 12a) is preserved because it comes from
//!   leaf-cost variance either way.

use crate::common::LayerKind;
use charm_rt::prelude::*;
use sim_core::{DetRng, Time};

/// How leaf tasks account their work.
#[derive(Debug, Clone, Copy)]
pub enum WorkMode {
    /// Enumerate the remaining subtree; charge `ns_per_node` per visited
    /// search node.
    Exact { ns_per_node: u64 },
    /// Charge a heavy-tailed random cost with the given total budget
    /// across all leaves (`alpha` = Pareto shape, smaller = heavier tail).
    Modeled { total_seq_ns: u64, alpha: f64 },
}

#[derive(Debug, Clone)]
pub struct NqConfig {
    pub n: u32,
    pub threshold: u32,
    pub mode: WorkMode,
    pub seed: u64,
}

#[derive(Debug, Clone, Default)]
pub struct NqResult {
    /// Exact mode only: number of solutions found.
    pub solutions: u64,
    /// Tasks executed (== messages spawned + the seed).
    pub tasks: u64,
    /// Search nodes visited (exact) or leaves charged (modeled).
    pub nodes: u64,
    /// Completion time (virtual ns).
    pub time_ns: Time,
    /// Busy/overhead/idle fractions over the run.
    pub utilization: (f64, f64, f64),
}

/// Count solutions and visited nodes of the subtree below a prefix.
fn solve_seq(n: u32, row: u32, cols: u64, d1: u64, d2: u64) -> (u64, u64) {
    if row == n {
        return (1, 1);
    }
    let full = (1u64 << n) - 1;
    let mut free = full & !(cols | d1 | d2);
    let mut solutions = 0;
    let mut nodes = 1;
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        let (s, nd) = solve_seq(
            n,
            row + 1,
            cols | bit,
            ((d1 | bit) << 1) & full,
            (d2 | bit) >> 1,
        );
        solutions += s;
        nodes += nd;
    }
    (solutions, nodes)
}

/// Number of valid prefixes at exactly `depth` (the leaf-task count) and
/// the total number of expansion tasks above them.
pub fn count_tasks(n: u32, threshold: u32) -> (u64, u64) {
    fn walk(n: u32, depth_left: u32, cols: u64, d1: u64, d2: u64) -> (u64, u64) {
        if depth_left == 0 {
            return (1, 0);
        }
        let full = (1u64 << n) - 1;
        let mut free = full & !(cols | d1 | d2);
        let mut leaves = 0;
        let mut inner = 1;
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            let (l, i) = walk(
                n,
                depth_left - 1,
                cols | bit,
                ((d1 | bit) << 1) & full,
                (d2 | bit) >> 1,
            );
            leaves += l;
            inner += i;
        }
        (leaves, inner)
    }
    let (leaves, inner) = walk(n, threshold, 0, 0, 0);
    (leaves, inner)
}

/// Paper-derived sequential solve times (ns), calibrated from Table I as
/// `best_time x cores x 0.85` (85% parallel efficiency at the paper's best
/// configuration). Used by the Modeled work mode.
pub fn calibrated_seq_ns(n: u32) -> u64 {
    match n {
        14 => 1_090_000_000,
        15 => 2_860_000_000,
        16 => 18_300_000_000,
        17 => 94_700_000_000,
        18 => 587_000_000_000,
        19 => 4_308_000_000_000,
        // Below the paper's table: extrapolate with the measured exact
        // growth rate (~x6 per queen from a 120ns/node exact solve).
        _ => {
            let (_, nodes) = solve_seq(n.min(13), 0, 0, 0, 0);
            nodes * 120
        }
    }
}

struct NqPe {
    stats: SsseStats,
}

/// Run the search on `num_pes` PEs; returns totals after the job drains.
pub fn run_nqueens(
    layer: &LayerKind,
    num_pes: u32,
    cores_per_node: u32,
    cfg: &NqConfig,
) -> NqResult {
    let mut c = layer.cluster(num_pes, cores_per_node);
    run_on_cluster(&mut c, cfg)
}

/// Like [`run_nqueens`] with a Fig.-12 timeline trace; returns the result
/// and the rendered profile.
pub fn run_nqueens_traced(
    layer: &LayerKind,
    num_pes: u32,
    cores_per_node: u32,
    cfg: &NqConfig,
    bucket: Time,
) -> (NqResult, String) {
    let mut c = layer.cluster_traced(num_pes, cores_per_node, bucket);
    let r = run_on_cluster(&mut c, cfg);
    let profile = c.trace().render_profile();
    (r, profile)
}

fn run_on_cluster(c: &mut Cluster, cfg: &NqConfig) -> NqResult {
    c.init_user(|_| NqPe {
        stats: SsseStats::default(),
    });
    let n = cfg.n;
    let threshold = cfg.threshold;
    let mode = cfg.mode;
    let seed = cfg.seed;
    // Mean leaf budget for the modeled path.
    let mean_leaf_ns = match mode {
        WorkMode::Modeled { total_seq_ns, .. } => {
            let (leaves, _) = count_tasks(n, threshold);
            (total_seq_ns as f64 / leaves.max(1) as f64).max(1.0)
        }
        WorkMode::Exact { .. } => 0.0,
    };

    let ssse = Ssse::register::<NqPe>(c, move |ctx, me, payload| {
        let depth = wire::unpack_u64(&payload, 0) as u32;
        let cols = wire::unpack_u64(&payload, 1);
        let d1 = wire::unpack_u64(&payload, 2);
        let d2 = wire::unpack_u64(&payload, 3);
        ctx.user::<NqPe>().stats.tasks += 1;

        if depth < threshold {
            // Expansion task: one child per valid placement, randomly
            // placed (paper §V-C). Charge a small expansion cost.
            let full = (1u64 << n) - 1;
            let mut free = full & !(cols | d1 | d2);
            let mut kids = 0;
            while free != 0 {
                let bit = free & free.wrapping_neg();
                free ^= bit;
                me.spawn(
                    ctx,
                    wire::pack_u64s(&[
                        (depth + 1) as u64,
                        cols | bit,
                        ((d1 | bit) << 1) & full,
                        (d2 | bit) >> 1,
                    ]),
                );
                kids += 1;
            }
            ctx.charge(300 + 60 * kids);
            ctx.user::<NqPe>().stats.nodes += 1;
            return;
        }

        // Leaf task.
        match mode {
            WorkMode::Exact { ns_per_node } => {
                let (sols, nodes) = solve_seq(n, depth, cols, d1, d2);
                ctx.charge(nodes * ns_per_node);
                let st = &mut ctx.user::<NqPe>().stats;
                st.results += sols;
                st.nodes += nodes;
            }
            WorkMode::Modeled { alpha, .. } => {
                // Prefix-seeded heavy-tail cost, normalized to unit mean.
                let key = cols
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(d1)
                    .rotate_left(17)
                    .wrapping_add(d2);
                let mut rng = DetRng::derive(seed, key);
                // Spread chosen so the largest leaf is ~30x the mean: heavy
                // enough to produce the paper's Fig. 12a long tail at coarse
                // grain, light enough that fine grain (threshold 7) still
                // scales to thousands of cores as in Fig. 11.
                let (lo, hi) = (0.1, 30.0);
                let x = rng.bounded_pareto(lo, hi, alpha);
                let mean = bounded_pareto_mean(lo, hi, alpha);
                let cost = (mean_leaf_ns * x / mean).max(1.0) as u64;
                ctx.charge(cost);
                ctx.user::<NqPe>().stats.nodes += 1;
            }
        }
    });
    ssse.seed(c, 0, 0, wire::pack_u64s(&[0, 0, 0, 0]));
    let report = c.run();
    if std::env::var("NQ_DEBUG").is_ok() {
        eprintln!(
            "nq debug: events={} kinds={:?} handlers={} sent={} delivered={}",
            report.stats.events,
            report.stats.event_kinds,
            report.stats.handlers_run,
            report.stats.msgs_sent,
            report.stats.msgs_delivered
        );
    }
    let total = charm_rt::ssse::sum_stats::<NqPe>(c, |u| &u.stats);
    let end = c.trace().end_time().max(report.end_time);
    NqResult {
        solutions: total.results,
        tasks: total.tasks,
        nodes: total.nodes,
        time_ns: end,
        utilization: c.trace().utilization(Some(end)),
    }
}

/// Analytic mean of the bounded Pareto on `[lo, hi]` with shape `alpha`.
fn bounded_pareto_mean(lo: f64, hi: f64, alpha: f64) -> f64 {
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    (la / (1.0 - la / ha))
        * (alpha / (alpha - 1.0))
        * (1.0 / lo.powf(alpha - 1.0) - 1.0 / hi.powf(alpha - 1.0))
}

/// Known N-Queens solution counts for validation.
pub fn known_solutions(n: u32) -> Option<u64> {
    Some(match n {
        1 => 1,
        2 | 3 => 0,
        4 => 2,
        5 => 10,
        6 => 4,
        7 => 40,
        8 => 92,
        9 => 352,
        10 => 724,
        11 => 2_680,
        12 => 14_200,
        13 => 73_712,
        14 => 365_596,
        15 => 2_279_184,
        16 => 14_772_512,
        17 => 95_815_104,
        18 => 666_090_624,
        19 => 4_968_057_848,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_solver_matches_known_counts() {
        for n in 1..=11 {
            let (sols, _) = solve_seq(n, 0, 0, 0, 0);
            assert_eq!(Some(sols), known_solutions(n), "N={n}");
        }
    }

    #[test]
    fn parallel_exact_matches_sequential() {
        for (n, threshold, pes) in [(8, 3, 4), (9, 2, 8), (10, 4, 16)] {
            let cfg = NqConfig {
                n,
                threshold,
                mode: WorkMode::Exact { ns_per_node: 120 },
                seed: 1,
            };
            let r = run_nqueens(&LayerKind::ugni(), pes, 4, &cfg);
            assert_eq!(Some(r.solutions), known_solutions(n), "N={n}");
            assert!(r.tasks > 1);
            assert!(r.time_ns > 0);
        }
    }

    #[test]
    fn exact_matches_on_mpi_layer_too() {
        let cfg = NqConfig {
            n: 8,
            threshold: 4,
            mode: WorkMode::Exact { ns_per_node: 120 },
            seed: 2,
        };
        let r = run_nqueens(&LayerKind::mpi(), 6, 3, &cfg);
        assert_eq!(r.solutions, 92);
    }

    #[test]
    fn task_counts_match_enumeration() {
        let (leaves, inner) = count_tasks(8, 3);
        // Depth-3 valid prefixes for 8 queens.
        let mut expect = 0;
        let full = 255u64;
        for a in 0..8u64 {
            for b in 0..8u64 {
                for c in 0..8u64 {
                    let (ba, bb, bc) = (1 << a, 1 << b, 1 << c);
                    let cols1 = ba;
                    let d11 = (ba << 1) & full;
                    let d21 = ba >> 1;
                    if bb & (cols1 | d11 | d21) != 0 {
                        continue;
                    }
                    let cols2 = cols1 | bb;
                    let d12 = ((d11 | bb) << 1) & full;
                    let d22 = (d21 | bb) >> 1;
                    if bc & (cols2 | d12 | d22) != 0 {
                        continue;
                    }
                    expect += 1;
                }
            }
        }
        assert_eq!(leaves, expect);
        assert!(inner > 0);
    }

    #[test]
    fn threshold_controls_grain() {
        // Paper: "Increasing the threshold decreases the grain size and
        // increases the parallelism" (more messages).
        let (l6, _) = count_tasks(12, 3);
        let (l7, _) = count_tasks(12, 4);
        assert!(l7 > l6 * 4, "deeper threshold must multiply tasks");
    }

    #[test]
    fn modeled_total_work_matches_budget() {
        // Total charged work should approximate the configured budget.
        let total = 50_000_000u64; // 50 ms
        let cfg = NqConfig {
            n: 10,
            threshold: 3,
            mode: WorkMode::Modeled {
                total_seq_ns: total,
                alpha: 1.2,
            },
            seed: 7,
        };
        let r = run_nqueens(&LayerKind::ugni(), 16, 4, &cfg);
        // time * pes * busy_frac == busy total ~ budget (within tail noise).
        let busy_total = r.time_ns as f64 * 16.0 * r.utilization.0;
        let ratio = busy_total / total as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "modeled work off: busy {busy_total:.2e} vs budget {total:.2e}"
        );
    }

    #[test]
    fn modeled_is_deterministic() {
        let cfg = NqConfig {
            n: 10,
            threshold: 3,
            mode: WorkMode::Modeled {
                total_seq_ns: 10_000_000,
                alpha: 1.2,
            },
            seed: 9,
        };
        let a = run_nqueens(&LayerKind::ugni(), 8, 4, &cfg);
        let b = run_nqueens(&LayerKind::ugni(), 8, 4, &cfg);
        assert_eq!(a.time_ns, b.time_ns);
        assert_eq!(a.tasks, b.tasks);
    }

    #[test]
    fn more_pes_run_faster() {
        let cfg = NqConfig {
            n: 11,
            threshold: 5,
            mode: WorkMode::Modeled {
                total_seq_ns: 200_000_000,
                alpha: 1.2,
            },
            seed: 3,
        };
        let t4 = run_nqueens(&LayerKind::ugni(), 4, 4, &cfg).time_ns;
        let t16 = run_nqueens(&LayerKind::ugni(), 16, 4, &cfg).time_ns;
        assert!(
            (t16 as f64) < t4 as f64 * 0.45,
            "poor strong scaling: {t4} -> {t16}"
        );
    }

    #[test]
    fn traced_run_produces_profile() {
        let cfg = NqConfig {
            n: 9,
            threshold: 3,
            mode: WorkMode::Exact { ns_per_node: 120 },
            seed: 4,
        };
        let (r, profile) = run_nqueens_traced(&LayerKind::ugni(), 8, 4, &cfg, 100_000);
        assert_eq!(r.solutions, 352);
        assert!(profile.contains("busy%"));
        assert!(profile.lines().count() > 2);
    }
}
