//! Jacobi 2D: a 5-point Laplace stencil on a chare array.
//!
//! This is the workspace's "real computation through the whole stack"
//! example: blocks hold actual `f64` grids, ghost exchanges carry actual
//! edge values as message payloads across the simulated network, and the
//! parallel result is *bitwise identical* to a sequential Jacobi sweep
//! (the update is order-independent), which the tests verify.
//!
//! Flow per iteration: a broadcast `go` reaches every block; blocks send
//! their four edges to neighbors; once a block has its `go` and all
//! expected edges, it computes the stencil (charging virtual time per
//! cell), contributes its residual to a reduction, and waits. The
//! reduction client advances or stops the run.

use crate::common::LayerKind;
use bytes::Bytes;
use charm_rt::prelude::*;
use sim_core::Time;

/// Cost model: virtual ns per updated cell.
const NS_PER_CELL: u64 = 6;

/// Problem definition.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Grid is `n x n` interior cells.
    pub n: u32,
    /// Blocks per dimension (must divide `n`).
    pub blocks: u32,
    /// Iterations to run.
    pub iters: u32,
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct JacobiResult {
    /// Final residual (sum of |new - old| over the last iteration).
    pub residual: f64,
    /// Completion virtual time.
    pub time_ns: Time,
    /// Interior cell values, row-major `n x n`, reassembled.
    pub grid: Vec<f64>,
    pub iterations_run: u32,
    /// Simulator events processed by the run (wallclock-harness metric).
    pub events: u64,
}

struct BlockState {
    /// `(bs + 2)^2` cells including the ghost ring.
    cells: Vec<f64>,
    next: Vec<f64>,
    bs: usize,
    /// Block coordinates.
    bx: u32,
    by: u32,
    nb: u32,
    /// Iteration sync.
    has_go: bool,
    edges_got: u32,
    edges_expected: u32,
}

/// Flat little-endian serialization for the checkpoint layer: seven u64
/// header words (`bs bx by nb has_go edges_got edges_expected`) followed
/// by the cell grid. `next` is scratch recomputed every sweep, so it
/// restores as zeros.
impl Checkpoint for BlockState {
    fn save(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(7 * 8 + self.cells.len() * 8);
        for v in [
            self.bs as u64,
            self.bx as u64,
            self.by as u64,
            self.nb as u64,
            self.has_go as u64,
            self.edges_got as u64,
            self.edges_expected as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for c in &self.cells {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    fn restore(bytes: &[u8]) -> Self {
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            u64::from_le_bytes(b)
        };
        let bs = word(0) as usize;
        let w = bs + 2;
        let cells: Vec<f64> = (0..w * w).map(|i| f64::from_bits(word(7 + i))).collect();
        BlockState {
            next: vec![0.0; cells.len()],
            cells,
            bs,
            bx: word(1) as u32,
            by: word(2) as u32,
            nb: word(3) as u32,
            has_go: word(4) != 0,
            edges_got: word(5) as u32,
            edges_expected: word(6) as u32,
        }
    }
}

/// Per-PE control state; only the copy on PE 0 (the reduction client)
/// ever changes.
struct Ctl {
    iters_left: u32,
    iters_run: u32,
    residual: f64,
}

impl Checkpoint for Ctl {
    fn save(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&(self.iters_left as u64).to_le_bytes());
        out.extend_from_slice(&(self.iters_run as u64).to_le_bytes());
        out.extend_from_slice(&self.residual.to_le_bytes());
        out
    }

    fn restore(bytes: &[u8]) -> Self {
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            u64::from_le_bytes(b)
        };
        Ctl {
            iters_left: word(0) as u32,
            iters_run: word(1) as u32,
            residual: f64::from_bits(word(2)),
        }
    }
}

impl BlockState {
    fn idx(&self, x: usize, y: usize) -> usize {
        y * (self.bs + 2) + x
    }

    /// Apply the fixed Dirichlet boundary into the ghost ring where the
    /// block touches the global border: top edge = 1.0, others 0.0.
    fn apply_boundary(&mut self) {
        let bs = self.bs;
        if self.by == 0 {
            for x in 0..bs + 2 {
                let i = self.idx(x, 0);
                self.cells[i] = 1.0;
            }
        }
        if self.by == self.nb - 1 {
            for x in 0..bs + 2 {
                let i = self.idx(x, bs + 1);
                self.cells[i] = 0.0;
            }
        }
        if self.bx == 0 {
            for y in 0..bs + 2 {
                let i = self.idx(0, y);
                self.cells[i] = 0.0;
            }
        }
        if self.bx == self.nb - 1 {
            for y in 0..bs + 2 {
                let i = self.idx(bs + 1, y);
                self.cells[i] = 0.0;
            }
        }
    }

    /// One Jacobi sweep over the interior; returns the residual.
    fn sweep(&mut self) -> f64 {
        let bs = self.bs;
        let mut res = 0.0;
        for y in 1..=bs {
            for x in 1..=bs {
                let v = 0.25
                    * (self.cells[self.idx(x - 1, y)]
                        + self.cells[self.idx(x + 1, y)]
                        + self.cells[self.idx(x, y - 1)]
                        + self.cells[self.idx(x, y + 1)]);
                let i = self.idx(x, y);
                res += (v - self.cells[i]).abs();
                self.next[i] = v;
            }
        }
        for y in 1..=bs {
            for x in 1..=bs {
                let i = self.idx(x, y);
                self.cells[i] = self.next[i];
            }
        }
        res
    }

    fn edge(&self, dir: u8) -> Vec<f64> {
        let bs = self.bs;
        match dir {
            0 => (1..=bs).map(|x| self.cells[self.idx(x, 1)]).collect(), // top row
            1 => (1..=bs).map(|x| self.cells[self.idx(x, bs)]).collect(), // bottom row
            2 => (1..=bs).map(|y| self.cells[self.idx(1, y)]).collect(), // left col
            _ => (1..=bs).map(|y| self.cells[self.idx(bs, y)]).collect(), // right col
        }
    }

    fn set_ghost(&mut self, dir: u8, vals: &[f64]) {
        let bs = self.bs;
        match dir {
            // Values arriving from the neighbor above land in our top ghost.
            0 => {
                for (k, v) in vals.iter().enumerate() {
                    let i = self.idx(k + 1, 0);
                    self.cells[i] = *v;
                }
            }
            1 => {
                for (k, v) in vals.iter().enumerate() {
                    let i = self.idx(k + 1, bs + 1);
                    self.cells[i] = *v;
                }
            }
            2 => {
                for (k, v) in vals.iter().enumerate() {
                    let i = self.idx(0, k + 1);
                    self.cells[i] = *v;
                }
            }
            _ => {
                for (k, v) in vals.iter().enumerate() {
                    let i = self.idx(bs + 1, k + 1);
                    self.cells[i] = *v;
                }
            }
        }
    }
}

/// Sequential reference solver: identical arithmetic, one big grid.
pub fn jacobi_sequential(n: u32, iters: u32) -> (Vec<f64>, f64) {
    let n = n as usize;
    let w = n + 2;
    let mut cells = vec![0.0f64; w * w];
    let mut next = cells.clone();
    for c in cells.iter_mut().take(w) {
        *c = 1.0; // top boundary
    }
    let mut res = 0.0;
    for _ in 0..iters {
        res = 0.0;
        for y in 1..=n {
            for x in 1..=n {
                let v = 0.25
                    * (cells[y * w + x - 1]
                        + cells[y * w + x + 1]
                        + (cells[(y - 1) * w + x])
                        + cells[(y + 1) * w + x]);
                res += (v - cells[y * w + x]).abs();
                next[y * w + x] = v;
            }
        }
        for y in 1..=n {
            for x in 1..=n {
                cells[y * w + x] = next[y * w + x];
            }
        }
    }
    let interior = (1..=n)
        .flat_map(|y| (1..=n).map(move |x| (x, y)))
        .map(|(x, y)| cells[y * w + x])
        .collect();
    (interior, res)
}

/// Run the parallel solver.
pub fn run_jacobi(
    layer: &LayerKind,
    num_pes: u32,
    cores_per_node: u32,
    cfg: &JacobiConfig,
) -> JacobiResult {
    run_jacobi_inner(layer, num_pes, cores_per_node, cfg, None).0
}

/// Run the parallel solver with fault tolerance: in-memory buddy
/// checkpoints on `ft.ckpt_period` cadence, crash windows from the
/// layer's [`FaultPlan`] detected and recovered mid-run. The returned
/// grid is bit-identical to the fault-free run's.
pub fn run_jacobi_ft(
    layer: &LayerKind,
    num_pes: u32,
    cores_per_node: u32,
    cfg: &JacobiConfig,
    ft: FtConfig,
) -> (JacobiResult, FtReport) {
    let (r, rep, _) = run_jacobi_inner(layer, num_pes, cores_per_node, cfg, Some(ft));
    (r, rep)
}

/// PE-time the trace charged to the FT machinery during a run:
/// `Kind::Checkpoint` (buddy snapshot waves) and `Kind::Recovery`
/// (restore + rollback-replay), in virtual ns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtCharge {
    pub checkpoint_ns: Time,
    pub recovery_ns: Time,
}

/// Like [`run_jacobi_ft`], additionally reporting what the fault
/// tolerance cost: the trace's checkpoint/recovery charge totals (the
/// bench crate's crash sweep plots these against the cadence).
pub fn run_jacobi_ft_traced(
    layer: &LayerKind,
    num_pes: u32,
    cores_per_node: u32,
    cfg: &JacobiConfig,
    ft: FtConfig,
) -> (JacobiResult, FtReport, FtCharge) {
    run_jacobi_inner(layer, num_pes, cores_per_node, cfg, Some(ft))
}

fn run_jacobi_inner(
    layer: &LayerKind,
    num_pes: u32,
    cores_per_node: u32,
    cfg: &JacobiConfig,
    ft: Option<FtConfig>,
) -> (JacobiResult, FtReport, FtCharge) {
    assert_eq!(cfg.n % cfg.blocks, 0, "blocks must divide n");
    let bs = (cfg.n / cfg.blocks) as usize;
    let nb = cfg.blocks;
    let mut c = layer.cluster(num_pes, cores_per_node);
    let ft_on = ft.is_some();
    if let Some(ftc) = ft {
        c.enable_ft(ftc);
    }

    let aid = c.create_array("jacobi", (nb * nb) as u64, |idx| {
        let bx = (idx as u32) % nb;
        let by = (idx as u32) / nb;
        let mut st = BlockState {
            cells: vec![0.0; (bs + 2) * (bs + 2)],
            next: vec![0.0; (bs + 2) * (bs + 2)],
            bs,
            bx,
            by,
            nb,
            has_go: false,
            edges_got: 0,
            edges_expected: {
                let mut e = 4;
                if by == 0 {
                    e -= 1;
                }
                if by == nb - 1 {
                    e -= 1;
                }
                if bx == 0 {
                    e -= 1;
                }
                if bx == nb - 1 {
                    e -= 1;
                }
                e
            },
        };
        st.apply_boundary();
        st
    });
    if ft_on {
        c.ft_array::<BlockState>(aid);
        c.ft_user::<Ctl>();
    }

    // Entry 0: receive a ghost edge [dir, values...].
    // Entry 1: go (start iteration: send edges).
    let entry_cell: std::sync::Arc<std::sync::OnceLock<(EntryId, EntryId)>> =
        std::sync::Arc::new(std::sync::OnceLock::new());

    fn maybe_compute(ctx: &mut PeCtx, st: &mut BlockState, aid: ArrayId) {
        if !st.has_go || st.edges_got < st.edges_expected {
            return;
        }
        st.has_go = false;
        st.edges_got = 0;
        let res = st.sweep();
        ctx.charge(NS_PER_CELL * (st.bs * st.bs) as u64);
        ctx.contribute(aid, &[res], RedOp::Sum);
    }

    let ec = entry_cell.clone();
    let recv_edge = c.register_entry::<BlockState>(aid, move |ctx, st, _idx, payload| {
        let dir = payload[0];
        let vals: Vec<f64> = (0..wire::f64_count(&payload[8..]))
            .map(|i| wire::unpack_f64(&payload[8..], i))
            .collect();
        st.set_ghost(dir, &vals);
        st.edges_got += 1;
        ctx.charge(50 + 2 * vals.len() as u64);
        maybe_compute(ctx, st, aid);
        let _ = ec.get();
    });

    let ec2 = entry_cell.clone();
    let go = c.register_entry::<BlockState>(aid, move |ctx, st, _idx, _payload| {
        let (recv_edge, _) = *ec2.get().expect("entries registered");
        // Send edges to each existing neighbor. Direction encoding matches
        // the receiver's ghost side: our bottom edge becomes their top
        // ghost (dir 0), etc.
        let (bx, by, nb) = (st.bx, st.by, st.nb);
        let sends: [(bool, i32, i32, u8, u8); 4] = [
            (by > 0, 0, -1, 0, 1),     // to the block above: its bottom ghost
            (by < nb - 1, 0, 1, 1, 0), // below: its top ghost
            (bx > 0, -1, 0, 2, 3),     // left: its right ghost
            (bx < nb - 1, 1, 0, 3, 2), // right: its left ghost
        ];
        for (exists, dx, dy, my_edge, their_ghost) in sends {
            if !exists {
                continue;
            }
            let vals = st.edge(my_edge);
            let mut payload = Vec::with_capacity(8 + vals.len() * 8);
            payload.push(their_ghost);
            payload.extend_from_slice(&[0u8; 7]);
            for v in &vals {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            let nx = (bx as i32 + dx) as u64;
            let ny = (by as i32 + dy) as u64;
            ctx.charm_send(aid, ny * nb as u64 + nx, recv_edge, Bytes::from(payload));
        }
        st.has_go = true;
        ctx.charge(200);
        maybe_compute(ctx, st, aid);
    });
    entry_cell.set((recv_edge, go)).expect("set once");

    // Reduction client: iterate or stop. The reduction instant is a
    // quiescent point for the array — every block has contributed and the
    // next iteration's `go` is still queued locally — so it is also where
    // the FT layer is offered a checkpoint (a no-op when FT is off).
    c.init_user(|_| Ctl {
        iters_left: cfg.iters,
        iters_run: 0,
        residual: f64::NAN,
    });
    let client = c.register_handler(move |ctx, env| {
        let res = wire::unpack_f64(&env.payload[8..], 0);
        let ctl = ctx.user::<Ctl>();
        ctl.iters_run += 1;
        ctl.iters_left -= 1;
        ctl.residual = res;
        if ctl.iters_left == 0 {
            ctx.stop();
        } else {
            ctx.charm_broadcast(aid, go, Bytes::new());
            ctx.ft_maybe_checkpoint();
        }
    });
    c.set_reduction_client(aid, client, 0);
    if ft_on {
        // Post-recovery: every block is back at the last checkpoint with
        // `has_go` clear, so re-broadcasting `go` replays the interrupted
        // iteration from scratch.
        let ec3 = entry_cell.clone();
        let resume = c.register_handler(move |ctx, _env| {
            let (_, go) = *ec3.get().expect("entries registered");
            ctx.charm_broadcast(aid, go, Bytes::new());
        });
        c.ft_on_resume(resume, 0);
    }

    c.inject_broadcast(0, aid, go, Bytes::new());
    let report = c.run();
    layer.assert_contract_clean(&mut c);
    if std::env::var("JAC_DEBUG").is_ok() {
        eprintln!(
            "jac debug: sent={} delivered={} events={} handlers={}",
            report.stats.msgs_sent,
            report.stats.msgs_delivered,
            report.stats.events,
            report.stats.handlers_run
        );
        for i in 0..(nb * nb) as u64 {
            let st: &BlockState = c.element(aid, i);
            eprintln!(
                "  block {i}: has_go={} edges {}/{}",
                st.has_go, st.edges_got, st.edges_expected
            );
        }
        if let LayerKind::Mpi(_) = layer {
            let l: &mut lrts_mpi::MpiLayer = c.layer_mut();
            for pe in 0..num_pes {
                let n = l.mpi().unexpected_len(pe);
                if n > 0 {
                    eprintln!("  pe {pe}: {n} unmatched MPI messages");
                }
            }
        }
    }

    // Reassemble the grid.
    let n = cfg.n as usize;
    let mut grid = vec![0.0f64; n * n];
    for by in 0..nb {
        for bx in 0..nb {
            let st: &BlockState = c.element(aid, (by * nb + bx) as u64);
            for y in 0..bs {
                for x in 0..bs {
                    let gx = bx as usize * bs + x;
                    let gy = by as usize * bs + y;
                    grid[gy * n + gx] = st.cells[st.idx(x + 1, y + 1)];
                }
            }
        }
    }
    let charge = FtCharge {
        checkpoint_ns: c.trace().total_checkpoint(),
        recovery_ns: c.trace().total_recovery(),
    };
    let ctl = c.user::<Ctl>(0);
    (
        JacobiResult {
            residual: ctl.residual,
            time_ns: report.end_time,
            grid,
            iterations_run: ctl.iters_run,
            events: report.stats.events,
        },
        c.ft_report(),
        charge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let cfg = JacobiConfig {
            n: 24,
            blocks: 4,
            iters: 20,
        };
        let r = run_jacobi(&LayerKind::ugni(), 8, 4, &cfg);
        let (seq, seq_res) = jacobi_sequential(24, 20);
        assert_eq!(r.iterations_run, 20);
        assert_eq!(r.grid.len(), seq.len());
        for (i, (a, b)) in r.grid.iter().zip(&seq).enumerate() {
            assert_eq!(a, b, "cell {i} differs: parallel {a} vs sequential {b}");
        }
        assert_eq!(r.residual, seq_res);
    }

    #[test]
    fn matches_on_mpi_layer_too() {
        let cfg = JacobiConfig {
            n: 12,
            blocks: 3,
            iters: 8,
        };
        let r = run_jacobi(&LayerKind::mpi(), 6, 3, &cfg);
        let (seq, _) = jacobi_sequential(12, 8);
        for (a, b) in r.grid.iter().zip(&seq) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn residual_decreases() {
        let cfg_short = JacobiConfig {
            n: 16,
            blocks: 2,
            iters: 5,
        };
        let cfg_long = JacobiConfig {
            n: 16,
            blocks: 2,
            iters: 50,
        };
        let r1 = run_jacobi(&LayerKind::ugni(), 4, 4, &cfg_short);
        let r2 = run_jacobi(&LayerKind::ugni(), 4, 4, &cfg_long);
        assert!(
            r2.residual < r1.residual,
            "residual must shrink: {} -> {}",
            r1.residual,
            r2.residual
        );
    }

    #[test]
    fn ft_crash_restart_matches_fault_free_grid() {
        use gemini_net::{FaultPlan, NodeCrashWindow};
        let cfg = JacobiConfig {
            n: 24,
            blocks: 4,
            iters: 20,
        };
        let mut plan = FaultPlan::default();
        plan.node_crash.push(NodeCrashWindow {
            node: 1,
            at_ns: 80_000,
            restart_after_ns: Some(40_000),
        });
        let layer = LayerKind::ugni().with_fault(plan);
        // Jacobi saturates its PEs in ~30us bursts: the suspicion timeout
        // must sit well above that or load reads as death.
        let ftc = FtConfig {
            hb_period: 20_000,
            hb_timeout: 150_000,
            ckpt_period: 60_000,
            ..FtConfig::default()
        };
        let (r, ft) = run_jacobi_ft(&layer, 8, 4, &cfg, ftc);
        assert_eq!(ft.recoveries, 1, "the crash was never recovered");
        assert_eq!(r.iterations_run, 20);
        let clean = run_jacobi(&LayerKind::ugni(), 8, 4, &cfg);
        assert_eq!(r.grid, clean.grid, "recovery perturbed the arithmetic");
        assert_eq!(r.residual, clean.residual);
        assert!(
            r.time_ns > clean.time_ns,
            "losing a node for 40us must cost virtual time"
        );
    }

    #[test]
    fn heat_flows_from_top_boundary() {
        let cfg = JacobiConfig {
            n: 16,
            blocks: 4,
            iters: 100,
        };
        let r = run_jacobi(&LayerKind::ugni(), 8, 4, &cfg);
        let n = 16usize;
        // Row 0 (adjacent to hot boundary) must be warmer than the last row.
        let top_avg: f64 = r.grid[..n].iter().sum::<f64>() / n as f64;
        let bottom_avg: f64 = r.grid[(n - 1) * n..].iter().sum::<f64>() / n as f64;
        assert!(top_avg > 0.3, "top {top_avg}");
        assert!(
            bottom_avg < top_avg / 2.0,
            "bottom {bottom_avg} vs top {top_avg}"
        );
    }
}
