//! Shared harness plumbing: layer selection and cluster construction.

use charm_rt::prelude::*;
use gemini_net::{FaultPlan, GeminiParams};
use lrts_mpi::MpiLayer;
use lrts_ugni::{UgniConfig, UgniLayer};
use mpi_sim::MpiConfig;
use sim_core::Time;

/// Which machine layer to run a benchmark on.
#[derive(Debug, Clone)]
pub enum LayerKind {
    /// The paper's uGNI machine layer (configurable optimizations).
    Ugni(UgniConfig),
    /// The MPI-based baseline.
    Mpi(MpiConfig),
    /// Perfect network with constant latency (ablation baseline).
    Ideal(Time),
}

impl LayerKind {
    pub fn ugni() -> Self {
        LayerKind::Ugni(UgniConfig::optimized())
    }

    pub fn mpi() -> Self {
        LayerKind::Mpi(MpiConfig::default())
    }

    pub fn name(&self) -> &'static str {
        match self {
            LayerKind::Ugni(_) => "uGNI-based CHARM++",
            LayerKind::Mpi(_) => "MPI-based CHARM++",
            LayerKind::Ideal(_) => "ideal network",
        }
    }

    /// Chaos knob: run this layer's fabric under `plan`. The ideal layer
    /// has no fabric to break, so the plan is ignored there.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        match &mut self {
            LayerKind::Ugni(cfg) => cfg.params.fault = plan,
            LayerKind::Mpi(cfg) => cfg.params.fault = plan,
            LayerKind::Ideal(_) => {}
        }
        self
    }

    /// The fault plan this layer will run under.
    pub fn fault(&self) -> FaultPlan {
        match self {
            LayerKind::Ugni(cfg) => cfg.params.fault.clone(),
            LayerKind::Mpi(cfg) => cfg.params.fault.clone(),
            LayerKind::Ideal(_) => FaultPlan::default(),
        }
    }

    pub fn make_layer(&self) -> Box<dyn MachineLayer> {
        match self {
            LayerKind::Ugni(cfg) => Box::new(UgniLayer::new(cfg.clone())),
            LayerKind::Mpi(cfg) => Box::new(MpiLayer::new(cfg.clone())),
            LayerKind::Ideal(lat) => Box::new(IdealLayer::new(*lat)),
        }
    }

    /// Hardware parameters used by this layer (for cost models in apps).
    pub fn params(&self) -> GeminiParams {
        match self {
            LayerKind::Ugni(cfg) => cfg.params.clone(),
            LayerKind::Mpi(cfg) => cfg.params.clone(),
            LayerKind::Ideal(_) => GeminiParams::hopper(),
        }
    }

    /// Build a cluster of `num_pes` PEs with `cores_per_node` per node.
    pub fn cluster(&self, num_pes: u32, cores_per_node: u32) -> Cluster {
        let mut cfg = ClusterCfg::new(num_pes, cores_per_node);
        cfg.fault = self.fault();
        Cluster::new(cfg, self.make_layer())
    }

    /// Like [`LayerKind::cluster`] with a Fig.-12-style timeline trace.
    pub fn cluster_traced(&self, num_pes: u32, cores_per_node: u32, bucket: Time) -> Cluster {
        let mut cfg = ClusterCfg::new(num_pes, cores_per_node);
        cfg.trace_bucket = Some(bucket);
        cfg.fault = self.fault();
        Cluster::new(cfg, self.make_layer())
    }

    /// After a run, assert the machine layer's uGNI usage was contract
    /// clean. With the `verify` feature off (release figure builds) the
    /// layers report `None` and this is a no-op; under `cargo test` the
    /// integration-tests crate turns verification on and every app run
    /// doubles as a contract check.
    pub fn assert_contract_clean(&self, c: &mut Cluster) {
        // A crashed endpoint dies mid-protocol by design: its half-open
        // transactions are exactly what the FT layer exists to absorb, so
        // contract verification is meaningless under a node-crash plan.
        if self.fault().has_node_crash() {
            return;
        }
        let report = match self {
            LayerKind::Ugni(_) => c.layer_mut::<UgniLayer>().contract_report(),
            LayerKind::Mpi(_) => c.layer_mut::<MpiLayer>().contract_report(),
            LayerKind::Ideal(_) => None,
        };
        if let Some(report) = report {
            assert!(
                report.is_clean(),
                "uGNI contract violations on {}:\n{report}",
                self.name()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_kinds_construct() {
        for k in [LayerKind::ugni(), LayerKind::mpi(), LayerKind::Ideal(500)] {
            let c = k.cluster(4, 2);
            assert_eq!(c.cfg.num_pes, 4);
            assert!(!k.name().is_empty());
        }
    }
}
