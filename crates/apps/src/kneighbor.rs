//! The synthetic kNeighbor benchmark (paper §V-B, Fig. 10).
//!
//! "each core sends messages to its k left and k right neighbors in a ring
//! virtual topology. When each core receives all the 2*k messages, it
//! proceeds to the next iteration. We measure the total time for sending
//! 2*k messages and receiving 2*k ping-back messages."
//!
//! The paper runs 3 cores on 3 different nodes with k = 1. The interesting
//! result: even though one-way ping-pong latencies are similar, the
//! MPI-based runtime is ~2x slower here because its blocking `MPI_Recv`
//! stalls the progress engine while concurrent messages are in flight —
//! "in uGNI-based CHARM++, the progress engine is free to continue working
//! when the underlying BTE is receiving message".

use crate::common::LayerKind;
use bytes::Bytes;
use charm_rt::prelude::*;
use sim_core::Time;

struct St {
    /// Cumulative neighbor-data messages received.
    data_total: u64,
    /// Cumulative ping-back acks received.
    ack_total: u64,
    /// Iterations this PE has completed.
    iter: u32,
    iters: u32,
    t0: Time,
    total: Time,
    done: bool,
}

/// Advance as many iterations as the cumulative counts allow; returns
/// the next batches to send. Counting cumulatively makes early arrivals
/// from faster neighbors (already in iteration i+1) harmless.
fn maybe_advance(ctx: &mut PeCtx, expected: u64) -> u32 {
    let now = ctx.now();
    let pe = ctx.pe();
    let st = ctx.user::<St>();
    let mut batches = 0;
    while !st.done
        && st.ack_total >= expected * (st.iter as u64 + 1)
        && st.data_total >= expected * (st.iter as u64 + 1)
    {
        st.iter += 1;
        if pe == 0 {
            st.total += now - st.t0;
            st.t0 = now;
        }
        if st.iter >= st.iters {
            st.done = true;
        } else {
            batches += 1;
        }
    }
    batches
}

/// Average per-iteration time in ns, measured on PE 0.
pub fn kneighbor_iteration_time(
    layer: &LayerKind,
    cores: u32,
    cores_per_node: u32,
    k: u32,
    bytes: usize,
    iters: u32,
) -> f64 {
    kneighbor_report(layer, cores, cores_per_node, k, bytes, iters).0
}

/// [`kneighbor_iteration_time`] plus the driver's [`RunReport`].
pub fn kneighbor_report(
    layer: &LayerKind,
    cores: u32,
    cores_per_node: u32,
    k: u32,
    bytes: usize,
    iters: u32,
) -> (f64, RunReport) {
    assert!(cores > 2 * k, "ring too small for k");
    let mut c = layer.cluster(cores, cores_per_node);
    c.init_user(|_| St {
        data_total: 0,
        ack_total: 0,
        iter: 0,
        iters,
        t0: 0,
        total: 0,
        done: false,
    });

    let expected = (2 * k) as u64;
    let neighbors = move |pe: PeId| -> Vec<PeId> {
        let mut v = Vec::new();
        for d in 1..=k {
            v.push((pe + d) % cores);
            v.push((pe + cores - d) % cores);
        }
        v
    };

    let ack = std::sync::Arc::new(std::sync::OnceLock::new());
    let ack2 = ack.clone();
    let data_cell = std::sync::Arc::new(std::sync::OnceLock::new());
    let data_cell2 = data_cell.clone();

    // All data messages carry the same zeroed payload; share one
    // refcounted buffer instead of alloc+memset-ing per send (wire bytes
    // and therefore virtual times are identical — `Bytes` rides the typed
    // AM direct path untouched).
    let zeros = Bytes::from(vec![0u8; bytes]);
    let zeros_data = zeros.clone();
    let data = c.register_am::<Bytes>(move |ctx, src, payload| {
        // Ping back, reusing the buffer (paper: "the same message buffer is
        // used to send the ack back").
        ctx.am_send(src, *ack2.get().expect("ack AM registered"), payload);
        ctx.user::<St>().data_total += 1;
        let batches = maybe_advance(ctx, expected);
        let me = *data_cell2.get().expect("data AM registered");
        for _ in 0..batches {
            for n in neighbors(ctx.pe()) {
                ctx.am_send(n, me, zeros_data.clone());
            }
        }
    });
    data_cell.set(data).expect("set once");
    let zeros_ack = zeros.clone();
    let ack_h = c.register_am::<Bytes>(move |ctx, _src, _payload| {
        ctx.user::<St>().ack_total += 1;
        let batches = maybe_advance(ctx, expected);
        for _ in 0..batches {
            for n in neighbors(ctx.pe()) {
                ctx.am_send(n, data, zeros_ack.clone());
            }
        }
    });
    ack.set(ack_h).expect("set once");

    let kick = c.register_handler(move |ctx, _| {
        let now = ctx.now();
        ctx.user::<St>().t0 = now;
        for n in neighbors(ctx.pe()) {
            ctx.am_send(n, data, zeros.clone());
        }
    });
    for pe in 0..cores {
        c.inject(0, pe, kick, Bytes::new());
    }
    let report = c.run();
    let st = c.user::<St>(0);
    assert!(
        st.done,
        "kNeighbor stalled: finished {} of {} iterations (data {}, acks {})",
        st.iter, iters, st.data_total, st.ack_total
    );
    (st.total as f64 / iters as f64, report)
}

/// Fine-grained kNeighbor: each core sends `msgs` 16-byte typed AMs to
/// each of its 2k ring neighbors per iteration, and every data AM is
/// acked with an empty AM — the many-tiny-messages shape where SMSG's
/// fixed per-message cost dominates and destination-batched aggregation
/// pays (ISSUE 10's `aggregation` figure). Returns the average
/// per-iteration time and the run report; `aggregate` toggles the AM
/// coalescing engine, everything else is identical.
pub fn kneighbor_fine_report(
    layer: &LayerKind,
    cores: u32,
    cores_per_node: u32,
    k: u32,
    msgs: u32,
    iters: u32,
    aggregate: bool,
) -> (f64, RunReport) {
    assert!(cores > 2 * k, "ring too small for k");
    let mut c = layer.cluster(cores, cores_per_node);
    c.am_config(AmConfig {
        aggregation: aggregate,
        // Tight flush bound: the tiny-AM bursts are latency-sensitive, so
        // straggler constituents must not idle a full default window.
        flush_delay_ns: 1_000,
        ..AmConfig::default()
    });
    c.init_user(|_| St {
        data_total: 0,
        ack_total: 0,
        iter: 0,
        iters,
        t0: 0,
        total: 0,
        done: false,
    });

    let expected = (2 * k * msgs) as u64;
    let neighbors = move |pe: PeId| -> Vec<PeId> {
        let mut v = Vec::new();
        for d in 1..=k {
            v.push((pe + d) % cores);
            v.push((pe + cores - d) % cores);
        }
        v
    };

    let ack = std::sync::Arc::new(std::sync::OnceLock::new());
    let ack2 = ack.clone();
    let data_cell = std::sync::Arc::new(std::sync::OnceLock::new());
    let data_cell2 = data_cell.clone();

    let data = c.register_am::<[u8; 16]>(move |ctx, src, payload| {
        ctx.am_send(src, *ack2.get().expect("ack AM registered"), ());
        ctx.user::<St>().data_total += 1;
        let batches = maybe_advance(ctx, expected);
        let me = *data_cell2.get().expect("data AM registered");
        for _ in 0..batches {
            for n in neighbors(ctx.pe()) {
                for _ in 0..msgs {
                    ctx.am_send(n, me, payload);
                }
            }
        }
    });
    data_cell.set(data).expect("set once");
    let ack_h = c.register_am::<()>(move |ctx, _src, ()| {
        ctx.user::<St>().ack_total += 1;
        let batches = maybe_advance(ctx, expected);
        for _ in 0..batches {
            for n in neighbors(ctx.pe()) {
                for _ in 0..msgs {
                    ctx.am_send(n, data, [0u8; 16]);
                }
            }
        }
    });
    ack.set(ack_h).expect("set once");

    let kick = c.register_handler(move |ctx, _| {
        let now = ctx.now();
        ctx.user::<St>().t0 = now;
        for n in neighbors(ctx.pe()) {
            for _ in 0..msgs {
                ctx.am_send(n, data, [0u8; 16]);
            }
        }
    });
    for pe in 0..cores {
        c.inject(0, pe, kick, Bytes::new());
    }
    let report = c.run();
    let st = c.user::<St>(0);
    assert!(
        st.done,
        "fine kNeighbor stalled: finished {} of {} iterations (data {}, acks {})",
        st.iter, iters, st.data_total, st.ack_total
    );
    (st.total as f64 / iters as f64, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_and_times_positive() {
        let t = kneighbor_iteration_time(&LayerKind::ugni(), 3, 1, 1, 1024, 4);
        assert!(t > 0.0);
    }

    #[test]
    fn all_layers_complete_all_iterations() {
        for layer in [LayerKind::ugni(), LayerKind::mpi(), LayerKind::Ideal(900)] {
            let t = kneighbor_iteration_time(&layer, 5, 1, 2, 16_384, 6);
            assert!(t > 0.0, "{}", layer.name());
        }
    }

    #[test]
    fn fig10_mpi_slower_for_large_messages() {
        // Paper Fig. 10: "The latency on uGNI-based CHARM++ is only half of
        // that on the MPI-based CHARM++ ... even for 1M byte message".
        let u = kneighbor_iteration_time(&LayerKind::ugni(), 3, 1, 1, 262_144, 10);
        let m = kneighbor_iteration_time(&LayerKind::mpi(), 3, 1, 1, 262_144, 10);
        assert!(
            u * 1.4 < m,
            "expected MPI well behind under concurrency: uGNI {u:.0}ns MPI {m:.0}ns"
        );
    }

    #[test]
    fn fine_grained_aggregation_preserves_results_and_saves_virtual_time() {
        let (t_off, r_off) = kneighbor_fine_report(&LayerKind::ugni(), 6, 2, 2, 8, 6, false);
        let (t_on, r_on) = kneighbor_fine_report(&LayerKind::ugni(), 6, 2, 2, 8, 6, true);
        assert!(t_off > 0.0 && t_on > 0.0);
        assert_eq!(r_off.stats.am_batches, 0);
        assert!(r_on.stats.am_batches > 0, "nothing aggregated");
        assert!(
            r_on.stats.msgs_sent < r_off.stats.msgs_sent,
            "batching must shrink envelope count: {} vs {}",
            r_on.stats.msgs_sent,
            r_off.stats.msgs_sent
        );
        assert!(
            r_on.end_time < r_off.end_time,
            "aggregated fine-grained run must finish earlier: {} vs {}",
            r_on.end_time,
            r_off.end_time
        );
    }

    #[test]
    fn larger_k_multiplies_traffic() {
        let t1 = kneighbor_iteration_time(&LayerKind::ugni(), 8, 1, 1, 4096, 5);
        let t3 = kneighbor_iteration_time(&LayerKind::ugni(), 8, 1, 3, 4096, 5);
        assert!(t3 > t1, "k=3 moves 3x the messages: {t1} vs {t3}");
    }
}
