//! Ping-pong latency and bandwidth benchmarks at three levels of the stack
//! (paper Figs. 1, 6, 8a, 8b, 8c, 9a, 9b):
//!
//! * **raw uGNI** — drive the simulated `Gni` directly (the "pure uGNI"
//!   curves);
//! * **raw MPI** — drive `MpiSim` directly, with same-buffer or
//!   fresh-buffer variants (the two "pure MPI" curves of Fig. 9a);
//! * **Charm level** — a ping-pong written against the runtime API, linked
//!   with either machine layer (paper: "linked with either MPI- or
//!   uGNI-based message-driven runtime for comparison").

use crate::common::LayerKind;
use bytes::Bytes;
use charm_rt::prelude::*;
use gemini_net::{GeminiParams, Mechanism, RdmaOp};
use mpi_sim::{MpiConfig, MpiSim};
use sim_core::Time;
use ugni::{Gni, PostDescriptor};

/// One-way latency in ns of a single `bytes` transfer over raw uGNI using
/// the best native scheme (SMSG for small, pre-exchanged-handle GET for
/// large) — the "pure uGNI" baseline.
pub fn raw_ugni_one_way(params: &GeminiParams, bytes: u64) -> Time {
    let mut g = Gni::new(params.clone(), 2);
    let cq = g.cq_create();
    if bytes <= g.smsg_limit() as u64 {
        let ep = g.ep_create(0, 1, cq).expect("ep");
        let ok = g
            .smsg_send_w_tag(0, ep, 0, Bytes::from(vec![0u8; bytes as usize]))
            .expect("smsg");
        return ok.deliver_at + g.smsg_get_next_w_tag(1, 1, ok.deliver_at).unwrap().cpu;
    }
    // Pre-registered buffers on both sides, receiver GETs.
    let mech = params.preferred_mechanism(bytes);
    raw_transaction_latency(params, bytes, mech, RdmaOp::Get)
}

/// Latency of one raw FMA/BTE PUT/GET transaction of `bytes` between two
/// adjacent nodes with pre-registered memory — the four curves of Fig. 4.
pub fn raw_transaction_latency(
    params: &GeminiParams,
    bytes: u64,
    mech: Mechanism,
    op: RdmaOp,
) -> Time {
    let mut g = Gni::new(params.clone(), 2);
    let cq = g.cq_create();
    // Initiator is node 1 for GET (data flows 0 -> 1), node 0 for PUT.
    let (init, remote) = match op {
        RdmaOp::Get => (1u32, 0u32),
        RdmaOp::Put => (0, 1),
    };
    let ep = g.ep_create(init, remote, cq).expect("ep");
    let la = g.alloc_addr(init).expect("alloc");
    let (lh, _) = g.mem_register(init, la, bytes.max(1)).expect("register");
    let ra = g.alloc_addr(remote).expect("alloc");
    let (rh, _) = g.mem_register(remote, ra, bytes.max(1)).expect("register");
    let data = Bytes::from(vec![0u8; bytes as usize]);
    g.mem_write(remote, ra, data.clone());
    g.mem_write(init, la, data.clone());
    let desc = PostDescriptor {
        op,
        local_mem: lh,
        local_addr: la,
        remote_mem: rh,
        remote_addr: ra,
        bytes,
        data: Some(data),
        user_id: 0,
    };
    let ok = match mech {
        Mechanism::Fma => g.post_fma(0, ep, desc),
        Mechanism::Bte => g.post_rdma(0, ep, desc),
    }
    .expect("post");
    // One-way data latency: CPU post cost + time to data visibility.
    ok.data_at.max(ok.cpu)
}

/// Raw MPI ping-pong one-way latency in ns. `same_buffer` selects whether
/// the application reuses one buffer (uDREG-friendly) or uses a fresh one
/// per iteration — the paper's two MPI variants in Fig. 9a.
pub fn raw_mpi_one_way(cfg: &MpiConfig, bytes: u64, iters: u32, same_buffer: bool) -> f64 {
    let mut m = MpiSim::new(cfg.clone(), 2, 1);
    let payload = Bytes::from(vec![0u8; bytes as usize]);
    let buf0 = m.fresh_buf(0);
    let buf1 = m.fresh_buf(1);
    let rb0 = m.fresh_buf(0);
    let rb1 = m.fresh_buf(1);
    let mut t: Time = 0;
    let mut t_measure_start = 0;
    let warmup = 4.min(iters / 2);
    for it in 0..iters {
        if it == warmup {
            t_measure_start = t;
        }
        for dir in 0..2u32 {
            let (src, dst) = if dir == 0 { (0, 1) } else { (1, 0) };
            let (sbuf, rbuf) = if same_buffer {
                if dir == 0 {
                    (buf0, rb1)
                } else {
                    (buf1, rb0)
                }
            } else {
                (m.fresh_buf(src), m.fresh_buf(dst))
            };
            let fx = m.isend(t, src, dst, 0, payload.clone(), sbuf);
            let wake = fx.wakes.first().map(|w| w.1).unwrap_or(t + fx.cpu);
            // Receiver polls at the wake time.
            let (hit, probe_cpu) = m.iprobe(wake, dst, None, None);
            assert!(hit.is_some(), "pingpong lost a message");
            let out = m
                .recv(wake + probe_cpu, dst, Some(src), Some(0), rbuf)
                .expect("recv");
            t = out.done_at;
        }
    }
    let measured = (iters - warmup) as f64;
    (t - t_measure_start) as f64 / (2.0 * measured)
}

/// Charm-level ping-pong one-way latency in ns (inter-node when
/// `cores_per_node == 1`, intra-node when both PEs share a node).
pub fn charm_one_way(
    layer: &LayerKind,
    cores_per_node: u32,
    bytes: usize,
    iters: u64,
    persistent: bool,
) -> f64 {
    charm_one_way_with_recovery(layer, cores_per_node, bytes, iters, persistent).0
}

/// Like [`charm_one_way`], but also reports the fraction of the run's
/// *work* time (busy + overhead + recovery — idle excluded, since
/// ping-pong is latency-bound) spent on fault recovery, 0.0 on
/// fault-free runs: `(one_way_ns, recovery_fraction)`.
pub fn charm_one_way_with_recovery(
    layer: &LayerKind,
    cores_per_node: u32,
    bytes: usize,
    iters: u64,
    persistent: bool,
) -> (f64, f64) {
    let (lat, rec, _) = charm_one_way_report(layer, cores_per_node, bytes, iters, persistent);
    (lat, rec)
}

/// Like [`charm_one_way_with_recovery`], additionally returning the
/// driver's [`RunReport`] (virtual end time, event/message counts) — the
/// wallclock benchmark harness uses it to compute events/sec.
pub fn charm_one_way_report(
    layer: &LayerKind,
    cores_per_node: u32,
    bytes: usize,
    iters: u64,
    persistent: bool,
) -> (f64, f64, RunReport) {
    let mut c = layer.cluster(2, cores_per_node);
    struct St {
        remaining: u64,
        handle: Option<PersistentHandle>,
        t0: Time,
        elapsed: Time,
    }
    c.init_user(|_| St {
        remaining: iters,
        handle: None,
        t0: 0,
        elapsed: 0,
    });
    let h = c.register_handler(move |ctx, env| {
        let peer = 1 - ctx.pe();
        if ctx.pe() == 0 {
            let now = ctx.now();
            let st = ctx.user::<St>();
            st.remaining -= 1;
            if st.remaining == 0 {
                st.elapsed = now - st.t0;
                ctx.stop();
                return;
            }
        }
        let handle = ctx.user::<St>().handle;
        match handle {
            Some(hd) => ctx.send_persistent(hd, peer, env.handler, env.payload.clone()),
            None => ctx.send(peer, env.handler, env.payload.clone()),
        }
    });
    let kick = c.register_handler(move |ctx, _| {
        if persistent {
            let hd = ctx.create_persistent(1 - ctx.pe(), bytes as u64 + 64);
            ctx.user::<St>().handle = Some(hd);
        }
        if ctx.pe() == 0 {
            let now = ctx.now();
            let payload = Bytes::from(vec![0u8; bytes]);
            let st = ctx.user::<St>();
            st.remaining = iters;
            st.t0 = now;
            let handle = st.handle;
            match handle {
                Some(hd) => ctx.send_persistent(hd, 1, h, payload),
                None => ctx.send(1, h, payload),
            }
        }
    });
    c.inject(0, 1, kick, Bytes::new());
    c.inject(50_000, 0, kick, Bytes::new());
    let report = c.run();
    layer.assert_contract_clean(&mut c);
    let lat = c.user::<St>(0).elapsed as f64 / (2.0 * iters as f64);
    let (busy, ovh, rec, _) = c.trace().utilization_with_recovery(Some(report.end_time));
    let work = busy + ovh + rec;
    (lat, if work > 0.0 { rec / work } else { 0.0 }, report)
}

/// One ping-pong endpoint as a chare element: `count` completed rounds.
struct PpSt {
    count: u64,
}

impl Checkpoint for PpSt {
    fn save(&self) -> Vec<u8> {
        self.count.to_le_bytes().to_vec()
    }

    fn restore(bytes: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[..8]);
        PpSt {
            count: u64::from_le_bytes(b),
        }
    }
}

/// Fault-tolerant Charm-level ping-pong: element 0 (node 0) rallies with
/// the element homed on node 1's first PE, checkpointing on the FT
/// cadence, surviving any crash window in the layer's fault plan that
/// spares node 0. Returns the rounds completed by each endpoint (both
/// must equal `rounds` — the exactly-once check), the virtual end time,
/// and the FT activity report.
pub fn run_pingpong_ft(
    layer: &LayerKind,
    num_pes: u32,
    cores_per_node: u32,
    bytes: usize,
    rounds: u64,
    ft: FtConfig,
) -> (u64, u64, Time, FtReport) {
    assert!(num_pes > cores_per_node, "need a second node to rally with");
    let peer = cores_per_node as u64;
    let mut c = layer.cluster(num_pes, cores_per_node);
    c.enable_ft(ft);
    let aid = c.create_array("pp", num_pes as u64, |_| PpSt { count: 0 });
    c.ft_array::<PpSt>(aid);

    let rally_cell: std::sync::Arc<std::sync::OnceLock<EntryId>> =
        std::sync::Arc::new(std::sync::OnceLock::new());
    let rc = rally_cell.clone();
    let rally = c.register_entry::<PpSt>(aid, move |ctx, st, idx, payload| {
        let rally = *rc.get().expect("entry registered");
        ctx.charge(100);
        st.count += 1;
        if idx == 0 {
            // A pong landed: one round done.
            if st.count >= rounds {
                ctx.stop();
                return;
            }
            ctx.charm_send(aid, peer, rally, payload.clone());
            ctx.ft_maybe_checkpoint();
        } else {
            ctx.charm_send(aid, 0, rally, payload.clone());
        }
    });
    rally_cell.set(rally).expect("set once");
    // Element 0's serve: fires at start and after every recovery (the
    // in-flight ball died with the old epoch; the restored count says
    // which round to replay).
    let serve = c.register_entry::<PpSt>(aid, move |ctx, _st, _idx, payload| {
        ctx.charm_send(aid, peer, rally, payload.clone());
    });
    let resume = c.register_handler(move |ctx, _env| {
        ctx.charm_send(aid, 0, serve, Bytes::from(vec![0u8; bytes]));
    });
    c.ft_on_resume(resume, 0);

    c.inject_entry(0, aid, 0, serve, Bytes::from(vec![0u8; bytes]));
    let report = c.run();
    layer.assert_contract_clean(&mut c);
    let c0 = c.element::<PpSt>(aid, 0).count;
    let cp = c.element::<PpSt>(aid, peer).count;
    (c0, cp, report.end_time, c.ft_report())
}

/// Charm-level streaming bandwidth in MB/s: `window` messages of `bytes`
/// in flight from PE 0 to PE 1, acked in bulk (Fig. 9b).
pub fn charm_bandwidth(layer: &LayerKind, bytes: usize, window: u32, rounds: u32) -> f64 {
    charm_bandwidth_report(layer, bytes, window, rounds).0
}

/// [`charm_bandwidth`] plus the driver's [`RunReport`].
pub fn charm_bandwidth_report(
    layer: &LayerKind,
    bytes: usize,
    window: u32,
    rounds: u32,
) -> (f64, RunReport) {
    let mut c = layer.cluster(2, 1);
    #[derive(Default)]
    struct St {
        got: u32,
        rounds_left: u32,
        t0: Time,
        total: Time,
        total_bytes: u64,
    }
    c.init_user(|_| St::default());
    let ack = std::sync::Arc::new(std::sync::OnceLock::new());
    let ack2 = ack.clone();
    let data = c.register_handler(move |ctx, env| {
        // Receiver counts; acks the window when complete.
        let full = {
            let st = ctx.user::<St>();
            st.got += 1;
            st.got == window
        };
        if full {
            ctx.user::<St>().got = 0;
            ctx.send(
                0,
                *ack2.get().expect("ack handler registered"),
                Bytes::new(),
            );
        }
        let _ = env;
    });
    // One refcounted payload shared by every message in the stream: the
    // wire contents are identical to a fresh zeroed buffer per send, so
    // virtual time is unchanged, but the host stops paying a
    // payload-sized alloc+memset per message.
    let zeros = Bytes::from(vec![0u8; bytes]);
    let zeros_ack = zeros.clone();
    let ack_h = c.register_handler(move |ctx, _| {
        let now = ctx.now();
        let send_more = {
            let st = ctx.user::<St>();
            st.total += now - st.t0;
            st.total_bytes += window as u64 * bytes as u64;
            st.rounds_left -= 1;
            if st.rounds_left == 0 {
                ctx.stop();
                false
            } else {
                st.t0 = now;
                true
            }
        };
        if send_more {
            for _ in 0..window {
                ctx.send(1, data, zeros_ack.clone());
            }
        }
    });
    ack.set(ack_h).expect("set once");
    let kick = c.register_handler(move |ctx, _| {
        let now = ctx.now();
        {
            let st = ctx.user::<St>();
            st.rounds_left = rounds;
            st.t0 = now;
        }
        for _ in 0..window {
            ctx.send(1, data, zeros.clone());
        }
    });
    c.inject(0, 0, kick, Bytes::new());
    let report = c.run();
    layer.assert_contract_clean(&mut c);
    let st = c.user::<St>(0);
    // bytes / ns == GB/s; report MB/s like the paper.
    ((st.total_bytes as f64 / st.total as f64) * 1000.0, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_ugni_small_matches_calibration() {
        let p = GeminiParams::hopper();
        let t = raw_ugni_one_way(&p, 8);
        assert!((900..1500).contains(&t), "8B pure uGNI {t}ns");
    }

    #[test]
    fn fig4_shapes() {
        let p = GeminiParams::hopper();
        // Small: FMA wins; large: BTE wins; GET slower than PUT.
        let fma_s = raw_transaction_latency(&p, 64, Mechanism::Fma, RdmaOp::Put);
        let bte_s = raw_transaction_latency(&p, 64, Mechanism::Bte, RdmaOp::Put);
        assert!(fma_s < bte_s);
        let fma_l = raw_transaction_latency(&p, 1 << 20, Mechanism::Fma, RdmaOp::Put);
        let bte_l = raw_transaction_latency(&p, 1 << 20, Mechanism::Bte, RdmaOp::Put);
        assert!(bte_l < fma_l);
        let put = raw_transaction_latency(&p, 4096, Mechanism::Fma, RdmaOp::Put);
        let get = raw_transaction_latency(&p, 4096, Mechanism::Fma, RdmaOp::Get);
        assert!(get > put);
    }

    #[test]
    fn raw_mpi_same_buffer_faster_for_large() {
        let cfg = MpiConfig::default();
        let same = raw_mpi_one_way(&cfg, 65536, 12, true);
        let diff = raw_mpi_one_way(&cfg, 65536, 12, false);
        assert!(
            same < diff,
            "same-buffer {same:.0}ns should beat fresh-buffer {diff:.0}ns"
        );
    }

    #[test]
    fn raw_mpi_small_buffering_irrelevant() {
        let cfg = MpiConfig::default();
        let same = raw_mpi_one_way(&cfg, 8, 12, true);
        let diff = raw_mpi_one_way(&cfg, 8, 12, false);
        let ratio = same / diff;
        assert!((0.9..1.1).contains(&ratio), "{same:.0} vs {diff:.0}");
    }

    #[test]
    fn fig1_ordering_small_messages() {
        // Paper Fig. 1: uGNI < MPI < MPI-based CHARM++.
        let p = GeminiParams::hopper();
        let ugni = raw_ugni_one_way(&p, 256) as f64;
        let mpi = raw_mpi_one_way(&MpiConfig::default(), 256, 20, true);
        let charm_mpi = charm_one_way(&LayerKind::mpi(), 1, 256, 50, false);
        assert!(ugni < mpi, "uGNI {ugni:.0} !< MPI {mpi:.0}");
        assert!(mpi < charm_mpi, "MPI {mpi:.0} !< charm-MPI {charm_mpi:.0}");
    }

    #[test]
    fn fig9a_ordering_at_64k() {
        // uGNI-based CHARM++ beats MPI-based CHARM++ for large messages.
        let u = charm_one_way(&LayerKind::ugni(), 1, 65536, 30, false);
        let m = charm_one_way(&LayerKind::mpi(), 1, 65536, 30, false);
        assert!(u < m, "charm-uGNI {u:.0}ns !< charm-MPI {m:.0}ns");
    }

    #[test]
    fn ft_pingpong_survives_crash_exactly_once() {
        use gemini_net::{FaultPlan, NodeCrashWindow};
        // Restart and gone-for-good (redistribute) modes both finish with
        // exactly `rounds` on each endpoint — no lost or doubled rounds.
        for restart in [Some(30_000), None] {
            let mut plan = FaultPlan::default();
            plan.node_crash.push(NodeCrashWindow {
                node: 1,
                at_ns: 50_000,
                restart_after_ns: restart,
            });
            let layer = LayerKind::ugni().with_fault(plan);
            // Detector sized above the layer's startup transient (the
            // first-touch mempool slab registration stalls each PE ~22us
            // once) so suspicion only fires on the real crash.
            let ftc = FtConfig {
                hb_period: 20_000,
                hb_timeout: 150_000,
                ckpt_period: 40_000,
                ..FtConfig::default()
            };
            let (c0, cp, _t, ft) = run_pingpong_ft(&layer, 4, 2, 256, 100, ftc);
            assert_eq!(ft.recoveries, 1, "restart={restart:?}");
            assert_eq!((c0, cp), (100, 100), "restart={restart:?}");
        }
    }

    #[test]
    fn bandwidth_grows_with_message_size_and_approaches_link() {
        let k = LayerKind::ugni();
        let bw_64k = charm_bandwidth(&k, 65536, 8, 6);
        let bw_4m = charm_bandwidth(&k, 4 << 20, 4, 4);
        assert!(bw_4m > bw_64k, "bandwidth should grow: {bw_64k} vs {bw_4m}");
        assert!(bw_4m < 6200.0, "cannot exceed link rate: {bw_4m} MB/s");
        assert!(bw_4m > 3000.0, "large-message bandwidth too low: {bw_4m}");
    }
}
