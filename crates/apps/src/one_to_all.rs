//! The one-to-all benchmark (paper Fig. 9c).
//!
//! "processor 0 sends a message to one core on each remote node, and each
//! destination core sends an ack message back." Run on 16 nodes; the
//! metric is the time for one full round (all sends out, all acks in),
//! averaged over iterations.

use crate::common::LayerKind;
use bytes::Bytes;
use charm_rt::prelude::*;
use sim_core::Time;

/// Average round latency in ns for `bytes`-sized messages from PE 0 to one
/// core on each of the other `nodes - 1` nodes.
pub fn one_to_all_latency(
    layer: &LayerKind,
    nodes: u32,
    cores_per_node: u32,
    bytes: usize,
    iters: u32,
) -> f64 {
    let num_pes = nodes * cores_per_node;
    let mut c = layer.cluster(num_pes, cores_per_node);
    struct St {
        acks: u32,
        rounds_left: u32,
        t0: Time,
        total: Time,
    }
    c.init_user(|_| St {
        acks: 0,
        rounds_left: 0,
        t0: 0,
        total: 0,
    });

    let targets: Vec<PeId> = (1..nodes).map(|n| n * cores_per_node).collect();
    let n_targets = targets.len() as u32;

    let ack = std::sync::Arc::new(std::sync::OnceLock::new());
    let ack2 = ack.clone();
    let data = c.register_am::<Bytes>(move |ctx, _src, _payload| {
        // Remote core: ack back with a small message.
        ctx.am_send(0, *ack2.get().expect("ack AM registered"), ());
    });
    let targets2 = targets.clone();
    let ack_h = c.register_am::<()>(move |ctx, _src, ()| {
        let now = ctx.now();
        let go_again = {
            let st = ctx.user::<St>();
            st.acks += 1;
            if st.acks < n_targets {
                return;
            }
            st.acks = 0;
            st.total += now - st.t0;
            st.rounds_left -= 1;
            if st.rounds_left == 0 {
                ctx.stop();
                false
            } else {
                st.t0 = now;
                true
            }
        };
        if go_again {
            for &t in &targets2 {
                ctx.am_send(t, data, Bytes::from(vec![0u8; bytes]));
            }
        }
    });
    ack.set(ack_h).expect("set once");
    let targets3 = targets;
    let kick = c.register_handler(move |ctx, _| {
        let now = ctx.now();
        {
            let st = ctx.user::<St>();
            st.rounds_left = iters;
            st.t0 = now;
        }
        for &t in &targets3 {
            ctx.am_send(t, data, Bytes::from(vec![0u8; bytes]));
        }
    });
    c.inject(0, 0, kick, Bytes::new());
    c.run();
    let st = c.user::<St>(0);
    st.total as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_targets_ack_and_rounds_complete() {
        let t = one_to_all_latency(&LayerKind::ugni(), 4, 2, 1024, 3);
        assert!(t > 0.0);
    }

    #[test]
    fn fig9c_small_messages_ugni_wins_by_margin() {
        // Paper: "for small messages, uGNI-based CHARM++ outperforms
        // MPI-based CHARM++ by a large margin" (16 nodes).
        let u = one_to_all_latency(&LayerKind::ugni(), 16, 1, 128, 5);
        let m = one_to_all_latency(&LayerKind::mpi(), 16, 1, 128, 5);
        assert!(
            u * 1.3 < m,
            "expected >30% win for small messages: uGNI {u:.0}ns vs MPI {m:.0}ns"
        );
    }

    #[test]
    fn fig9c_gap_closes_for_large_messages() {
        let size = 1 << 20;
        let u = one_to_all_latency(&LayerKind::ugni(), 16, 1, size, 3);
        let m = one_to_all_latency(&LayerKind::mpi(), 16, 1, size, 3);
        let small_u = one_to_all_latency(&LayerKind::ugni(), 16, 1, 128, 3);
        let small_m = one_to_all_latency(&LayerKind::mpi(), 16, 1, 128, 3);
        let large_gap = m / u;
        let small_gap = small_m / small_u;
        assert!(
            large_gap < small_gap,
            "gap should close as size grows: small x{small_gap:.2}, large x{large_gap:.2}"
        );
    }

    #[test]
    fn scales_with_node_count() {
        let t4 = one_to_all_latency(&LayerKind::ugni(), 4, 1, 1024, 3);
        let t16 = one_to_all_latency(&LayerKind::ugni(), 16, 1, 1024, 3);
        assert!(t16 > t4, "more targets must take longer");
    }
}
