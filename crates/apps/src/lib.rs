//! `charm-apps`: benchmark programs and proxy applications from the
//! paper's evaluation (§V), all written against the `charm-rt` public API
//! and linkable against either machine layer:
//!
//! * [`pingpong`] — latency/bandwidth at the uGNI, MPI, and Charm levels
//!   (Figs. 1, 4, 6, 8, 9a, 9b);
//! * [`one_to_all`] — the one-to-all latency benchmark (Fig. 9c);
//! * [`kneighbor`] — the synthetic kNeighbor benchmark (Fig. 10);
//! * [`nqueens`] — N-Queens on the state-space search engine
//!   (Fig. 11, Fig. 12, Table I);
//! * [`jacobi2d`] — a 5-point stencil on a chare array (example app);
//! * [`minimd`] — a NAMD-like molecular-dynamics proxy with patches,
//!   pairwise computes, per-step PME, and greedy measurement-based load
//!   balancing (Fig. 13, Table II).

pub mod common;
pub mod jacobi2d;
pub mod kneighbor;
pub mod minimd;
pub mod nqueens;
pub mod one_to_all;
pub mod pingpong;

pub use common::LayerKind;
