//! Simulated user-level Generic Network Interface (uGNI).
//!
//! This crate substitutes for Cray's `libugni` (see DESIGN.md §1): the same
//! API shape — endpoints, completion queues, memory registration, SMSG,
//! FMA/BTE posts — implemented over the [`gemini_net`] timing model. The
//! machine layers (`lrts-ugni`, `mpi-sim`) are written against this API
//! exactly as the paper's machine layer is written against real uGNI.
//!
//! Two simulation-specific conventions:
//!
//! * **No daemon threads.** Every call returns the timestamps of the events
//!   it causes ([`SmsgSendOk::deliver_at`], [`PostOk::local_cq_at`]); the
//!   runtime driver schedules progress wake-ups from them. Polling a CQ or
//!   mailbox "too early" returns [`GniError::NotDone`], as on real hardware.
//! * **Payload transport.** Registered memory can hold content
//!   ([`Gni::mem_write`]); a GET returns the remote content, a PUT deposits
//!   its payload into remote memory. This models RDMA data movement without
//!   a real address space.

pub mod types;

use bytes::Bytes;
use gemini_net::{Addr, Fabric, FaultKind, GeminiParams, Mechanism, MemHandle, NodeId, RdmaOp};
use sim_core::{EventQueue, Time};
use std::collections::HashMap;

pub use types::*;

struct Endpoint {
    local: NodeId,
    remote: NodeId,
    /// Process-level connection key: (local instance, remote instance).
    /// Mailbox credits and RX queues are per instance (PE), matching the
    /// paper's per-process peer-to-peer connections.
    conn: (u32, u32),
    cq: CqHandle,
}

#[derive(Default)]
struct Cq {
    events: EventQueue<CqEvent>,
    /// Overrun error state (`GNI_CQ_OVERRUN`): set when an event arrives
    /// past the configured depth, cleared only by [`Gni::cq_resync`].
    overrun: bool,
    /// Events that fell off the queue during the overrun, kept so a resync
    /// can audit outstanding transactions and recover them.
    lost: Vec<(Time, CqEvent)>,
}

/// The per-job uGNI instance: owns the fabric and all handles.
pub struct Gni {
    fabric: Fabric,
    cqs: Vec<Cq>,
    eps: Vec<Endpoint>,
    /// Per-(node, instance) inbound SMSG mailboxes (time-ordered).
    #[allow(clippy::type_complexity)]
    rx: HashMap<(NodeId, u32), EventQueue<(u8, u32, Bytes)>>,
    /// Per-node shared MSGQ queues: (tag, from_inst, dst_inst, data).
    msgq_rx: HashMap<NodeId, EventQueue<(u8, u32, u32, Bytes)>>,
    /// Content of simulated buffers, keyed by address (blocks carved from
    /// one registered slab have distinct addresses), for RDMA data
    /// movement.
    contents: HashMap<(NodeId, Addr), Bytes>,
    /// Per-node bump allocator for simulated addresses.
    next_addr: Vec<u64>,
    /// One-shot latch for `FaultPlan::force_cq_overrun_at`.
    forced_overrun_done: bool,
    /// Lifetime count of CQ overrun episodes.
    pub cq_overruns: u64,
}

impl Gni {
    /// Bring up uGNI on a fabric spanning `job_nodes` nodes, with the torus
    /// shaped to the job.
    pub fn new(params: GeminiParams, job_nodes: u32) -> Self {
        Self::with_fabric(Fabric::for_job(params, job_nodes))
    }

    /// Bring up uGNI on an explicitly shaped fabric.
    pub fn with_fabric(fabric: Fabric) -> Self {
        let n = fabric.job_nodes() as usize;
        Gni {
            fabric,
            cqs: Vec::new(),
            eps: Vec::new(),
            rx: HashMap::new(),
            msgq_rx: HashMap::new(),
            contents: HashMap::new(),
            next_addr: (0..n).map(|i| (i as u64 + 1) << 44).collect(),
            forced_overrun_done: false,
            cq_overruns: 0,
        }
    }

    pub fn params(&self) -> &GeminiParams {
        &self.fabric.params
    }

    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    pub fn job_nodes(&self) -> u32 {
        self.fabric.job_nodes()
    }

    /// `GNI_CqCreate`.
    pub fn cq_create(&mut self) -> CqHandle {
        self.cqs.push(Cq::default());
        CqHandle(self.cqs.len() as u32 - 1)
    }

    /// `GNI_EpCreate` + `GNI_EpBind`: endpoint from `local` to `remote`,
    /// with local completions delivered to `cq`. Instances default to the
    /// node ids (one process per node). Binding to an unknown CQ or node
    /// is a contract violation, reported as a typed error.
    pub fn ep_create(
        &mut self,
        local: NodeId,
        remote: NodeId,
        cq: CqHandle,
    ) -> GniResult<EpHandle> {
        self.ep_create_inst(local, local, remote, remote, cq)
    }

    /// Endpoint between two *process instances* (e.g. PEs). Credits and RX
    /// mailboxes are per instance pair.
    pub fn ep_create_inst(
        &mut self,
        local: NodeId,
        local_inst: u32,
        remote: NodeId,
        remote_inst: u32,
        cq: CqHandle,
    ) -> GniResult<EpHandle> {
        if (cq.0 as usize) >= self.cqs.len() {
            return Err(GniError::InvalidHandle);
        }
        if local >= self.job_nodes() || remote >= self.job_nodes() {
            return Err(GniError::InvalidNode);
        }
        self.eps.push(Endpoint {
            local,
            remote,
            conn: (local_inst, remote_inst),
            cq,
        });
        Ok(EpHandle(self.eps.len() as u32 - 1))
    }

    /// Allocate a fresh simulated buffer address on `node` (stand-in for
    /// the application's `malloc` result; costs are modeled separately).
    pub fn alloc_addr(&mut self, node: NodeId) -> GniResult<Addr> {
        let slot = self
            .next_addr
            .get_mut(node as usize)
            .ok_or(GniError::InvalidNode)?;
        let a = *slot;
        *slot += 1 << 24;
        Ok(Addr(a))
    }

    /// `GNI_MemRegister`: returns the handle and the CPU cost. Under an
    /// active fault plan the NIC's descriptor table can be transiently
    /// exhausted ([`GniError::ResourceError`]); callers fall back to
    /// pre-registered memory or retry later.
    pub fn mem_register(
        &mut self,
        node: NodeId,
        addr: Addr,
        bytes: u64,
    ) -> GniResult<(MemHandle, Time)> {
        if self.fabric.reg_fault_roll() {
            return Err(GniError::ResourceError);
        }
        let p = self.fabric.params.clone();
        Ok(self.fabric.reg_table(node).register(&p, addr, bytes))
    }

    /// `GNI_MemDeregister`: returns the CPU cost. Deregistering an unknown
    /// or already-released handle is reported, not fatal.
    pub fn mem_deregister(&mut self, node: NodeId, h: MemHandle) -> GniResult<Time> {
        let p = self.fabric.params.clone();
        self.fabric
            .reg_table(node)
            .deregister(&p, h)
            .map_err(|_| GniError::InvalidHandle)
    }

    /// Store content into a simulated buffer (the side channel for RDMA
    /// payloads).
    pub fn mem_write(&mut self, node: NodeId, addr: Addr, data: Bytes) {
        self.contents.insert((node, addr), data);
    }

    /// Read content back out of a simulated buffer.
    pub fn mem_read(&self, node: NodeId, addr: Addr) -> Option<Bytes> {
        self.contents.get(&(node, addr)).cloned()
    }

    /// Drop a buffer's content (free).
    pub fn mem_clear(&mut self, node: NodeId, addr: Addr) {
        self.contents.remove(&(node, addr));
    }

    /// Effective SMSG payload limit for this job size.
    pub fn smsg_limit(&self) -> u32 {
        self.fabric.smsg_limit()
    }

    /// `GNI_SmsgSendWTag`.
    pub fn smsg_send_w_tag(
        &mut self,
        now: Time,
        ep: EpHandle,
        tag: u8,
        data: Bytes,
    ) -> GniResult<SmsgSendOk> {
        let (local, remote, conn) = {
            let e = self.eps.get(ep.0 as usize).ok_or(GniError::InvalidHandle)?;
            (e.local, e.remote, e.conn)
        };
        let out = match self
            .fabric
            .smsg_send(now, local, remote, conn, data.len() as u64)
        {
            Ok(out) => out,
            Err(gemini_net::SmsgError::NoCredits { retry_at }) => {
                return Err(GniError::NoCredits { retry_at })
            }
            Err(gemini_net::SmsgError::TooLarge { limit }) => {
                return Err(GniError::TooLarge { limit })
            }
            Err(gemini_net::SmsgError::TransactionError {
                kind,
                cpu,
                error_at,
                delivered_at,
            }) => {
                // Corrupted completion: the payload *did* land, so a resend
                // will duplicate it — receivers dedup by sequence number.
                if let Some(at) = delivered_at {
                    self.rx
                        .entry((remote, conn.1))
                        .or_default()
                        .push(at, (tag, conn.0, data));
                }
                return Err(GniError::TransactionError {
                    kind,
                    cpu,
                    error_at,
                    delivered_at,
                });
            }
        };
        self.rx
            .entry((remote, conn.1))
            .or_default()
            .push(out.deliver_at, (tag, conn.0, data));
        Ok(SmsgSendOk {
            cpu: out.cpu,
            deliver_at: out.deliver_at,
        })
    }

    /// `GNI_SmsgGetNextWTag`: drain the next delivered SMSG addressed to
    /// `(node, inst)`, if one is ready at `now`.
    pub fn smsg_get_next_w_tag(
        &mut self,
        node: NodeId,
        inst: u32,
        now: Time,
    ) -> GniResult<SmsgRecv> {
        let Some(q) = self.rx.get_mut(&(node, inst)) else {
            return Err(GniError::NotDone);
        };
        match q.peek_time() {
            Some(t) if t <= now => {
                let (_, (tag, from, data)) = q
                    .pop()
                    .ok_or(GniError::Internal("smsg mailbox peek/pop desync"))?;
                let cpu = self.fabric.smsg_recv_cost(data.len() as u64);
                Ok(SmsgRecv {
                    tag,
                    from,
                    data,
                    cpu,
                })
            }
            _ => Err(GniError::NotDone),
        }
    }

    /// Earliest time a pending SMSG becomes pollable at `(node, inst)`.
    pub fn smsg_next_arrival(&self, node: NodeId, inst: u32) -> Option<Time> {
        self.rx.get(&(node, inst)).and_then(|q| q.peek_time())
    }

    /// Send through the shared per-node message queue (MSGQ, paper §II-B):
    /// cheaper mailbox memory at scale, slower per message.
    pub fn msgq_send_w_tag(
        &mut self,
        now: Time,
        ep: EpHandle,
        tag: u8,
        data: Bytes,
    ) -> GniResult<SmsgSendOk> {
        let (local, remote, conn) = {
            let e = self.eps.get(ep.0 as usize).ok_or(GniError::InvalidHandle)?;
            (e.local, e.remote, e.conn)
        };
        let out = match self.fabric.msgq_send(now, local, remote, data.len() as u64) {
            Ok(out) => out,
            Err(gemini_net::SmsgError::NoCredits { retry_at }) => {
                return Err(GniError::NoCredits { retry_at })
            }
            Err(gemini_net::SmsgError::TooLarge { limit }) => {
                return Err(GniError::TooLarge { limit })
            }
            Err(gemini_net::SmsgError::TransactionError {
                kind,
                cpu,
                error_at,
                delivered_at,
            }) => {
                if let Some(at) = delivered_at {
                    self.msgq_rx
                        .entry(remote)
                        .or_default()
                        .push(at, (tag, conn.0, conn.1, data));
                }
                return Err(GniError::TransactionError {
                    kind,
                    cpu,
                    error_at,
                    delivered_at,
                });
            }
        };
        self.msgq_rx
            .entry(remote)
            .or_default()
            .push(out.deliver_at, (tag, conn.0, conn.1, data));
        Ok(SmsgSendOk {
            cpu: out.cpu,
            deliver_at: out.deliver_at,
        })
    }

    /// Earliest pending MSGQ arrival on `node`.
    pub fn msgq_next_arrival(&self, node: NodeId) -> Option<Time> {
        self.msgq_rx.get(&node).and_then(|q| q.peek_time())
    }

    /// Drain the next MSGQ message on `node`; also returns the destination
    /// instance the sender addressed (the shared queue is demultiplexed in
    /// software).
    pub fn msgq_get_next_w_tag(&mut self, node: NodeId, now: Time) -> GniResult<(SmsgRecv, u32)> {
        let Some(q) = self.msgq_rx.get_mut(&node) else {
            return Err(GniError::NotDone);
        };
        match q.peek_time() {
            Some(t) if t <= now => {
                let (_, (tag, from, dst_inst, data)) =
                    q.pop().ok_or(GniError::Internal("msgq peek/pop desync"))?;
                let cpu = self.fabric.msgq_recv_cost(data.len() as u64);
                Ok((
                    SmsgRecv {
                        tag,
                        from,
                        data,
                        cpu,
                    },
                    dst_inst,
                ))
            }
            _ => Err(GniError::NotDone),
        }
    }

    /// `GNI_PostFma`: execute a transaction through the FMA window.
    pub fn post_fma(&mut self, now: Time, ep: EpHandle, desc: PostDescriptor) -> GniResult<PostOk> {
        self.post(now, ep, desc, Mechanism::Fma)
    }

    /// `GNI_PostRdma`: hand a descriptor to the BTE.
    pub fn post_rdma(
        &mut self,
        now: Time,
        ep: EpHandle,
        desc: PostDescriptor,
    ) -> GniResult<PostOk> {
        self.post(now, ep, desc, Mechanism::Bte)
    }

    fn post(
        &mut self,
        now: Time,
        ep: EpHandle,
        desc: PostDescriptor,
        mech: Mechanism,
    ) -> GniResult<PostOk> {
        let (local, remote, cq) = {
            let e = self.eps.get(ep.0 as usize).ok_or(GniError::InvalidHandle)?;
            (e.local, e.remote, e.cq)
        };
        if !self
            .fabric
            .reg_table_ref(local)
            .is_registered(desc.local_mem)
            || !self
                .fabric
                .reg_table_ref(remote)
                .is_registered(desc.remote_mem)
        {
            return Err(GniError::NotRegistered);
        }

        let out = self
            .fabric
            .rdma(now, local, remote, desc.bytes, mech, desc.op);

        if let Some(kind) = out.fault {
            // Failure surfaces asynchronously at the CQ, as on real
            // hardware: the post itself succeeds, the error event carries
            // the descriptor's user_id so the initiator can re-post. A
            // corrupted completion still moved the data.
            if kind == FaultKind::CorruptDelivered {
                self.move_rdma_data(local, remote, &desc);
            }
            self.cq_push(
                cq,
                out.local_cq_at,
                CqEvent::PostError {
                    user_id: desc.user_id,
                    op: desc.op,
                    kind,
                },
            );
            return Ok(PostOk {
                cpu: out.cpu,
                local_cq_at: out.local_cq_at,
                data_at: out.data_at,
            });
        }

        let data = self.move_rdma_data(local, remote, &desc);
        self.cq_push(
            cq,
            out.local_cq_at,
            CqEvent::PostDone {
                user_id: desc.user_id,
                op: desc.op,
                data,
            },
        );

        Ok(PostOk {
            cpu: out.cpu,
            local_cq_at: out.local_cq_at,
            data_at: out.data_at,
        })
    }

    /// Perform the simulated data movement for a post: GET copies remote
    /// content into local memory (and returns it for the CQ event), PUT
    /// deposits the descriptor's payload into remote memory.
    fn move_rdma_data(
        &mut self,
        local: NodeId,
        remote: NodeId,
        desc: &PostDescriptor,
    ) -> Option<Bytes> {
        match desc.op {
            RdmaOp::Get => {
                let d = self.contents.get(&(remote, desc.remote_addr)).cloned();
                if let Some(ref d) = d {
                    self.contents.insert((local, desc.local_addr), d.clone());
                }
                d
            }
            RdmaOp::Put => {
                if let Some(ref d) = desc.data {
                    self.contents.insert((remote, desc.remote_addr), d.clone());
                }
                desc.data.clone()
            }
        }
    }

    /// Append a completion to a CQ, honoring the fault plan's queue depth
    /// and forced-overrun point. Once a CQ overruns, further completions
    /// are lost (kept aside for [`Gni::cq_resync`]) until the owner
    /// recovers the queue.
    fn cq_push(&mut self, cq: CqHandle, at: Time, ev: CqEvent) {
        let depth = self.fabric.params.fault.cq_depth;
        let forced = !self.forced_overrun_done
            && self
                .fabric
                .params
                .fault
                .force_cq_overrun_at
                .is_some_and(|t| at >= t);
        if forced {
            self.forced_overrun_done = true;
        }
        let q = &mut self.cqs[cq.0 as usize];
        let over_depth = depth > 0 && q.events.len() as u32 >= depth;
        if q.overrun || over_depth || forced {
            if !q.overrun {
                q.overrun = true;
                self.cq_overruns += 1;
            }
            q.lost.push((at, ev));
            return;
        }
        q.events.push(at, ev);
    }

    /// `GNI_CqGetEvent`: poll a CQ. Returns `NotDone` when no event is
    /// ready at `now`. The poll itself costs [`Gni::cq_poll_cost`].
    /// An overrun CQ reports [`GniError::CqOverrun`] on every poll until
    /// the owner calls [`Gni::cq_resync`].
    pub fn cq_get_event(&mut self, cq: CqHandle, now: Time) -> GniResult<CqEvent> {
        let c = self
            .cqs
            .get_mut(cq.0 as usize)
            .ok_or(GniError::InvalidHandle)?;
        if c.overrun {
            return Err(GniError::CqOverrun);
        }
        match c.events.peek_time() {
            Some(t) if t <= now => c
                .events
                .pop()
                .map(|(_, ev)| ev)
                .ok_or(GniError::Internal("cq peek/pop desync")),
            _ => Err(GniError::NotDone),
        }
    }

    /// Recover an overrun CQ: audit outstanding transactions and reinsert
    /// the completions that fell off the queue (they become pollable no
    /// earlier than `now`). Returns the CPU cost of the audit and the
    /// number of events recovered. Safe to call on a healthy CQ (audits
    /// nothing, still pays the two bookkeeping polls).
    pub fn cq_resync(&mut self, cq: CqHandle, now: Time) -> GniResult<(Time, u32)> {
        let poll = self.fabric.params.cq_poll_cpu;
        let c = self
            .cqs
            .get_mut(cq.0 as usize)
            .ok_or(GniError::InvalidHandle)?;
        let lost = std::mem::take(&mut c.lost);
        let n = lost.len() as u32;
        for (t, ev) in lost {
            c.events.push(t.max(now), ev);
        }
        c.overrun = false;
        Ok((poll * (n as Time + 2), n))
    }

    /// Earliest pending event time on a CQ, counting events stranded by an
    /// overrun (so progress engines keep polling and reach the resync).
    pub fn cq_next_ready(&self, cq: CqHandle) -> Option<Time> {
        self.cqs.get(cq.0 as usize).and_then(|c| {
            let queued = c.events.peek_time();
            let lost = c.lost.iter().map(|(t, _)| *t).min();
            match (queued, lost) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        })
    }

    /// CPU cost of one CQ poll.
    pub fn cq_poll_cost(&self) -> Time {
        self.fabric.params.cq_poll_cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_net::GeminiParams;

    fn gni() -> Gni {
        Gni::new(GeminiParams::test_small(), 8)
    }

    #[test]
    fn smsg_round_trip_carries_payload() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let sent = g
            .smsg_send_w_tag(0, ep, 7, Bytes::from_static(b"hello"))
            .unwrap();
        // Too early: not pollable.
        assert_eq!(
            g.smsg_get_next_w_tag(1, 1, sent.deliver_at - 1)
                .unwrap_err(),
            GniError::NotDone
        );
        let rx = g.smsg_get_next_w_tag(1, 1, sent.deliver_at).unwrap();
        assert_eq!(rx.tag, 7);
        assert_eq!(rx.from, 0);
        assert_eq!(&rx.data[..], b"hello");
        assert!(rx.cpu > 0);
        // Mailbox drained.
        assert_eq!(
            g.smsg_get_next_w_tag(1, 1, sent.deliver_at).unwrap_err(),
            GniError::NotDone
        );
    }

    #[test]
    fn smsg_respects_job_size_limit() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let limit = g.smsg_limit() as usize;
        let too_big = Bytes::from(vec![0u8; limit + 1]);
        assert!(matches!(
            g.smsg_send_w_tag(0, ep, 0, too_big),
            Err(GniError::TooLarge { .. })
        ));
    }

    #[test]
    fn get_reads_remote_content() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create(1, 0, cq).unwrap(); // node 1 GETs from node 0
        let payload = Bytes::from(vec![0xABu8; 8192]);

        let a0 = g.alloc_addr(0).unwrap();
        let (h0, _) = g.mem_register(0, a0, 8192).unwrap();
        g.mem_write(0, a0, payload.clone());

        let a1 = g.alloc_addr(1).unwrap();
        let (h1, _) = g.mem_register(1, a1, 8192).unwrap();

        let ok = g
            .post_rdma(
                0,
                ep,
                PostDescriptor {
                    op: RdmaOp::Get,
                    local_mem: h1,
                    local_addr: a1,
                    remote_mem: h0,
                    remote_addr: a0,
                    bytes: 8192,
                    data: None,
                    user_id: 42,
                },
            )
            .unwrap();

        assert_eq!(
            g.cq_get_event(cq, ok.local_cq_at - 1).unwrap_err(),
            GniError::NotDone
        );
        match g.cq_get_event(cq, ok.local_cq_at).unwrap() {
            CqEvent::PostDone { user_id, op, data } => {
                assert_eq!(user_id, 42);
                assert_eq!(op, RdmaOp::Get);
                assert_eq!(data.unwrap(), payload);
            }
            e => panic!("unexpected {e:?}"),
        }
        // Content also landed in local registered memory.
        assert_eq!(g.mem_read(1, a1).unwrap(), payload);
    }

    #[test]
    fn put_deposits_into_remote_memory() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let payload = Bytes::from(vec![3u8; 4096]);

        let a0 = g.alloc_addr(0).unwrap();
        let (h0, _) = g.mem_register(0, a0, 4096).unwrap();
        g.mem_write(0, a0, payload.clone());
        let a1 = g.alloc_addr(1).unwrap();
        let (h1, _) = g.mem_register(1, a1, 4096).unwrap();

        let ok = g
            .post_fma(
                0,
                ep,
                PostDescriptor {
                    op: RdmaOp::Put,
                    local_mem: h0,
                    local_addr: a0,
                    remote_mem: h1,
                    remote_addr: a1,
                    bytes: 4096,
                    data: Some(payload.clone()),
                    user_id: 1,
                },
            )
            .unwrap();
        assert!(ok.data_at <= ok.local_cq_at);
        assert_eq!(g.mem_read(1, a1).unwrap(), payload);
    }

    #[test]
    fn post_requires_registration() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let a0 = g.alloc_addr(0).unwrap();
        let (h0, _) = g.mem_register(0, a0, 64).unwrap();
        let bogus = MemHandle(999);
        let desc = PostDescriptor {
            op: RdmaOp::Put,
            local_mem: h0,
            local_addr: a0,
            remote_mem: bogus,
            remote_addr: Addr(0),
            bytes: 64,
            data: None,
            user_id: 0,
        };
        assert_eq!(
            g.post_fma(0, ep, desc).unwrap_err(),
            GniError::NotRegistered
        );
    }

    #[test]
    fn deregister_forbids_rdma() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create(1, 0, cq).unwrap();
        let a0 = g.alloc_addr(0).unwrap();
        let (h0, _) = g.mem_register(0, a0, 64).unwrap();
        g.mem_write(0, a0, Bytes::from_static(b"x"));
        g.mem_deregister(0, h0).unwrap();
        g.mem_clear(0, a0);
        assert!(g.mem_read(0, a0).is_none());
        let a1 = g.alloc_addr(1).unwrap();
        let (h1, _) = g.mem_register(1, a1, 64).unwrap();
        let desc = PostDescriptor {
            op: RdmaOp::Get,
            local_mem: h1,
            local_addr: a1,
            remote_mem: h0,
            remote_addr: a0,
            bytes: 64,
            data: None,
            user_id: 0,
        };
        assert_eq!(
            g.post_rdma(0, ep, desc).unwrap_err(),
            GniError::NotRegistered
        );
    }

    #[test]
    fn smsg_fifo_order_preserved_at_receiver() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let mut last_deliver = 0;
        for i in 0..4u8 {
            let ok = g
                .smsg_send_w_tag(i as Time * 10, ep, i, Bytes::from(vec![i]))
                .unwrap();
            last_deliver = last_deliver.max(ok.deliver_at);
        }
        for i in 0..4u8 {
            let rx = g.smsg_get_next_w_tag(1, 1, last_deliver).unwrap();
            assert_eq!(rx.tag, i, "FIFO violated");
        }
    }

    #[test]
    fn credit_exhaustion_surfaces() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let credits = g.fabric().params.smsg_credits;
        for _ in 0..credits {
            g.smsg_send_w_tag(0, ep, 0, Bytes::new()).unwrap();
        }
        match g.smsg_send_w_tag(0, ep, 0, Bytes::new()) {
            Err(GniError::NoCredits { retry_at }) => assert!(retry_at > 0),
            other => panic!("expected NoCredits, got {other:?}"),
        }
    }

    #[test]
    fn invalid_handles_are_rejected() {
        let mut g = gni();
        assert_eq!(
            g.cq_get_event(CqHandle(99), 0).unwrap_err(),
            GniError::InvalidHandle
        );
        assert!(matches!(
            g.smsg_send_w_tag(0, EpHandle(99), 0, Bytes::new()),
            Err(GniError::InvalidHandle)
        ));
    }

    #[test]
    fn cq_next_ready_reports_pending() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        assert_eq!(g.cq_next_ready(cq), None);
        let a0 = g.alloc_addr(0).unwrap();
        let (h0, _) = g.mem_register(0, a0, 64).unwrap();
        g.mem_write(0, a0, Bytes::from_static(b"y"));
        let a1 = g.alloc_addr(1).unwrap();
        let (h1, _) = g.mem_register(1, a1, 64).unwrap();
        let ok = g
            .post_fma(
                0,
                ep,
                PostDescriptor {
                    op: RdmaOp::Put,
                    local_mem: h0,
                    local_addr: a0,
                    remote_mem: h1,
                    remote_addr: a1,
                    bytes: 64,
                    data: Some(Bytes::from_static(b"y")),
                    user_id: 5,
                },
            )
            .unwrap();
        assert_eq!(g.cq_next_ready(cq), Some(ok.local_cq_at));
    }

    #[test]
    fn msgq_round_trip_and_slower_than_smsg() {
        let mut g = gni();
        let cq = g.cq_create();
        let ep = g.ep_create_inst(0, 10, 1, 11, cq).unwrap();
        let smsg = g
            .smsg_send_w_tag(0, ep, 3, Bytes::from_static(b"fast"))
            .unwrap();
        let msgq = g
            .msgq_send_w_tag(0, ep, 4, Bytes::from_static(b"slow"))
            .unwrap();
        assert!(msgq.deliver_at > smsg.deliver_at);
        let (rx, dst) = g.msgq_get_next_w_tag(1, msgq.deliver_at).unwrap();
        assert_eq!(rx.tag, 4);
        assert_eq!(rx.from, 10);
        assert_eq!(dst, 11);
        assert_eq!(&rx.data[..], b"slow");
        assert!(matches!(
            g.msgq_get_next_w_tag(1, msgq.deliver_at),
            Err(GniError::NotDone)
        ));
    }

    #[test]
    fn distinct_addrs_per_node() {
        let mut g = gni();
        let a = g.alloc_addr(0).unwrap();
        let b = g.alloc_addr(0).unwrap();
        let c = g.alloc_addr(1).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    // ---- fault injection ----

    fn gni_with_fault(f: impl FnOnce(&mut gemini_net::FaultPlan)) -> Gni {
        let mut p = GeminiParams::test_small();
        f(&mut p.fault);
        Gni::new(p, 8)
    }

    fn put_desc(
        h0: MemHandle,
        a0: Addr,
        h1: MemHandle,
        a1: Addr,
        bytes: u64,
        user_id: u64,
    ) -> PostDescriptor {
        PostDescriptor {
            op: RdmaOp::Put,
            local_mem: h0,
            local_addr: a0,
            remote_mem: h1,
            remote_addr: a1,
            bytes,
            data: Some(Bytes::from(vec![0x5Au8; bytes as usize])),
            user_id,
        }
    }

    #[test]
    fn corrupt_smsg_error_still_delivers_payload() {
        let mut g = gni_with_fault(|f| {
            f.seed = 42;
            f.smsg_corrupt = 1.0;
        });
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let err = g
            .smsg_send_w_tag(0, ep, 9, Bytes::from_static(b"dup"))
            .unwrap_err();
        let GniError::TransactionError {
            kind, delivered_at, ..
        } = err
        else {
            panic!("expected TransactionError, got {err:?}");
        };
        assert_eq!(kind, FaultKind::CorruptDelivered);
        let at = delivered_at.expect("corrupt delivery still lands");
        let rx = g.smsg_get_next_w_tag(1, 1, at).unwrap();
        assert_eq!(rx.tag, 9);
        assert_eq!(&rx.data[..], b"dup");
    }

    #[test]
    fn dropped_rdma_surfaces_post_error_on_cq() {
        let mut g = gni_with_fault(|f| {
            f.seed = 7;
            f.fma_drop = 1.0;
        });
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let a0 = g.alloc_addr(0).unwrap();
        let (h0, _) = g.mem_register(0, a0, 256).unwrap();
        let a1 = g.alloc_addr(1).unwrap();
        let (h1, _) = g.mem_register(1, a1, 256).unwrap();
        let ok = g
            .post_fma(0, ep, put_desc(h0, a0, h1, a1, 256, 77))
            .unwrap();
        match g.cq_get_event(cq, ok.local_cq_at).unwrap() {
            CqEvent::PostError { user_id, op, kind } => {
                assert_eq!(user_id, 77);
                assert_eq!(op, RdmaOp::Put);
                assert_eq!(kind, FaultKind::Dropped);
            }
            e => panic!("expected PostError, got {e:?}"),
        }
        // Dropped means dropped: nothing landed in remote memory.
        assert!(g.mem_read(1, a1).is_none());
    }

    #[test]
    fn cq_overrun_is_sticky_until_resync() {
        let mut g = gni_with_fault(|f| f.cq_depth = 1);
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let a0 = g.alloc_addr(0).unwrap();
        let (h0, _) = g.mem_register(0, a0, 64).unwrap();
        let a1 = g.alloc_addr(1).unwrap();
        let (h1, _) = g.mem_register(1, a1, 64).unwrap();
        let ok1 = g.post_fma(0, ep, put_desc(h0, a0, h1, a1, 64, 1)).unwrap();
        let ok2 = g.post_fma(0, ep, put_desc(h0, a0, h1, a1, 64, 2)).unwrap();
        assert_eq!(g.cq_overruns, 1);
        let late = ok1.local_cq_at.max(ok2.local_cq_at) + 1_000;
        // The error state masks the queue and persists across polls.
        assert_eq!(g.cq_get_event(cq, late).unwrap_err(), GniError::CqOverrun);
        assert_eq!(g.cq_get_event(cq, late).unwrap_err(), GniError::CqOverrun);
        // Progress engines still see pending work, so they reach the resync.
        assert!(g.cq_next_ready(cq).is_some());
        let (cpu, recovered) = g.cq_resync(cq, late).unwrap();
        assert!(cpu > 0);
        assert_eq!(recovered, 1);
        // Both completions are recoverable after the resync.
        let mut ids = Vec::new();
        while let Ok(ev) = g.cq_get_event(cq, late) {
            match ev {
                CqEvent::PostDone { user_id, .. } => ids.push(user_id),
                e => panic!("unexpected {e:?}"),
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn forced_overrun_fires_exactly_once() {
        let mut g = gni_with_fault(|f| f.force_cq_overrun_at = Some(0));
        let cq = g.cq_create();
        let ep = g.ep_create(0, 1, cq).unwrap();
        let a0 = g.alloc_addr(0).unwrap();
        let (h0, _) = g.mem_register(0, a0, 64).unwrap();
        let a1 = g.alloc_addr(1).unwrap();
        let (h1, _) = g.mem_register(1, a1, 64).unwrap();
        let ok1 = g.post_fma(0, ep, put_desc(h0, a0, h1, a1, 64, 1)).unwrap();
        assert_eq!(
            g.cq_get_event(cq, ok1.local_cq_at).unwrap_err(),
            GniError::CqOverrun
        );
        let (_, recovered) = g.cq_resync(cq, ok1.local_cq_at).unwrap();
        assert_eq!(recovered, 1);
        // One-shot: the next completion is delivered normally.
        let ok2 = g
            .post_fma(ok1.local_cq_at, ep, put_desc(h0, a0, h1, a1, 64, 2))
            .unwrap();
        assert!(matches!(
            g.cq_get_event(cq, ok2.local_cq_at),
            Ok(CqEvent::PostDone { .. })
        ));
        assert_eq!(g.cq_overruns, 1);
    }

    #[test]
    fn register_resource_exhaustion_reported() {
        let mut g = gni_with_fault(|f| {
            f.seed = 3;
            f.reg_fail = 1.0;
        });
        let a = g.alloc_addr(0).unwrap();
        assert_eq!(
            g.mem_register(0, a, 64).unwrap_err(),
            GniError::ResourceError
        );
    }
}
