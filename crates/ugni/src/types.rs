//! uGNI-style handle types, return codes, descriptors and CQ events.
//!
//! Names deliberately mirror the Cray uGNI API (paper §II-B) so the machine
//! layer reads like the real one: `GNI_CqCreate` → [`crate::Gni::cq_create`],
//! `GNI_SmsgSendWTag` → [`crate::Gni::smsg_send_w_tag`], `GNI_PostRdma` →
//! [`crate::Gni::post_rdma`], and so on.

use bytes::Bytes;
use gemini_net::{Addr, FaultKind, MemHandle, NodeId, RdmaOp};
use sim_core::Time;

/// Completion queue handle (`gni_cq_handle_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CqHandle(pub(crate) u32);

/// Endpoint handle (`gni_ep_handle_t`): a bound (local node, remote node)
/// pair with a CQ for local completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EpHandle(pub(crate) u32);

/// Return codes, mirroring `gni_return_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GniError {
    /// `GNI_RC_NOT_DONE`: nothing ready yet.
    NotDone,
    /// SMSG mailbox credits exhausted for this connection; retry at the
    /// embedded time (`GNI_RC_NOT_DONE` on the real NIC; we carry the
    /// earliest useful retry time to keep the simulation event-efficient).
    NoCredits { retry_at: Time },
    /// Payload exceeds the SMSG limit (`GNI_RC_INVALID_PARAM`).
    TooLarge { limit: u32 },
    /// Unknown or stale handle (`GNI_RC_INVALID_PARAM`).
    InvalidHandle,
    /// RDMA against unregistered memory (`GNI_RC_PERMISSION_ERROR`).
    NotRegistered,
    /// The transaction failed in the fabric (`GNI_RC_TRANSACTION_ERROR`).
    /// The sender's CPU cost was still paid and the failure is observable
    /// at `error_at`; when `delivered_at` is `Some` the payload landed
    /// anyway (corrupted completion) and a resend will duplicate it.
    TransactionError {
        kind: FaultKind,
        cpu: Time,
        error_at: Time,
        delivered_at: Option<Time>,
    },
    /// The CQ overflowed and dropped events (`GNI_CQ_OVERRUN`). The queue
    /// stays in the error state until [`crate::Gni::cq_resync`] audits and
    /// recovers the lost completions.
    CqOverrun,
    /// Transient NIC resource exhaustion (`GNI_RC_ERROR_RESOURCE`), e.g.
    /// no memory-descriptor slots left for `GNI_MemRegister`.
    ResourceError,
    /// A node id outside the job (`GNI_RC_INVALID_PARAM`): the caller
    /// addressed a node the fabric was never brought up on.
    InvalidNode,
    /// An internal invariant of the simulated NIC broke (peek/pop desync
    /// and the like). Never expected; surfaced as a typed error so the
    /// contract verifier can report it instead of an opaque panic.
    Internal(&'static str),
}

pub type GniResult<T> = Result<T, GniError>;

/// Transaction descriptor for `post_fma` / `post_rdma`
/// (`gni_post_descriptor_t`).
#[derive(Debug, Clone)]
pub struct PostDescriptor {
    pub op: RdmaOp,
    /// Registered memory on the initiating node.
    pub local_mem: MemHandle,
    /// Buffer address within the local registration (content key).
    pub local_addr: Addr,
    /// Registered memory on the remote node.
    pub remote_mem: MemHandle,
    /// Buffer address within the remote registration (content key).
    pub remote_addr: Addr,
    pub bytes: u64,
    /// For PUT: the payload to deposit into remote memory.
    pub data: Option<Bytes>,
    /// Opaque id returned in the completion event (`post_id`).
    pub user_id: u64,
}

/// An event delivered by a completion queue.
#[derive(Debug, Clone)]
pub enum CqEvent {
    /// A posted FMA/BTE transaction completed locally.
    PostDone {
        user_id: u64,
        op: RdmaOp,
        /// For GET: the bytes read out of remote memory.
        data: Option<Bytes>,
    },
    /// An SMSG landed in this node's mailbox (drain it with
    /// `smsg_get_next_w_tag`).
    SmsgRx { from: NodeId },
    /// A posted FMA/BTE transaction failed in the fabric
    /// (`GNI_CQ_STATUS` error bits). Carries the posting descriptor's
    /// `user_id` so the initiator can find and re-post the transfer.
    PostError {
        user_id: u64,
        op: RdmaOp,
        kind: FaultKind,
    },
}

/// Result of a successful SMSG send.
#[derive(Debug, Clone, Copy)]
pub struct SmsgSendOk {
    /// CPU time the sender burned (charge as overhead).
    pub cpu: Time,
    /// When the message is pollable at the destination. The caller is
    /// responsible for arranging a progress wake-up at the remote node —
    /// the simulation has no daemon threads.
    pub deliver_at: Time,
}

/// Result of a successful post (FMA or RDMA).
#[derive(Debug, Clone, Copy)]
pub struct PostOk {
    /// CPU time the initiator burned.
    pub cpu: Time,
    /// When the local CQ will report `PostDone`.
    pub local_cq_at: Time,
    /// When the data is fully visible at its destination.
    pub data_at: Time,
}

/// A received SMSG.
#[derive(Debug, Clone)]
pub struct SmsgRecv {
    pub tag: u8,
    pub from: NodeId,
    pub data: Bytes,
    /// CPU cost of the dequeue + copy out of the mailbox.
    pub cpu: Time,
}
