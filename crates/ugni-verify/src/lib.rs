//! Runtime contract verifier for the simulated uGNI API — a valgrind for
//! [`ugni::Gni`] (DESIGN.md §8).
//!
//! [`CheckedGni`] wraps a `Gni` and enforces the usage contract the real
//! NIC only punishes with corruption or hangs:
//!
//! * no post through a deregistered [`MemHandle`], and no
//!   `mem_deregister` while a transaction on that handle is in flight;
//! * every posted descriptor id receives **exactly one** consumed CQ
//!   event — no lost completions, no double consumption (including the
//!   error/retry paths);
//! * SMSG/MSGQ sends that hit credit exhaustion must be retried through
//!   the connection backlog (same message next), never dropped or
//!   reordered past fresh traffic;
//! * per-CQ outstanding transactions stay within the queue depth unless
//!   the fault plan explicitly overruns it;
//! * consumption clocks (CQ polls, mailbox drains) are monotonic per
//!   object;
//! * at `report()` time, live registrations, in-flight posts, undrained
//!   mailboxes and parked retries are surfaced as *leaks*.
//!
//! Violations carry the offending descriptor/handle and the call site.
//! In strict mode ([`CheckedGni::set_strict`]) the first violation
//! panics; otherwise everything accumulates into a [`ContractReport`].
//!
//! The wrapper derefs to `Gni`, so read-only accessors come for free and
//! the machine layers swap it in behind a `verify` cfg-feature with zero
//! call-site changes. Registrations made directly against the fabric
//! (e.g. the memory pool's slab, via `fabric_mut()`) are outside the
//! tracked surface; posts through them are still checked against the
//! NIC's own registration table.

use bytes::Bytes;
use gemini_net::{Addr, Fabric, GeminiParams, MemHandle, NodeId};
use sim_core::Time;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Deref;
use std::panic::Location;
use ugni::{
    CqEvent, CqHandle, EpHandle, Gni, GniError, GniResult, PostDescriptor, PostOk, SmsgRecv,
    SmsgSendOk,
};

/// Source location of the offending call, captured via `#[track_caller]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    pub file: &'static str,
    pub line: u32,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// Which consumption clock a [`Violation::NonMonotonicTime`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    Cq(CqHandle),
    Smsg(NodeId, u32),
    Msgq(NodeId),
}

/// A breach of the uGNI usage contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A post named a memory handle the NIC has no registration for and
    /// that was never seen registered through this wrapper.
    PostUnregistered {
        node: NodeId,
        handle: MemHandle,
        user_id: u64,
        site: Site,
    },
    /// A post named a handle that *was* registered and has since been
    /// deregistered.
    UseAfterDereg {
        node: NodeId,
        handle: MemHandle,
        user_id: u64,
        dereg_site: Site,
        site: Site,
    },
    /// `mem_deregister` on a handle still referenced by an in-flight
    /// transaction (its completion has not been consumed).
    DeregInFlight {
        node: NodeId,
        handle: MemHandle,
        user_id: u64,
        site: Site,
    },
    /// A `PostDone`/`PostError` was consumed for a descriptor id with no
    /// matching outstanding post — a lost or double-consumed completion.
    DoubleCompletion {
        cq: CqHandle,
        user_id: u64,
        site: Site,
    },
    /// After `NoCredits` parked a message on an endpoint, the next send
    /// on that endpoint carried a *different* message: the connection
    /// backlog was bypassed (the parked message was dropped or
    /// reordered).
    CreditBypass {
        ep: EpHandle,
        parked_tag: u8,
        parked_len: usize,
        sent_tag: u8,
        sent_len: usize,
        site: Site,
    },
    /// Outstanding (unconsumed) completions on one CQ exceeded the
    /// depth limit while no fault plan legitimizes an overrun.
    CqDepthExceeded {
        cq: CqHandle,
        outstanding: u64,
        limit: u64,
        site: Site,
    },
    /// A consumption clock went backwards (poll/drain at an earlier
    /// `now` than a previous successful one on the same object).
    NonMonotonicTime {
        clock: Clock,
        prev: Time,
        now: Time,
        site: Site,
    },
    /// `mem_write` to a buffer whose registration was released (and not
    /// renewed) — the NIC may no longer see coherent content.
    WriteAfterDereg {
        node: NodeId,
        addr: Addr,
        site: Site,
    },
    /// `mem_read` of a buffer whose registration was released.
    ReadAfterDereg {
        node: NodeId,
        addr: Addr,
        site: Site,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::PostUnregistered {
                node,
                handle,
                user_id,
                site,
            } => write!(
                f,
                "post of descriptor {user_id} through unregistered {handle:?} on node {node} at {site}"
            ),
            Violation::UseAfterDereg {
                node,
                handle,
                user_id,
                dereg_site,
                site,
            } => write!(
                f,
                "post of descriptor {user_id} through {handle:?} on node {node} at {site}, deregistered at {dereg_site}"
            ),
            Violation::DeregInFlight {
                node,
                handle,
                user_id,
                site,
            } => write!(
                f,
                "deregister of {handle:?} on node {node} at {site} while descriptor {user_id} is in flight"
            ),
            Violation::DoubleCompletion { cq, user_id, site } => write!(
                f,
                "completion for descriptor {user_id} consumed on {cq:?} at {site} with no outstanding post (lost or double-consumed)"
            ),
            Violation::CreditBypass {
                ep,
                parked_tag,
                parked_len,
                sent_tag,
                sent_len,
                site,
            } => write!(
                f,
                "credit backlog bypassed on {ep:?} at {site}: parked (tag {parked_tag}, {parked_len} B) but sent (tag {sent_tag}, {sent_len} B)"
            ),
            Violation::CqDepthExceeded {
                cq,
                outstanding,
                limit,
                site,
            } => write!(
                f,
                "{cq:?} has {outstanding} outstanding completions (limit {limit}) after post at {site}"
            ),
            Violation::NonMonotonicTime {
                clock,
                prev,
                now,
                site,
            } => write!(
                f,
                "consumption clock {clock:?} went backwards at {site}: {now} < {prev}"
            ),
            Violation::WriteAfterDereg { node, addr, site } => {
                write!(f, "mem_write to deregistered {addr:?} on node {node} at {site}")
            }
            Violation::ReadAfterDereg { node, addr, site } => {
                write!(f, "mem_read of deregistered {addr:?} on node {node} at {site}")
            }
        }
    }
}

/// Resources still live when the report was taken. Leaks are advisory —
/// a run that ends mid-protocol (e.g. `ctx.stop()` after the measured
/// iterations) legitimately leaves pools registered and retries parked —
/// so they are reported separately from violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Leak {
    /// A registration acquired through the wrapper was never released.
    Registration {
        node: NodeId,
        handle: MemHandle,
        site: Site,
    },
    /// A posted descriptor whose completion was never consumed.
    UnconsumedCompletion {
        cq: CqHandle,
        user_id: u64,
        site: Site,
    },
    /// A CQ still holds (or lost to an unresynced overrun) events.
    PendingCqEvents { cq: CqHandle, at: Time },
    /// An SMSG mailbox still holds delivered messages.
    UndrainedMailbox { node: NodeId, inst: u32, at: Time },
    /// A node's shared MSGQ still holds delivered messages.
    UndrainedMsgq { node: NodeId, at: Time },
    /// A message parked by `NoCredits` whose retry never fired.
    PendingCreditRetry { ep: EpHandle, tag: u8, len: usize },
}

impl fmt::Display for Leak {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Leak::Registration { node, handle, site } => {
                write!(f, "live registration {handle:?} on node {node} from {site}")
            }
            Leak::UnconsumedCompletion { cq, user_id, site } => write!(
                f,
                "descriptor {user_id} posted at {site} never saw its completion consumed on {cq:?}"
            ),
            Leak::PendingCqEvents { cq, at } => {
                write!(f, "{cq:?} still has events pending (earliest at {at})")
            }
            Leak::UndrainedMailbox { node, inst, at } => write!(
                f,
                "SMSG mailbox (node {node}, inst {inst}) undrained (earliest at {at})"
            ),
            Leak::UndrainedMsgq { node, at } => {
                write!(f, "MSGQ on node {node} undrained (earliest at {at})")
            }
            Leak::PendingCreditRetry { ep, tag, len } => write!(
                f,
                "message (tag {tag}, {len} B) parked on {ep:?} by NoCredits was never retried"
            ),
        }
    }
}

/// Everything the verifier knows at the moment [`CheckedGni::report`] is
/// called.
#[derive(Debug, Clone, Default)]
pub struct ContractReport {
    pub violations: Vec<Violation>,
    pub leaks: Vec<Leak>,
    pub live_eps: usize,
    pub live_cqs: usize,
    pub checked_calls: u64,
}

impl ContractReport {
    /// No contract violations (leaks are advisory and do not count).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ContractReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "uGNI contract report: {} violation(s), {} leak(s), {} EPs, {} CQs, {} checked calls",
            self.violations.len(),
            self.leaks.len(),
            self.live_eps,
            self.live_cqs,
            self.checked_calls
        )?;
        for v in &self.violations {
            writeln!(f, "  violation: {v}")?;
        }
        for l in &self.leaks {
            writeln!(f, "  leak: {l}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct RegInfo {
    addr: Addr,
    site: Site,
}

#[derive(Debug, Clone, Copy)]
struct Flight {
    /// Posts outstanding under this (cq, user_id). Reposting the same id
    /// before consuming the previous completion is legal (each post gets
    /// its own event), so this is a count, not a flag.
    count: u32,
    local: (NodeId, MemHandle),
    remote: (NodeId, MemHandle),
    site: Site,
}

#[derive(Debug, Clone, Copy)]
struct EpInfo {
    local: NodeId,
    remote: NodeId,
    remote_inst: u32,
    cq: CqHandle,
}

#[derive(Debug, Clone, Copy)]
struct Obligation {
    tag: u8,
    len: usize,
    hash: u64,
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Default ceiling for outstanding completions per CQ when no fault plan
/// bounds the queue: generous enough for every legitimate workload, small
/// enough to catch a reap loop that stopped consuming.
pub const DEFAULT_CQ_DEPTH_LIMIT: u64 = 65_536;

/// The contract-checking wrapper. See the crate docs for the rules.
pub struct CheckedGni {
    inner: Gni,
    strict: bool,
    depth_limit: u64,
    checked_calls: Cell<u64>,
    /// Live registrations made through the wrapper.
    regs: BTreeMap<(NodeId, MemHandle), RegInfo>,
    /// Released registrations (for use-after-dereg classification).
    dereg: BTreeMap<(NodeId, MemHandle), Site>,
    /// Registration count per buffer address (re-registration revives).
    live_addr: BTreeMap<(NodeId, Addr), u32>,
    /// Buffer addresses with no live registration left.
    dead_addr: BTreeMap<(NodeId, Addr), Site>,
    /// Outstanding posts, keyed by (completion queue, descriptor id).
    in_flight: BTreeMap<(CqHandle, u64), Flight>,
    /// Unconsumed completions per CQ (incl. ones stranded by overrun).
    outstanding: BTreeMap<CqHandle, u64>,
    eps: BTreeMap<EpHandle, EpInfo>,
    /// Message parked by the last NoCredits on each endpoint.
    credit: BTreeMap<EpHandle, Obligation>,
    last_cq: BTreeMap<CqHandle, Time>,
    last_smsg: BTreeMap<(NodeId, u32), Time>,
    last_msgq: BTreeMap<NodeId, Time>,
    /// SMSG mailbox keys ever addressed (for leak scanning).
    mailboxes: BTreeSet<(NodeId, u32)>,
    msgq_nodes: BTreeSet<NodeId>,
    /// Interior mutability: `mem_read` is `&self` but must record.
    violations: RefCell<Vec<Violation>>,
}

impl Deref for CheckedGni {
    type Target = Gni;
    fn deref(&self) -> &Gni {
        &self.inner
    }
}

impl CheckedGni {
    pub fn new(params: GeminiParams, job_nodes: u32) -> Self {
        Self::wrap(Gni::new(params, job_nodes))
    }

    pub fn with_fabric(fabric: Fabric) -> Self {
        Self::wrap(Gni::with_fabric(fabric))
    }

    /// Wrap an existing instance. State built up before wrapping is
    /// unknown to the verifier (tolerated, not checked).
    pub fn wrap(inner: Gni) -> Self {
        CheckedGni {
            inner,
            strict: false,
            depth_limit: DEFAULT_CQ_DEPTH_LIMIT,
            checked_calls: Cell::new(0),
            regs: BTreeMap::new(),
            dereg: BTreeMap::new(),
            live_addr: BTreeMap::new(),
            dead_addr: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            eps: BTreeMap::new(),
            credit: BTreeMap::new(),
            last_cq: BTreeMap::new(),
            last_smsg: BTreeMap::new(),
            last_msgq: BTreeMap::new(),
            mailboxes: BTreeSet::new(),
            msgq_nodes: BTreeSet::new(),
            violations: RefCell::new(Vec::new()),
        }
    }

    /// Panic on the first violation instead of accumulating.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Override the outstanding-completions ceiling (mutation tests use a
    /// tiny limit to trip the rule deliberately).
    pub fn set_cq_depth_limit(&mut self, limit: u64) {
        self.depth_limit = limit.max(1);
    }

    #[track_caller]
    fn here() -> Site {
        let l = Location::caller();
        Site {
            file: l.file(),
            line: l.line(),
        }
    }

    fn tick(&self) {
        self.checked_calls.set(self.checked_calls.get() + 1);
    }

    fn record(&self, v: Violation) {
        if self.strict {
            // panic-ok: strict mode aborts on contract violation by design
            panic!("uGNI contract violation: {v}");
        }
        self.violations.borrow_mut().push(v);
    }

    /// Snapshot the current report: accumulated violations plus a live
    /// leak scan. Does not consume the wrapper — call at shutdown or
    /// between phases.
    pub fn report(&self) -> ContractReport {
        let mut leaks = Vec::new();
        for (&(node, handle), info) in &self.regs {
            leaks.push(Leak::Registration {
                node,
                handle,
                site: info.site,
            });
        }
        for (&(cq, user_id), fl) in &self.in_flight {
            leaks.push(Leak::UnconsumedCompletion {
                cq,
                user_id,
                site: fl.site,
            });
        }
        for &cq in self.outstanding.keys() {
            if let Some(at) = self.inner.cq_next_ready(cq) {
                leaks.push(Leak::PendingCqEvents { cq, at });
            }
        }
        for &(node, inst) in &self.mailboxes {
            if let Some(at) = self.inner.smsg_next_arrival(node, inst) {
                leaks.push(Leak::UndrainedMailbox { node, inst, at });
            }
        }
        for &node in &self.msgq_nodes {
            if let Some(at) = self.inner.msgq_next_arrival(node) {
                leaks.push(Leak::UndrainedMsgq { node, at });
            }
        }
        for (&ep, ob) in &self.credit {
            leaks.push(Leak::PendingCreditRetry {
                ep,
                tag: ob.tag,
                len: ob.len,
            });
        }
        ContractReport {
            violations: self.violations.borrow().clone(),
            leaks,
            live_eps: self.eps.len(),
            live_cqs: self.outstanding.len(),
            checked_calls: self.checked_calls.get(),
        }
    }

    /// Tear down: final report. Alias of [`CheckedGni::report`] that
    /// consumes the wrapper, for end-of-run assertions.
    pub fn finish(self) -> ContractReport {
        self.report()
    }

    // ----- wrapped API (identical signatures to `Gni`) -----

    #[track_caller]
    pub fn cq_create(&mut self) -> CqHandle {
        self.tick();
        let cq = self.inner.cq_create();
        self.outstanding.insert(cq, 0);
        cq
    }

    #[track_caller]
    pub fn ep_create(
        &mut self,
        local: NodeId,
        remote: NodeId,
        cq: CqHandle,
    ) -> GniResult<EpHandle> {
        self.ep_create_inst(local, local, remote, remote, cq)
    }

    #[track_caller]
    pub fn ep_create_inst(
        &mut self,
        local: NodeId,
        local_inst: u32,
        remote: NodeId,
        remote_inst: u32,
        cq: CqHandle,
    ) -> GniResult<EpHandle> {
        self.tick();
        let _ = local_inst;
        let ep = self
            .inner
            .ep_create_inst(local, local_inst, remote, remote_inst, cq)?;
        self.eps.insert(
            ep,
            EpInfo {
                local,
                remote,
                remote_inst,
                cq,
            },
        );
        self.mailboxes.insert((remote, remote_inst));
        self.msgq_nodes.insert(remote);
        Ok(ep)
    }

    #[track_caller]
    pub fn alloc_addr(&mut self, node: NodeId) -> GniResult<Addr> {
        self.tick();
        self.inner.alloc_addr(node)
    }

    #[track_caller]
    pub fn mem_register(
        &mut self,
        node: NodeId,
        addr: Addr,
        bytes: u64,
    ) -> GniResult<(MemHandle, Time)> {
        self.tick();
        let site = Self::here();
        let (h, cost) = self.inner.mem_register(node, addr, bytes)?;
        self.regs.insert((node, h), RegInfo { addr, site });
        self.dereg.remove(&(node, h));
        *self.live_addr.entry((node, addr)).or_insert(0) += 1;
        self.dead_addr.remove(&(node, addr));
        Ok((h, cost))
    }

    #[track_caller]
    pub fn mem_deregister(&mut self, node: NodeId, h: MemHandle) -> GniResult<Time> {
        self.tick();
        let site = Self::here();
        for (&(_, user_id), fl) in &self.in_flight {
            if fl.local == (node, h) || fl.remote == (node, h) {
                self.record(Violation::DeregInFlight {
                    node,
                    handle: h,
                    user_id,
                    site,
                });
            }
        }
        let cost = self.inner.mem_deregister(node, h)?;
        if let Some(info) = self.regs.remove(&(node, h)) {
            self.dereg.insert((node, h), site);
            let key = (node, info.addr);
            if let Some(n) = self.live_addr.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    self.live_addr.remove(&key);
                    self.dead_addr.insert(key, site);
                }
            }
        }
        Ok(cost)
    }

    #[track_caller]
    pub fn mem_write(&mut self, node: NodeId, addr: Addr, data: Bytes) {
        self.tick();
        if let Some(&dereg_site) = self.dead_addr.get(&(node, addr)) {
            let _ = dereg_site;
            self.record(Violation::WriteAfterDereg {
                node,
                addr,
                site: Self::here(),
            });
        }
        self.inner.mem_write(node, addr, data);
    }

    /// Shadows [`Gni::mem_read`] (same signature) to flag reads of
    /// buffers whose registration was released.
    #[track_caller]
    pub fn mem_read(&self, node: NodeId, addr: Addr) -> Option<Bytes> {
        self.tick();
        if self.dead_addr.contains_key(&(node, addr)) {
            self.record(Violation::ReadAfterDereg {
                node,
                addr,
                site: Self::here(),
            });
        }
        self.inner.mem_read(node, addr)
    }

    #[track_caller]
    pub fn mem_clear(&mut self, node: NodeId, addr: Addr) {
        self.tick();
        self.inner.mem_clear(node, addr)
    }

    /// Escape hatch to the fabric (pool registrations, fault plans).
    /// State changed through here is not tracked.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        self.inner.fabric_mut()
    }

    #[track_caller]
    fn send_credit_check(&mut self, ep: EpHandle, tag: u8, data: &Bytes, site: Site) {
        if let Some(ob) = self.credit.get(&ep).copied() {
            let same = ob.tag == tag && ob.len == data.len() && ob.hash == fnv1a(data);
            self.credit.remove(&ep);
            if !same {
                self.record(Violation::CreditBypass {
                    ep,
                    parked_tag: ob.tag,
                    parked_len: ob.len,
                    sent_tag: tag,
                    sent_len: data.len(),
                    site,
                });
            }
        }
    }

    fn send_credit_result(&mut self, ep: EpHandle, tag: u8, data: &Bytes, err: &GniError) {
        if let GniError::NoCredits { .. } = err {
            self.credit.insert(
                ep,
                Obligation {
                    tag,
                    len: data.len(),
                    hash: fnv1a(data),
                },
            );
        }
    }

    #[track_caller]
    pub fn smsg_send_w_tag(
        &mut self,
        now: Time,
        ep: EpHandle,
        tag: u8,
        data: Bytes,
    ) -> GniResult<SmsgSendOk> {
        self.tick();
        let site = Self::here();
        self.send_credit_check(ep, tag, &data, site);
        if let Some(info) = self.eps.get(&ep) {
            self.mailboxes.insert((info.remote, info.remote_inst));
        }
        let res = self.inner.smsg_send_w_tag(now, ep, tag, data.clone());
        if let Err(ref e) = res {
            self.send_credit_result(ep, tag, &data, e);
        }
        res
    }

    #[track_caller]
    pub fn smsg_get_next_w_tag(
        &mut self,
        node: NodeId,
        inst: u32,
        now: Time,
    ) -> GniResult<SmsgRecv> {
        self.tick();
        let site = Self::here();
        let res = self.inner.smsg_get_next_w_tag(node, inst, now);
        if res.is_ok() {
            self.bump_clock(Clock::Smsg(node, inst), now, site);
        }
        res
    }

    #[track_caller]
    pub fn msgq_send_w_tag(
        &mut self,
        now: Time,
        ep: EpHandle,
        tag: u8,
        data: Bytes,
    ) -> GniResult<SmsgSendOk> {
        self.tick();
        let site = Self::here();
        self.send_credit_check(ep, tag, &data, site);
        if let Some(info) = self.eps.get(&ep) {
            self.msgq_nodes.insert(info.remote);
        }
        let res = self.inner.msgq_send_w_tag(now, ep, tag, data.clone());
        if let Err(ref e) = res {
            self.send_credit_result(ep, tag, &data, e);
        }
        res
    }

    #[track_caller]
    pub fn msgq_get_next_w_tag(&mut self, node: NodeId, now: Time) -> GniResult<(SmsgRecv, u32)> {
        self.tick();
        let site = Self::here();
        let res = self.inner.msgq_get_next_w_tag(node, now);
        if res.is_ok() {
            self.bump_clock(Clock::Msgq(node), now, site);
        }
        res
    }

    #[track_caller]
    pub fn post_fma(&mut self, now: Time, ep: EpHandle, desc: PostDescriptor) -> GniResult<PostOk> {
        self.tick();
        let site = Self::here();
        self.check_post(now, ep, desc, site, |g, now, ep, desc| {
            g.post_fma(now, ep, desc)
        })
    }

    #[track_caller]
    pub fn post_rdma(
        &mut self,
        now: Time,
        ep: EpHandle,
        desc: PostDescriptor,
    ) -> GniResult<PostOk> {
        self.tick();
        let site = Self::here();
        self.check_post(now, ep, desc, site, |g, now, ep, desc| {
            g.post_rdma(now, ep, desc)
        })
    }

    fn check_post(
        &mut self,
        now: Time,
        ep: EpHandle,
        desc: PostDescriptor,
        site: Site,
        post: impl FnOnce(&mut Gni, Time, EpHandle, PostDescriptor) -> GniResult<PostOk>,
    ) -> GniResult<PostOk> {
        let info = self.eps.get(&ep).copied();
        let user_id = desc.user_id;
        let (local_mem, remote_mem) = (desc.local_mem, desc.remote_mem);
        let res = post(&mut self.inner, now, ep, desc);
        let Some(info) = info else {
            // Endpoint created outside the wrapper: nothing to attribute
            // the post to; the inner checks still ran.
            return res;
        };
        match &res {
            Err(GniError::NotRegistered) => {
                // Attribute the stale handle: prefer the one we saw die.
                for (node, handle) in [(info.local, local_mem), (info.remote, remote_mem)] {
                    if self.regs.contains_key(&(node, handle)) {
                        continue;
                    }
                    if let Some(&dereg_site) = self.dereg.get(&(node, handle)) {
                        self.record(Violation::UseAfterDereg {
                            node,
                            handle,
                            user_id,
                            dereg_site,
                            site,
                        });
                    } else {
                        self.record(Violation::PostUnregistered {
                            node,
                            handle,
                            user_id,
                            site,
                        });
                    }
                }
            }
            Ok(_) => {
                let fl = self.in_flight.entry((info.cq, user_id)).or_insert(Flight {
                    count: 0,
                    local: (info.local, local_mem),
                    remote: (info.remote, remote_mem),
                    site,
                });
                fl.count += 1;
                fl.local = (info.local, local_mem);
                fl.remote = (info.remote, remote_mem);
                fl.site = site;
                let out = self.outstanding.entry(info.cq).or_insert(0);
                *out += 1;
                let plan = &self.inner.params().fault;
                let plan_bounds_cq = plan.cq_depth > 0 || plan.force_cq_overrun_at.is_some();
                if !plan_bounds_cq && *out > self.depth_limit {
                    let outstanding = *out;
                    let limit = self.depth_limit;
                    self.record(Violation::CqDepthExceeded {
                        cq: info.cq,
                        outstanding,
                        limit,
                        site,
                    });
                }
            }
            Err(_) => {}
        }
        res
    }

    #[track_caller]
    pub fn cq_get_event(&mut self, cq: CqHandle, now: Time) -> GniResult<CqEvent> {
        self.tick();
        let site = Self::here();
        let res = self.inner.cq_get_event(cq, now);
        if let Ok(ref ev) = res {
            self.bump_clock(Clock::Cq(cq), now, site);
            match ev {
                CqEvent::PostDone { user_id, .. } | CqEvent::PostError { user_id, .. } => {
                    self.consume_completion(cq, *user_id, site);
                }
                CqEvent::SmsgRx { .. } => {}
            }
        }
        res
    }

    #[track_caller]
    pub fn cq_resync(&mut self, cq: CqHandle, now: Time) -> GniResult<(Time, u32)> {
        self.tick();
        let site = Self::here();
        let res = self.inner.cq_resync(cq, now);
        if res.is_ok() {
            self.bump_clock(Clock::Cq(cq), now, site);
        }
        res
    }

    fn consume_completion(&mut self, cq: CqHandle, user_id: u64, site: Site) {
        match self.in_flight.get_mut(&(cq, user_id)) {
            Some(fl) if fl.count > 0 => {
                fl.count -= 1;
                if fl.count == 0 {
                    self.in_flight.remove(&(cq, user_id));
                }
                if let Some(out) = self.outstanding.get_mut(&cq) {
                    *out = out.saturating_sub(1);
                }
            }
            _ => {
                self.record(Violation::DoubleCompletion { cq, user_id, site });
            }
        }
    }

    fn bump_clock(&mut self, clock: Clock, now: Time, site: Site) {
        let prev = match clock {
            Clock::Cq(cq) => self.last_cq.insert(cq, now),
            Clock::Smsg(node, inst) => self.last_smsg.insert((node, inst), now),
            Clock::Msgq(node) => self.last_msgq.insert(node, now),
        };
        if let Some(prev) = prev {
            if now < prev {
                self.record(Violation::NonMonotonicTime {
                    clock,
                    prev,
                    now,
                    site,
                });
            } else {
                return;
            }
            // Keep the clock at its high-water mark so one regression is
            // reported once, not for every subsequent in-order call.
            match clock {
                Clock::Cq(cq) => {
                    self.last_cq.insert(cq, prev);
                }
                Clock::Smsg(node, inst) => {
                    self.last_smsg.insert((node, inst), prev);
                }
                Clock::Msgq(node) => {
                    self.last_msgq.insert(node, prev);
                }
            }
        }
    }

    /// Direct access to the accumulated violations (mutation tests).
    pub fn violations(&self) -> Vec<Violation> {
        self.violations.borrow().clone()
    }
}
