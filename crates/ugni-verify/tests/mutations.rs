//! Mutation-style coverage for the contract verifier: every rule gets a
//! test that deliberately violates it and asserts the checker flags it
//! with the right descriptor/handle — plus a clean run it stays silent
//! on. A verifier nobody has ever seen fire is indistinguishable from
//! one that cannot.

use bytes::Bytes;
use gemini_net::{GeminiParams, MemHandle, RdmaOp};
use ugni::{CqEvent, Gni, GniError, PostDescriptor};
use ugni_verify::{CheckedGni, Clock, Violation};

fn checked(nodes: u32) -> CheckedGni {
    CheckedGni::new(GeminiParams::hopper(), nodes)
}

fn put_desc(
    lh: MemHandle,
    la: gemini_net::Addr,
    rh: MemHandle,
    ra: gemini_net::Addr,
    bytes: u64,
    user_id: u64,
) -> PostDescriptor {
    PostDescriptor {
        op: RdmaOp::Put,
        local_mem: lh,
        local_addr: la,
        remote_mem: rh,
        remote_addr: ra,
        bytes,
        data: Some(Bytes::from(vec![7u8; bytes as usize])),
        user_id,
    }
}

/// The whole legal lifecycle: register, post, consume exactly once,
/// deregister, drain. Zero violations, zero leaks.
#[test]
fn clean_lifecycle_passes() {
    let mut g = checked(2);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();

    // SMSG round.
    let ok = g
        .smsg_send_w_tag(0, ep, 3, Bytes::from_static(b"hello"))
        .unwrap();
    let rx = g.smsg_get_next_w_tag(1, 1, ok.deliver_at).unwrap();
    assert_eq!(rx.tag, 3);

    // RDMA round.
    let la = g.alloc_addr(0).unwrap();
    let (lh, _) = g.mem_register(0, la, 4096).unwrap();
    let ra = g.alloc_addr(1).unwrap();
    let (rh, _) = g.mem_register(1, ra, 4096).unwrap();
    let ok = g
        .post_fma(0, ep, put_desc(lh, la, rh, ra, 4096, 42))
        .unwrap();
    match g.cq_get_event(cq, ok.local_cq_at).unwrap() {
        CqEvent::PostDone { user_id, .. } => assert_eq!(user_id, 42),
        ev => panic!("unexpected event {ev:?}"),
    }
    g.mem_deregister(0, lh).unwrap();
    g.mem_deregister(1, rh).unwrap();

    let report = g.finish();
    assert!(report.is_clean(), "{report}");
    assert!(report.leaks.is_empty(), "{report}");
    assert!(report.checked_calls > 0);
}

/// Rule: every descriptor id gets exactly one consumed completion. A
/// consumption with no outstanding post (the signature a double-consume
/// leaves after the first legal one) is flagged with the descriptor id.
#[test]
fn double_consume_is_flagged_with_descriptor_id() {
    // Arrange a completion the verifier never saw posted: post through
    // the raw Gni, then wrap. From the wrapper's ledger this event's
    // descriptor has already been retired — consuming it is the second
    // consumption.
    let mut raw = Gni::new(GeminiParams::hopper(), 2);
    let cq = raw.cq_create();
    let ep = raw.ep_create(0, 1, cq).unwrap();
    let la = raw.alloc_addr(0).unwrap();
    let (lh, _) = raw.mem_register(0, la, 64).unwrap();
    let ra = raw.alloc_addr(1).unwrap();
    let (rh, _) = raw.mem_register(1, ra, 64).unwrap();
    let ok = raw
        .post_fma(0, ep, put_desc(lh, la, rh, ra, 64, 99))
        .unwrap();

    let mut g = CheckedGni::wrap(raw);
    let _ = g.cq_get_event(cq, ok.local_cq_at).unwrap();
    let report = g.report();
    assert!(
        report.violations.iter().any(
            |v| matches!(v, Violation::DoubleCompletion { user_id: 99, cq: c, .. } if *c == cq)
        ),
        "{report}"
    );
}

/// Rule: no `mem_deregister` while a transaction on the handle is in
/// flight (completion not yet consumed).
#[test]
fn deregister_mid_flight_is_flagged() {
    let mut g = checked(2);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();
    let la = g.alloc_addr(0).unwrap();
    let (lh, _) = g.mem_register(0, la, 256).unwrap();
    let ra = g.alloc_addr(1).unwrap();
    let (rh, _) = g.mem_register(1, ra, 256).unwrap();
    let ok = g.post_fma(0, ep, put_desc(lh, la, rh, ra, 256, 7)).unwrap();

    // Deregister the local buffer before consuming the completion.
    g.mem_deregister(0, lh).unwrap();

    let report = g.report();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::DeregInFlight { user_id: 7, handle, node: 0, .. } if *handle == lh
        )),
        "{report}"
    );

    // Consuming afterwards is then the legal single consumption.
    let _ = g.cq_get_event(cq, ok.local_cq_at).unwrap();
    let report = g.report();
    assert_eq!(report.violations.len(), 1, "{report}");
}

/// Rule: a post through a deregistered handle is use-after-dereg (and
/// carries both the posting and the deregistering call sites).
#[test]
fn post_after_deregister_is_flagged() {
    let mut g = checked(2);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();
    let la = g.alloc_addr(0).unwrap();
    let (lh, _) = g.mem_register(0, la, 128).unwrap();
    let ra = g.alloc_addr(1).unwrap();
    let (rh, _) = g.mem_register(1, ra, 128).unwrap();
    g.mem_deregister(0, lh).unwrap();

    let err = g
        .post_fma(0, ep, put_desc(lh, la, rh, ra, 128, 13))
        .unwrap_err();
    assert_eq!(err, GniError::NotRegistered);

    let report = g.report();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::UseAfterDereg { user_id: 13, handle, node: 0, .. } if *handle == lh
        )),
        "{report}"
    );
}

/// Rule: a post through a handle that was never registered at all is
/// distinguished from use-after-dereg.
#[test]
fn post_through_unknown_handle_is_flagged() {
    let mut g = checked(2);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();
    let la = g.alloc_addr(0).unwrap();
    let ra = g.alloc_addr(1).unwrap();
    let bogus = MemHandle(0xdead);
    let err = g
        .post_fma(0, ep, put_desc(bogus, la, bogus, ra, 64, 5))
        .unwrap_err();
    assert_eq!(err, GniError::NotRegistered);

    let report = g.report();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::PostUnregistered { user_id: 5, handle, .. } if *handle == bogus
        )),
        "{report}"
    );
}

/// Rule: after `NoCredits` parks a message, the next send on that
/// endpoint must retry the parked message — sending different traffic
/// first means the backlog was bypassed.
#[test]
fn credit_backlog_bypass_is_flagged() {
    let mut g = checked(2);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();
    let credits = g.params().smsg_credits;

    // Exhaust the mailbox credits without draining the receiver.
    let parked = Bytes::from_static(b"parked-message");
    let mut err = None;
    for _ in 0..credits + 1 {
        if let Err(e) = g.smsg_send_w_tag(0, ep, 1, parked.clone()) {
            err = Some(e);
            break;
        }
    }
    assert!(
        matches!(err, Some(GniError::NoCredits { .. })),
        "expected credit exhaustion, got {err:?}"
    );

    // Bypass: send *different* traffic on the same connection.
    let _ = g.smsg_send_w_tag(1_000_000, ep, 2, Bytes::from_static(b"queue-jumper"));

    let report = g.report();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::CreditBypass { ep: e, parked_tag: 1, sent_tag: 2, .. } if *e == ep
        )),
        "{report}"
    );
}

/// Clean counterpart: retrying the *parked* message (what `ConnBacklog`
/// does) satisfies the obligation.
#[test]
fn credit_retry_of_parked_message_is_clean() {
    let mut g = checked(2);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();
    let credits = g.params().smsg_credits;
    let parked = Bytes::from_static(b"parked-message");
    let mut retry_at = None;
    for _ in 0..credits + 1 {
        if let Err(GniError::NoCredits { retry_at: t }) =
            g.smsg_send_w_tag(0, ep, 1, parked.clone())
        {
            retry_at = Some(t);
            break;
        }
    }
    let retry_at = retry_at.expect("credit exhaustion");

    // Drain one message so a credit frees, then retry the parked one.
    let rx = g.smsg_get_next_w_tag(1, 1, retry_at).unwrap();
    assert_eq!(rx.tag, 1);
    g.smsg_send_w_tag(retry_at, ep, 1, parked).unwrap();

    let report = g.report();
    assert!(report.is_clean(), "{report}");
}

/// Rule: outstanding completions per CQ stay within depth unless a fault
/// plan explicitly bounds/overruns the queue.
#[test]
fn cq_depth_excess_is_flagged() {
    let mut g = checked(2);
    g.set_cq_depth_limit(2);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();
    let la = g.alloc_addr(0).unwrap();
    let (lh, _) = g.mem_register(0, la, 64).unwrap();
    let ra = g.alloc_addr(1).unwrap();
    let (rh, _) = g.mem_register(1, ra, 64).unwrap();
    for id in 0..3u64 {
        g.post_fma(0, ep, put_desc(lh, la, rh, ra, 64, id)).unwrap();
    }
    let report = g.report();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::CqDepthExceeded { outstanding: 3, limit: 2, cq: c, .. } if *c == cq
        )),
        "{report}"
    );
}

/// Rule: consumption clocks are monotonic per object — draining a CQ at
/// an earlier `now` than a previous successful poll is flagged.
#[test]
fn non_monotonic_consumption_is_flagged() {
    let mut g = checked(2);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();
    let la = g.alloc_addr(0).unwrap();
    let (lh, _) = g.mem_register(0, la, 64).unwrap();
    let ra = g.alloc_addr(1).unwrap();
    let (rh, _) = g.mem_register(1, ra, 64).unwrap();

    let ok1 = g.post_fma(0, ep, put_desc(lh, la, rh, ra, 64, 1)).unwrap();
    let ok2 = g.post_fma(0, ep, put_desc(lh, la, rh, ra, 64, 2)).unwrap();
    let late = ok1.local_cq_at.max(ok2.local_cq_at) + 1_000;

    // Consume the first far in the future, the second "in the past".
    g.cq_get_event(cq, late).unwrap();
    g.cq_get_event(cq, late - 500).unwrap();

    let report = g.report();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::NonMonotonicTime { clock: Clock::Cq(c), .. } if *c == cq
        )),
        "{report}"
    );
}

/// Rule: touching buffer content after its registration died.
#[test]
fn write_and_read_after_dereg_are_flagged() {
    let mut g = checked(2);
    let a = g.alloc_addr(0).unwrap();
    let (h, _) = g.mem_register(0, a, 64).unwrap();
    g.mem_write(0, a, Bytes::from_static(b"live"));
    g.mem_deregister(0, h).unwrap();

    g.mem_write(0, a, Bytes::from_static(b"stale"));
    let _ = g.mem_read(0, a);

    let report = g.report();
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::WriteAfterDereg { node: 0, addr, .. } if *addr == a)));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::ReadAfterDereg { node: 0, addr, .. } if *addr == a)));

    // Re-registering the buffer revives it: no further violations.
    let before = report.violations.len();
    let (_h2, _) = g.mem_register(0, a, 64).unwrap();
    g.mem_write(0, a, Bytes::from_static(b"fresh"));
    let _ = g.mem_read(0, a);
    assert_eq!(g.report().violations.len(), before);
}

/// Shutdown: live registrations, unconsumed completions, undrained
/// mailboxes and parked retries surface as leaks (advisory, separate
/// from violations).
#[test]
fn leaks_are_reported_at_finish() {
    let mut g = checked(2);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();
    let la = g.alloc_addr(0).unwrap();
    let (lh, _) = g.mem_register(0, la, 64).unwrap();
    let ra = g.alloc_addr(1).unwrap();
    let (rh, _) = g.mem_register(1, ra, 64).unwrap();
    // Posted, never consumed.
    g.post_fma(0, ep, put_desc(lh, la, rh, ra, 64, 77)).unwrap();
    // Sent, never drained.
    g.smsg_send_w_tag(0, ep, 9, Bytes::from_static(b"zombie"))
        .unwrap();

    let report = g.finish();
    assert!(report.is_clean(), "leaks must not be violations: {report}");
    use ugni_verify::Leak;
    assert!(report
        .leaks
        .iter()
        .any(|l| matches!(l, Leak::Registration { handle, .. } if *handle == lh)));
    assert!(report
        .leaks
        .iter()
        .any(|l| matches!(l, Leak::UnconsumedCompletion { user_id: 77, .. })));
    assert!(report
        .leaks
        .iter()
        .any(|l| matches!(l, Leak::UndrainedMailbox { node: 1, .. })));
}

/// Strict mode: the first violation panics with the offending handle and
/// call site instead of accumulating.
#[test]
#[should_panic(expected = "uGNI contract violation")]
fn strict_mode_panics_on_first_violation() {
    let mut g = checked(2);
    g.set_strict(true);
    let cq = g.cq_create();
    let ep = g.ep_create(0, 1, cq).unwrap();
    let la = g.alloc_addr(0).unwrap();
    let (lh, _) = g.mem_register(0, la, 64).unwrap();
    let ra = g.alloc_addr(1).unwrap();
    let (rh, _) = g.mem_register(1, ra, 64).unwrap();
    g.post_fma(0, ep, put_desc(lh, la, rh, ra, 64, 1)).unwrap();
    g.mem_deregister(0, lh).unwrap(); // mid-flight: panics here
}

/// Violations carry the offending call site (file:line of the caller).
#[test]
fn violations_carry_call_sites() {
    let mut g = checked(2);
    let a = g.alloc_addr(0).unwrap();
    let (h, _) = g.mem_register(0, a, 64).unwrap();
    g.mem_deregister(0, h).unwrap();
    g.mem_write(0, a, Bytes::from_static(b"stale"));
    let report = g.report();
    let Violation::WriteAfterDereg { site, .. } = &report.violations[0] else {
        panic!("expected WriteAfterDereg: {report}");
    };
    assert!(site.file.ends_with("mutations.rs"), "site: {site}");
    assert!(site.line > 0);
}
