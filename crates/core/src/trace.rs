//! Projections-like utilization accounting (paper Fig. 12).
//!
//! The paper's time profiles show, per time interval, how much of the
//! machine was doing useful computation (yellow), sitting idle (white), or
//! burning runtime overhead (black). We accumulate exactly those three
//! quantities: handler compute time is *busy*, scheduler + machine-layer
//! time is *overhead*, and idle is whatever remains of `num_pes × span`.

use crate::msg::PeId;
use sim_core::{time, Time};

/// What a recorded time segment was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Useful application computation (handler `charge`d work).
    Busy,
    /// Runtime overhead: scheduling, protocol processing, copies.
    Overhead,
    /// Fault-recovery work: transaction retries, CQ overrun resyncs,
    /// registration fallbacks, crash-recovery restores and replays. Zero in
    /// fault-free runs; splitting it from ordinary overhead makes
    /// chaos-mode profiles show what robustness costs.
    Recovery,
    /// Checkpoint work: serializing PE state and shipping it to the buddy
    /// node. Proactive (it runs in fault-free time too, unlike
    /// [`Kind::Recovery`]), so it gets its own bucket — the cadence sweep
    /// reads checkpoint overhead directly from here.
    Checkpoint,
}

#[derive(Debug, Default, Clone, Copy)]
struct Acc {
    busy: Time,
    ovh: Time,
    rec: Time,
    ckpt: Time,
}

/// One buffered trace mutation from a parallel-phase event execution
/// (see `cluster.rs`). Workers cannot touch the shared [`Trace`], so they
/// record these and the driver replays them in canonical event order at
/// the window barrier — reproducing the exact `record`/`count_msg` call
/// sequence of the sequential engine (which the per-PE pending-segment
/// buffering and the raw log depend on).
#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceOp {
    Record(PeId, Time, Time, Kind),
    CountMsg(PeId),
}

/// One row of a rendered time profile.
#[derive(Debug, Clone, Copy)]
pub struct ProfileRow {
    /// Bucket start, ns.
    pub t: Time,
    pub busy_frac: f64,
    pub overhead_frac: f64,
    pub recovery_frac: f64,
    pub checkpoint_frac: f64,
    pub idle_frac: f64,
}

/// Utilization accumulator for a whole job.
#[derive(Debug)]
pub struct Trace {
    per_pe: Vec<Acc>,
    msgs: Vec<u64>,
    /// Aggregated timeline buckets across all PEs (None = totals only).
    bucket_ns: Option<Time>,
    buckets: Vec<Acc>,
    /// Per-PE buffered segment awaiting bucket application. The driver
    /// charges most work as back-to-back same-kind segments (scheduler
    /// overhead chained behind handler compute), so buffering one pending
    /// segment per PE and extending it in place batches the bucket-split
    /// loop across whole busy stretches. A buffer drains when a
    /// non-adjacent or different-kind charge for that PE arrives; readers
    /// ([`Trace::profile`]) overlay still-pending segments, so observable
    /// results are exact at any instant. Totals, `end`, and the optional
    /// raw log are updated eagerly and never buffered.
    pending: Vec<Option<(Time, Time, Kind)>>,
    /// Optional full event log: (pe, start, dur, kind) — the
    /// Projections-style export. Off by default (memory).
    log: Option<Vec<(PeId, Time, Time, Kind)>>,
    end: Time,
}

impl Trace {
    /// `bucket_ns = None` records only totals (cheap); `Some(w)` also keeps
    /// an aggregated timeline with bucket width `w`.
    pub fn new(num_pes: u32, bucket_ns: Option<Time>) -> Self {
        Trace {
            per_pe: vec![Acc::default(); num_pes as usize],
            msgs: vec![0; num_pes as usize],
            bucket_ns,
            buckets: Vec::new(),
            pending: vec![None; num_pes as usize],
            log: None,
            end: 0,
        }
    }

    /// Record every segment for a Projections-style per-PE export
    /// ([`Trace::export_log`]). Costs memory proportional to segment count.
    pub fn enable_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Record `dur` ns of `kind` work on `pe` starting at `start`.
    // serial-only: appends to the shared timeline
    pub fn record(&mut self, pe: PeId, start: Time, dur: Time, kind: Kind) {
        if dur == 0 {
            return;
        }
        if let Some(log) = &mut self.log {
            log.push((pe, start, dur, kind));
        }
        let acc = &mut self.per_pe[pe as usize];
        match kind {
            Kind::Busy => acc.busy += dur,
            Kind::Overhead => acc.ovh += dur,
            Kind::Recovery => acc.rec += dur,
            Kind::Checkpoint => acc.ckpt += dur,
        }
        self.end = self.end.max(start + dur);
        if self.bucket_ns.is_none() {
            return;
        }
        // Timeline mode: merge the charge into this PE's pending segment
        // when it extends it seamlessly (same kind, contiguous in time);
        // otherwise drain the old segment into the buckets and start a new
        // one. Splitting a merged segment across buckets distributes
        // exactly the same durations as splitting its parts one by one.
        match &mut self.pending[pe as usize] {
            Some((s, d, k)) if *k == kind && *s + *d == start => *d += dur,
            p => {
                if let Some((s, d, k)) = p.replace((start, dur, kind)) {
                    self.apply_to_buckets(s, d, k);
                }
            }
        }
    }

    /// Split one segment across the timeline buckets (the flush side of
    /// the per-PE buffering in [`Trace::record`]).
    fn apply_to_buckets(&mut self, start: Time, dur: Time, kind: Kind) {
        // panic-ok: only called from timeline mode, where bucket_ns is set
        let w = self.bucket_ns.expect("timeline mode");
        let mut t = start;
        let end = start + dur;
        while t < end {
            let b = (t / w) as usize;
            if b >= self.buckets.len() {
                self.buckets.resize(b + 1, Acc::default());
            }
            let seg_end = ((b as Time + 1) * w).min(end);
            let d = seg_end - t;
            match kind {
                Kind::Busy => self.buckets[b].busy += d,
                Kind::Overhead => self.buckets[b].ovh += d,
                Kind::Recovery => self.buckets[b].rec += d,
                Kind::Checkpoint => self.buckets[b].ckpt += d,
            }
            t = seg_end;
        }
    }

    pub fn count_msg(&mut self, pe: PeId) {
        self.msgs[pe as usize] += 1;
    }

    /// Replay one buffered [`TraceOp`].
    pub(crate) fn apply(&mut self, op: &TraceOp) {
        match *op {
            TraceOp::Record(pe, start, dur, kind) => self.record(pe, start, dur, kind),
            TraceOp::CountMsg(pe) => self.count_msg(pe),
        }
    }

    pub fn num_pes(&self) -> u32 {
        self.per_pe.len() as u32
    }

    /// Latest recorded activity.
    pub fn end_time(&self) -> Time {
        self.end
    }

    pub fn total_busy(&self) -> Time {
        self.per_pe.iter().map(|a| a.busy).sum()
    }

    pub fn total_overhead(&self) -> Time {
        self.per_pe.iter().map(|a| a.ovh).sum()
    }

    pub fn total_recovery(&self) -> Time {
        self.per_pe.iter().map(|a| a.rec).sum()
    }

    pub fn total_checkpoint(&self) -> Time {
        self.per_pe.iter().map(|a| a.ckpt).sum()
    }

    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    pub fn pe_busy(&self, pe: PeId) -> Time {
        self.per_pe[pe as usize].busy
    }

    pub fn pe_overhead(&self, pe: PeId) -> Time {
        self.per_pe[pe as usize].ovh
    }

    /// Whole-run utilization fractions `(busy, overhead, idle)` over
    /// `span` (defaults to the recorded end time). Recovery time is folded
    /// into the overhead fraction here (it is runtime work, not idleness);
    /// use [`Trace::utilization_with_recovery`] for the split.
    pub fn utilization(&self, span: Option<Time>) -> (f64, f64, f64) {
        let (busy, ovh, rec, idle) = self.utilization_with_recovery(span);
        (busy, ovh + rec, idle)
    }

    /// Whole-run utilization fractions `(busy, overhead, recovery, idle)`.
    /// Checkpoint time is folded into the overhead fraction (it is
    /// proactive runtime work); read [`Trace::total_checkpoint`] for the
    /// split.
    pub fn utilization_with_recovery(&self, span: Option<Time>) -> (f64, f64, f64, f64) {
        let span = span.unwrap_or(self.end).max(1);
        let cap = (span as f64) * self.per_pe.len() as f64;
        let busy = self.total_busy() as f64 / cap;
        let ovh = (self.total_overhead() + self.total_checkpoint()) as f64 / cap;
        let rec = self.total_recovery() as f64 / cap;
        (busy, ovh, rec, (1.0 - busy - ovh - rec).max(0.0))
    }

    /// Render the Fig.-12-style time profile (requires timeline mode).
    pub fn profile(&self) -> Vec<ProfileRow> {
        let w = self
            .bucket_ns
            .expect("trace built without timeline buckets");
        // Overlay the per-PE pending segments that have not been drained
        // into the shared buckets yet, so the profile is exact even when
        // read mid-run.
        let mut buckets = self.buckets.clone();
        for p in &self.pending {
            let Some((start, dur, kind)) = *p else {
                continue;
            };
            let mut t = start;
            let end = start + dur;
            while t < end {
                let b = (t / w) as usize;
                if b >= buckets.len() {
                    buckets.resize(b + 1, Acc::default());
                }
                let seg_end = ((b as Time + 1) * w).min(end);
                let d = seg_end - t;
                match kind {
                    Kind::Busy => buckets[b].busy += d,
                    Kind::Overhead => buckets[b].ovh += d,
                    Kind::Recovery => buckets[b].rec += d,
                    Kind::Checkpoint => buckets[b].ckpt += d,
                }
                t = seg_end;
            }
        }
        let cap = (w as f64) * self.per_pe.len() as f64;
        buckets
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let busy = a.busy as f64 / cap;
                let ovh = a.ovh as f64 / cap;
                let rec = a.rec as f64 / cap;
                let ckpt = a.ckpt as f64 / cap;
                ProfileRow {
                    t: i as Time * w,
                    busy_frac: busy,
                    overhead_frac: ovh,
                    recovery_frac: rec,
                    checkpoint_frac: ckpt,
                    idle_frac: (1.0 - busy - ovh - rec - ckpt).max(0.0),
                }
            })
            .collect()
    }

    /// Export the per-PE segment log in a Projections-like text format:
    /// one line per segment, `pe start_ns dur_ns busy|ovhd`, sorted by
    /// (pe, start). Requires [`Trace::enable_log`].
    pub fn export_log(&self) -> String {
        let log = self.log.as_ref().expect("trace log not enabled");
        let mut rows: Vec<&(PeId, Time, Time, Kind)> = log.iter().collect();
        rows.sort_by_key(|(pe, start, _, _)| (*pe, *start));
        let mut out = String::with_capacity(rows.len() * 24);
        out.push_str("# pe start_ns dur_ns kind\n");
        for (pe, start, dur, kind) in rows {
            let k = match kind {
                Kind::Busy => "busy",
                Kind::Overhead => "ovhd",
                Kind::Recovery => "rcvy",
                Kind::Checkpoint => "ckpt",
            };
            out.push_str(&format!("{pe} {start} {dur} {k}\n"));
        }
        out
    }

    /// ASCII rendering of the profile, one row per bucket.
    pub fn render_profile(&self) -> String {
        let mut out = String::new();
        out.push_str("      t        busy%   ovhd%   rcvy%   ckpt%   idle%\n");
        for r in self.profile() {
            out.push_str(&format!(
                "{:>10}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}\n",
                time::fmt(r.t),
                r.busy_frac * 100.0,
                r.overhead_frac * 100.0,
                r.recovery_frac * 100.0,
                r.checkpoint_frac * 100.0,
                r.idle_frac * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_per_kind() {
        let mut t = Trace::new(2, None);
        t.record(0, 0, 100, Kind::Busy);
        t.record(0, 100, 50, Kind::Overhead);
        t.record(1, 0, 25, Kind::Busy);
        assert_eq!(t.total_busy(), 125);
        assert_eq!(t.total_overhead(), 50);
        assert_eq!(t.pe_busy(0), 100);
        assert_eq!(t.pe_overhead(1), 0);
        assert_eq!(t.end_time(), 150);
    }

    #[test]
    fn zero_duration_is_ignored() {
        let mut t = Trace::new(1, Some(10));
        t.record(0, 5, 0, Kind::Busy);
        assert_eq!(t.total_busy(), 0);
        assert_eq!(t.end_time(), 0);
    }

    #[test]
    fn utilization_fractions_sum_to_one() {
        let mut t = Trace::new(2, None);
        t.record(0, 0, 600, Kind::Busy);
        t.record(1, 0, 200, Kind::Overhead);
        let (b, o, i) = t.utilization(Some(1000));
        assert!((b - 0.3).abs() < 1e-9);
        assert!((o - 0.1).abs() < 1e-9);
        assert!((b + o + i - 1.0).abs() < 1e-9);
    }

    #[test]
    fn segments_split_across_buckets() {
        let mut t = Trace::new(1, Some(100));
        // 250..450 busy: buckets 2 (50ns), 3 (100ns), 4 (50ns)
        t.record(0, 250, 200, Kind::Busy);
        let p = t.profile();
        assert_eq!(p.len(), 5);
        assert!((p[2].busy_frac - 0.5).abs() < 1e-9);
        assert!((p[3].busy_frac - 1.0).abs() < 1e-9);
        assert!((p[4].busy_frac - 0.5).abs() < 1e-9);
        assert_eq!(p[0].busy_frac, 0.0);
    }

    #[test]
    fn adjacent_charges_profile_like_one_segment() {
        // Coalesced path (adjacent same-kind records) vs a single merged
        // record: bucket profiles must match exactly.
        let mut a = Trace::new(1, Some(100));
        a.record(0, 250, 80, Kind::Busy);
        a.record(0, 330, 120, Kind::Busy);
        let mut b = Trace::new(1, Some(100));
        b.record(0, 250, 200, Kind::Busy);
        let (pa, pb) = (a.profile(), b.profile());
        assert_eq!(pa.len(), pb.len());
        for (ra, rb) in pa.iter().zip(&pb) {
            assert_eq!(ra.busy_frac, rb.busy_frac);
        }
        assert_eq!(a.total_busy(), b.total_busy());
    }

    #[test]
    fn drained_and_pending_segments_both_show_in_profile() {
        let mut t = Trace::new(2, Some(100));
        // PE 0: two non-adjacent busy stretches — the first drains into
        // the shared buckets when the second arrives, the second is still
        // pending at read time. PE 1: different kind, still pending.
        t.record(0, 0, 100, Kind::Busy);
        t.record(0, 300, 100, Kind::Busy);
        t.record(1, 100, 50, Kind::Overhead);
        let p = t.profile();
        assert!((p[0].busy_frac - 0.5).abs() < 1e-9, "drained segment");
        assert!((p[3].busy_frac - 0.5).abs() < 1e-9, "pending segment");
        assert!((p[1].overhead_frac - 0.25).abs() < 1e-9, "other PE pending");
        assert_eq!(t.end_time(), 400);
    }

    #[test]
    fn kind_change_drains_the_buffer() {
        let mut t = Trace::new(1, Some(1000));
        t.record(0, 0, 100, Kind::Busy);
        t.record(0, 100, 100, Kind::Overhead); // adjacent but different kind
        t.record(0, 200, 100, Kind::Recovery);
        let p = t.profile();
        assert!((p[0].busy_frac - 0.1).abs() < 1e-9);
        assert!((p[0].overhead_frac - 0.1).abs() < 1e-9);
        assert!((p[0].recovery_frac - 0.1).abs() < 1e-9);
    }

    #[test]
    fn profile_normalizes_by_pe_count() {
        let mut t = Trace::new(4, Some(100));
        t.record(0, 0, 100, Kind::Busy);
        let p = t.profile();
        assert!((p[0].busy_frac - 0.25).abs() < 1e-9, "1 of 4 PEs busy");
        assert!((p[0].idle_frac - 0.75).abs() < 1e-9);
    }

    #[test]
    fn recovery_is_tracked_separately_but_folds_into_overhead() {
        let mut t = Trace::new(1, None);
        t.record(0, 0, 300, Kind::Busy);
        t.record(0, 300, 100, Kind::Overhead);
        t.record(0, 400, 100, Kind::Recovery);
        assert_eq!(t.total_recovery(), 100);
        assert_eq!(t.total_overhead(), 100);
        let (b, o, r, i) = t.utilization_with_recovery(Some(1000));
        assert!((b - 0.3).abs() < 1e-9);
        assert!((o - 0.1).abs() < 1e-9);
        assert!((r - 0.1).abs() < 1e-9);
        assert!((b + o + r + i - 1.0).abs() < 1e-9);
        // Legacy 3-tuple folds recovery into overhead.
        let (_, o3, _) = t.utilization(Some(1000));
        assert!((o3 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn recovery_appears_in_log_and_profile() {
        let mut t = Trace::new(1, Some(100));
        t.enable_log();
        t.record(0, 0, 50, Kind::Recovery);
        assert!(t.export_log().contains("0 0 50 rcvy"));
        let p = t.profile();
        assert!((p[0].recovery_frac - 0.5).abs() < 1e-9);
        assert!((p[0].idle_frac - 0.5).abs() < 1e-9);
        assert!(t.render_profile().contains("rcvy%"));
    }

    #[test]
    fn checkpoint_is_tracked_separately_and_folds_into_overhead() {
        let mut t = Trace::new(1, Some(100));
        t.enable_log();
        t.record(0, 0, 300, Kind::Busy);
        t.record(0, 300, 100, Kind::Checkpoint);
        assert_eq!(t.total_checkpoint(), 100);
        assert_eq!(t.total_overhead(), 0);
        let (b, o, r, i) = t.utilization_with_recovery(Some(1000));
        assert!((b - 0.3).abs() < 1e-9);
        assert!((o - 0.1).abs() < 1e-9, "checkpoint folds into overhead");
        assert_eq!(r, 0.0);
        assert!((b + o + r + i - 1.0).abs() < 1e-9);
        assert!(t.export_log().contains("0 300 100 ckpt"));
        let p = t.profile();
        assert!((p[3].checkpoint_frac - 1.0).abs() < 1e-9);
        assert!(t.render_profile().contains("ckpt%"));
    }

    #[test]
    fn message_counts() {
        let mut t = Trace::new(2, None);
        t.count_msg(0);
        t.count_msg(0);
        t.count_msg(1);
        assert_eq!(t.total_msgs(), 3);
    }

    #[test]
    fn export_log_round_trips_segments() {
        let mut t = Trace::new(2, None);
        t.enable_log();
        t.record(1, 100, 50, Kind::Busy);
        t.record(0, 30, 20, Kind::Overhead);
        t.record(0, 10, 5, Kind::Busy);
        let log = t.export_log();
        let lines: Vec<&str> = log.lines().skip(1).collect();
        assert_eq!(lines, vec!["0 10 5 busy", "0 30 20 ovhd", "1 100 50 busy"]);
    }

    #[test]
    #[should_panic(expected = "trace log not enabled")]
    fn export_without_log_panics() {
        let t = Trace::new(1, None);
        t.export_log();
    }

    #[test]
    fn render_contains_rows() {
        let mut t = Trace::new(1, Some(1000));
        t.record(0, 0, 500, Kind::Busy);
        t.record(0, 500, 250, Kind::Overhead);
        let s = t.render_profile();
        assert!(s.contains("busy%"));
        assert!(s.contains("50.0"));
        assert!(s.contains("25.0"));
    }
}
