//! Projections-like utilization accounting (paper Fig. 12).
//!
//! The paper's time profiles show, per time interval, how much of the
//! machine was doing useful computation (yellow), sitting idle (white), or
//! burning runtime overhead (black). We accumulate exactly those three
//! quantities: handler compute time is *busy*, scheduler + machine-layer
//! time is *overhead*, and idle is whatever remains of `num_pes × span`.

use crate::msg::PeId;
use sim_core::{lazy::LazyVec, time, Time};
use std::io::Write;

/// What a recorded time segment was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Useful application computation (handler `charge`d work).
    Busy,
    /// Runtime overhead: scheduling, protocol processing, copies.
    Overhead,
    /// Fault-recovery work: transaction retries, CQ overrun resyncs,
    /// registration fallbacks, crash-recovery restores and replays. Zero in
    /// fault-free runs; splitting it from ordinary overhead makes
    /// chaos-mode profiles show what robustness costs.
    Recovery,
    /// Checkpoint work: serializing PE state and shipping it to the buddy
    /// node. Proactive (it runs in fault-free time too, unlike
    /// [`Kind::Recovery`]), so it gets its own bucket — the cadence sweep
    /// reads checkpoint overhead directly from here.
    Checkpoint,
}

#[derive(Debug, Default, Clone, Copy)]
struct Acc {
    busy: Time,
    ovh: Time,
    rec: Time,
    ckpt: Time,
}

/// One buffered trace mutation from a parallel-phase event execution
/// (see `cluster.rs`). Workers cannot touch the shared [`Trace`], so they
/// record these and the driver replays them in canonical event order at
/// the window barrier — reproducing the exact `record`/`count_msg` call
/// sequence of the sequential engine (which the per-PE pending-segment
/// buffering and the raw log depend on).
#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceOp {
    Record(PeId, Time, Time, Kind),
    CountMsg(PeId),
}

/// One row of a rendered time profile.
#[derive(Debug, Clone, Copy)]
pub struct ProfileRow {
    /// Bucket start, ns.
    pub t: Time,
    pub busy_frac: f64,
    pub overhead_frac: f64,
    pub recovery_frac: f64,
    pub checkpoint_frac: f64,
    pub idle_frac: f64,
}

/// Spill destination for the streaming segment log: segments are written
/// in record order as `pe start_ns dur_ns kind` lines the moment they are
/// recorded, so trace memory stays bounded no matter how long the run is.
/// (The writer is opaque; `Debug` reports only its presence.)
struct LogSink(Box<dyn Write + Send>);

impl std::fmt::Debug for LogSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LogSink(..)")
    }
}

/// Materialization grain for the per-PE trace tables. Traffic patterns
/// that touch widely scattered PEs (a relay striding a million-PE
/// machine) materialize one page per touched neighborhood, so the page
/// is kept small: at 64 entries the worst case is ~3 KiB per scattered
/// PE across the three tables, versus ~50 KiB at the default grain.
const TRACE_PAGE: usize = 64;

/// Utilization accumulator for a whole job.
///
/// Per-PE state (totals, message counts, pending segments) is stored in
/// lazily materialized pages ([`sim_core::lazy::LazyVec`]): the trace is
/// *logically* dense over `num_pes`, but a PE that never records anything
/// allocates nothing — at Hopper-and-beyond PE counts the trace costs
/// memory proportional to the *touched* PEs, not the machine size. The
/// dense constructor ([`Trace::new_dense`]) is the eager twin kept for
/// differential tests.
#[derive(Debug)]
pub struct Trace {
    per_pe: LazyVec<Acc, TRACE_PAGE>,
    msgs: LazyVec<u64, TRACE_PAGE>,
    /// Aggregated timeline buckets across all PEs (None = totals only).
    /// Dense over *time*, not PEs: bounded by span / bucket width.
    bucket_ns: Option<Time>,
    buckets: Vec<Acc>,
    /// Per-PE buffered segment awaiting bucket application. The driver
    /// charges most work as back-to-back same-kind segments (scheduler
    /// overhead chained behind handler compute), so buffering one pending
    /// segment per PE and extending it in place batches the bucket-split
    /// loop across whole busy stretches. A buffer drains when a
    /// non-adjacent or different-kind charge for that PE arrives; readers
    /// ([`Trace::profile`]) overlay still-pending segments, so observable
    /// results are exact at any instant. Totals, `end`, and the optional
    /// raw log are updated eagerly and never buffered.
    pending: LazyVec<Option<(Time, Time, Kind)>, TRACE_PAGE>,
    /// Optional full event log: (pe, start, dur, kind) — the
    /// Projections-style export. Off by default (memory).
    log: Option<Vec<(PeId, Time, Time, Kind)>>,
    /// Optional streaming spill: segments written out as recorded instead
    /// of accumulating in memory ([`Trace::stream_log_to`]).
    sink: Option<LogSink>,
    end: Time,
}

impl Trace {
    /// `bucket_ns = None` records only totals (cheap); `Some(w)` also keeps
    /// an aggregated timeline with bucket width `w`.
    pub fn new(num_pes: u32, bucket_ns: Option<Time>) -> Self {
        Trace {
            per_pe: LazyVec::new(num_pes as usize, Acc::default()),
            msgs: LazyVec::new(num_pes as usize, 0),
            bucket_ns,
            buckets: Vec::new(),
            pending: LazyVec::new(num_pes as usize, None),
            log: None,
            sink: None,
            end: 0,
        }
    }

    /// Eager twin of [`Trace::new`]: per-PE storage fully materialized up
    /// front, as the trace was originally built. Observationally identical
    /// to the sparse default; kept for the differential unit tests.
    pub fn new_dense(num_pes: u32, bucket_ns: Option<Time>) -> Self {
        let mut t = Self::new(num_pes, bucket_ns);
        t.per_pe = LazyVec::new_eager(num_pes as usize, Acc::default());
        t.msgs = LazyVec::new_eager(num_pes as usize, 0);
        t.pending = LazyVec::new_eager(num_pes as usize, None);
        t
    }

    /// Pages of per-PE state currently materialized (memory diagnostics;
    /// 0 until the first PE records something).
    pub fn materialized_pages(&self) -> usize {
        self.per_pe.materialized_pages()
            + self.msgs.materialized_pages()
            + self.pending.materialized_pages()
    }

    /// Record every segment for a Projections-style per-PE export
    /// ([`Trace::export_log`]). Costs memory proportional to segment count.
    pub fn enable_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Stream every recorded segment to `w` as a `pe start_ns dur_ns kind`
    /// line, in record order. Bounded-memory alternative to
    /// [`Trace::enable_log`]: nothing accumulates in the trace. The two can
    /// be combined; a write error panics (the trace cannot silently drop
    /// segments).
    pub fn stream_log_to(&mut self, w: Box<dyn Write + Send>) {
        self.sink = Some(LogSink(w));
    }

    /// Whether a streaming sink is attached. The sink is the one trace
    /// consumer that observes the *global* record order (it writes bytes
    /// as records happen), so the parallel engine — which replays trace
    /// effects per partition — falls back to sequential execution while
    /// one is set.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Flush and drop the streaming sink, returning whether one was set.
    pub fn finish_stream(&mut self) -> bool {
        match self.sink.take() {
            Some(mut s) => {
                s.0.flush().expect("trace stream flush");
                true
            }
            None => false,
        }
    }

    /// Record `dur` ns of `kind` work on `pe` starting at `start`.
    // serial-only: appends to the shared timeline
    pub fn record(&mut self, pe: PeId, start: Time, dur: Time, kind: Kind) {
        if dur == 0 {
            return;
        }
        if let Some(log) = &mut self.log {
            log.push((pe, start, dur, kind));
        }
        if let Some(sink) = &mut self.sink {
            // panic-ok: dead spill sink = harness I/O bug, not a simulated fault
            writeln!(sink.0, "{pe} {start} {dur} {}", kind_tag(kind)).expect("trace stream write");
        }
        let acc = self.per_pe.get_mut(pe as usize);
        match kind {
            Kind::Busy => acc.busy += dur,
            Kind::Overhead => acc.ovh += dur,
            Kind::Recovery => acc.rec += dur,
            Kind::Checkpoint => acc.ckpt += dur,
        }
        self.end = self.end.max(start + dur);
        if self.bucket_ns.is_none() {
            return;
        }
        // Timeline mode: merge the charge into this PE's pending segment
        // when it extends it seamlessly (same kind, contiguous in time);
        // otherwise drain the old segment into the buckets and start a new
        // one. Splitting a merged segment across buckets distributes
        // exactly the same durations as splitting its parts one by one.
        match self.pending.get_mut(pe as usize) {
            Some((s, d, k)) if *k == kind && *s + *d == start => *d += dur,
            p => {
                if let Some((s, d, k)) = p.replace((start, dur, kind)) {
                    self.apply_to_buckets(s, d, k);
                }
            }
        }
    }

    /// Split one segment across the timeline buckets (the flush side of
    /// the per-PE buffering in [`Trace::record`]).
    fn apply_to_buckets(&mut self, start: Time, dur: Time, kind: Kind) {
        // panic-ok: only called from timeline mode, where bucket_ns is set
        let w = self.bucket_ns.expect("timeline mode");
        let mut t = start;
        let end = start + dur;
        while t < end {
            let b = (t / w) as usize;
            if b >= self.buckets.len() {
                self.buckets.resize(b + 1, Acc::default());
            }
            let seg_end = ((b as Time + 1) * w).min(end);
            let d = seg_end - t;
            match kind {
                Kind::Busy => self.buckets[b].busy += d,
                Kind::Overhead => self.buckets[b].ovh += d,
                Kind::Recovery => self.buckets[b].rec += d,
                Kind::Checkpoint => self.buckets[b].ckpt += d,
            }
            t = seg_end;
        }
    }

    pub fn count_msg(&mut self, pe: PeId) {
        *self.msgs.get_mut(pe as usize) += 1;
    }

    /// Replay one buffered [`TraceOp`].
    pub(crate) fn apply(&mut self, op: &TraceOp) {
        match *op {
            TraceOp::Record(pe, start, dur, kind) => self.record(pe, start, dur, kind),
            TraceOp::CountMsg(pe) => self.count_msg(pe),
        }
    }

    pub fn num_pes(&self) -> u32 {
        self.per_pe.len() as u32
    }

    /// Latest recorded activity.
    pub fn end_time(&self) -> Time {
        self.end
    }

    // Totals iterate only materialized pages: an untouched PE's
    // accumulator is all zeros, so skipping it cannot change an integer
    // sum (the same argument the link-table diagnostics rely on).

    pub fn total_busy(&self) -> Time {
        self.per_pe
            .iter_pages()
            .flat_map(|(_, p)| p.iter())
            .map(|a| a.busy)
            .sum()
    }

    pub fn total_overhead(&self) -> Time {
        self.per_pe
            .iter_pages()
            .flat_map(|(_, p)| p.iter())
            .map(|a| a.ovh)
            .sum()
    }

    pub fn total_recovery(&self) -> Time {
        self.per_pe
            .iter_pages()
            .flat_map(|(_, p)| p.iter())
            .map(|a| a.rec)
            .sum()
    }

    pub fn total_checkpoint(&self) -> Time {
        self.per_pe
            .iter_pages()
            .flat_map(|(_, p)| p.iter())
            .map(|a| a.ckpt)
            .sum()
    }

    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter_pages().flat_map(|(_, p)| p.iter()).sum()
    }

    pub fn pe_busy(&self, pe: PeId) -> Time {
        self.per_pe.get(pe as usize).busy
    }

    pub fn pe_overhead(&self, pe: PeId) -> Time {
        self.per_pe.get(pe as usize).ovh
    }

    /// Whole-run utilization fractions `(busy, overhead, idle)` over
    /// `span` (defaults to the recorded end time). Recovery time is folded
    /// into the overhead fraction here (it is runtime work, not idleness);
    /// use [`Trace::utilization_with_recovery`] for the split.
    pub fn utilization(&self, span: Option<Time>) -> (f64, f64, f64) {
        let (busy, ovh, rec, idle) = self.utilization_with_recovery(span);
        (busy, ovh + rec, idle)
    }

    /// Whole-run utilization fractions `(busy, overhead, recovery, idle)`.
    /// Checkpoint time is folded into the overhead fraction (it is
    /// proactive runtime work); read [`Trace::total_checkpoint`] for the
    /// split.
    pub fn utilization_with_recovery(&self, span: Option<Time>) -> (f64, f64, f64, f64) {
        let span = span.unwrap_or(self.end).max(1);
        let cap = (span as f64) * self.per_pe.len() as f64;
        let busy = self.total_busy() as f64 / cap;
        let ovh = (self.total_overhead() + self.total_checkpoint()) as f64 / cap;
        let rec = self.total_recovery() as f64 / cap;
        (busy, ovh, rec, (1.0 - busy - ovh - rec).max(0.0))
    }

    /// Render the Fig.-12-style time profile (requires timeline mode).
    pub fn profile(&self) -> Vec<ProfileRow> {
        let w = self
            .bucket_ns
            .expect("trace built without timeline buckets");
        // Overlay the per-PE pending segments that have not been drained
        // into the shared buckets yet, so the profile is exact even when
        // read mid-run.
        let mut buckets = self.buckets.clone();
        // Materialized pages come back in ascending index order, so the
        // overlay applies pending segments in exactly the per-PE index
        // order the dense representation used.
        for p in self.pending.iter_pages().flat_map(|(_, p)| p.iter()) {
            let Some((start, dur, kind)) = *p else {
                continue;
            };
            let mut t = start;
            let end = start + dur;
            while t < end {
                let b = (t / w) as usize;
                if b >= buckets.len() {
                    buckets.resize(b + 1, Acc::default());
                }
                let seg_end = ((b as Time + 1) * w).min(end);
                let d = seg_end - t;
                match kind {
                    Kind::Busy => buckets[b].busy += d,
                    Kind::Overhead => buckets[b].ovh += d,
                    Kind::Recovery => buckets[b].rec += d,
                    Kind::Checkpoint => buckets[b].ckpt += d,
                }
                t = seg_end;
            }
        }
        let cap = (w as f64) * self.per_pe.len() as f64;
        buckets
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let busy = a.busy as f64 / cap;
                let ovh = a.ovh as f64 / cap;
                let rec = a.rec as f64 / cap;
                let ckpt = a.ckpt as f64 / cap;
                ProfileRow {
                    t: i as Time * w,
                    busy_frac: busy,
                    overhead_frac: ovh,
                    recovery_frac: rec,
                    checkpoint_frac: ckpt,
                    idle_frac: (1.0 - busy - ovh - rec - ckpt).max(0.0),
                }
            })
            .collect()
    }

    /// Export the per-PE segment log in a Projections-like text format:
    /// one line per segment, `pe start_ns dur_ns busy|ovhd`, sorted by
    /// (pe, start). Requires [`Trace::enable_log`].
    pub fn export_log(&self) -> String {
        let log = self.log.as_ref().expect("trace log not enabled");
        let mut rows: Vec<&(PeId, Time, Time, Kind)> = log.iter().collect();
        rows.sort_by_key(|(pe, start, _, _)| (*pe, *start));
        let mut out = String::with_capacity(rows.len() * 24);
        out.push_str("# pe start_ns dur_ns kind\n");
        for (pe, start, dur, kind) in rows {
            let k = kind_tag(*kind);
            out.push_str(&format!("{pe} {start} {dur} {k}\n"));
        }
        out
    }

    /// ASCII rendering of the profile, one row per bucket.
    pub fn render_profile(&self) -> String {
        let mut out = String::new();
        out.push_str("      t        busy%   ovhd%   rcvy%   ckpt%   idle%\n");
        for r in self.profile() {
            out.push_str(&format!(
                "{:>10}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}\n",
                time::fmt(r.t),
                r.busy_frac * 100.0,
                r.overhead_frac * 100.0,
                r.recovery_frac * 100.0,
                r.checkpoint_frac * 100.0,
                r.idle_frac * 100.0
            ));
        }
        out
    }
}

fn kind_tag(kind: Kind) -> &'static str {
    match kind {
        Kind::Busy => "busy",
        Kind::Overhead => "ovhd",
        Kind::Recovery => "rcvy",
        Kind::Checkpoint => "ckpt",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_per_kind() {
        let mut t = Trace::new(2, None);
        t.record(0, 0, 100, Kind::Busy);
        t.record(0, 100, 50, Kind::Overhead);
        t.record(1, 0, 25, Kind::Busy);
        assert_eq!(t.total_busy(), 125);
        assert_eq!(t.total_overhead(), 50);
        assert_eq!(t.pe_busy(0), 100);
        assert_eq!(t.pe_overhead(1), 0);
        assert_eq!(t.end_time(), 150);
    }

    #[test]
    fn zero_duration_is_ignored() {
        let mut t = Trace::new(1, Some(10));
        t.record(0, 5, 0, Kind::Busy);
        assert_eq!(t.total_busy(), 0);
        assert_eq!(t.end_time(), 0);
    }

    #[test]
    fn utilization_fractions_sum_to_one() {
        let mut t = Trace::new(2, None);
        t.record(0, 0, 600, Kind::Busy);
        t.record(1, 0, 200, Kind::Overhead);
        let (b, o, i) = t.utilization(Some(1000));
        assert!((b - 0.3).abs() < 1e-9);
        assert!((o - 0.1).abs() < 1e-9);
        assert!((b + o + i - 1.0).abs() < 1e-9);
    }

    #[test]
    fn segments_split_across_buckets() {
        let mut t = Trace::new(1, Some(100));
        // 250..450 busy: buckets 2 (50ns), 3 (100ns), 4 (50ns)
        t.record(0, 250, 200, Kind::Busy);
        let p = t.profile();
        assert_eq!(p.len(), 5);
        assert!((p[2].busy_frac - 0.5).abs() < 1e-9);
        assert!((p[3].busy_frac - 1.0).abs() < 1e-9);
        assert!((p[4].busy_frac - 0.5).abs() < 1e-9);
        assert_eq!(p[0].busy_frac, 0.0);
    }

    #[test]
    fn adjacent_charges_profile_like_one_segment() {
        // Coalesced path (adjacent same-kind records) vs a single merged
        // record: bucket profiles must match exactly.
        let mut a = Trace::new(1, Some(100));
        a.record(0, 250, 80, Kind::Busy);
        a.record(0, 330, 120, Kind::Busy);
        let mut b = Trace::new(1, Some(100));
        b.record(0, 250, 200, Kind::Busy);
        let (pa, pb) = (a.profile(), b.profile());
        assert_eq!(pa.len(), pb.len());
        for (ra, rb) in pa.iter().zip(&pb) {
            assert_eq!(ra.busy_frac, rb.busy_frac);
        }
        assert_eq!(a.total_busy(), b.total_busy());
    }

    #[test]
    fn drained_and_pending_segments_both_show_in_profile() {
        let mut t = Trace::new(2, Some(100));
        // PE 0: two non-adjacent busy stretches — the first drains into
        // the shared buckets when the second arrives, the second is still
        // pending at read time. PE 1: different kind, still pending.
        t.record(0, 0, 100, Kind::Busy);
        t.record(0, 300, 100, Kind::Busy);
        t.record(1, 100, 50, Kind::Overhead);
        let p = t.profile();
        assert!((p[0].busy_frac - 0.5).abs() < 1e-9, "drained segment");
        assert!((p[3].busy_frac - 0.5).abs() < 1e-9, "pending segment");
        assert!((p[1].overhead_frac - 0.25).abs() < 1e-9, "other PE pending");
        assert_eq!(t.end_time(), 400);
    }

    #[test]
    fn kind_change_drains_the_buffer() {
        let mut t = Trace::new(1, Some(1000));
        t.record(0, 0, 100, Kind::Busy);
        t.record(0, 100, 100, Kind::Overhead); // adjacent but different kind
        t.record(0, 200, 100, Kind::Recovery);
        let p = t.profile();
        assert!((p[0].busy_frac - 0.1).abs() < 1e-9);
        assert!((p[0].overhead_frac - 0.1).abs() < 1e-9);
        assert!((p[0].recovery_frac - 0.1).abs() < 1e-9);
    }

    #[test]
    fn profile_normalizes_by_pe_count() {
        let mut t = Trace::new(4, Some(100));
        t.record(0, 0, 100, Kind::Busy);
        let p = t.profile();
        assert!((p[0].busy_frac - 0.25).abs() < 1e-9, "1 of 4 PEs busy");
        assert!((p[0].idle_frac - 0.75).abs() < 1e-9);
    }

    #[test]
    fn recovery_is_tracked_separately_but_folds_into_overhead() {
        let mut t = Trace::new(1, None);
        t.record(0, 0, 300, Kind::Busy);
        t.record(0, 300, 100, Kind::Overhead);
        t.record(0, 400, 100, Kind::Recovery);
        assert_eq!(t.total_recovery(), 100);
        assert_eq!(t.total_overhead(), 100);
        let (b, o, r, i) = t.utilization_with_recovery(Some(1000));
        assert!((b - 0.3).abs() < 1e-9);
        assert!((o - 0.1).abs() < 1e-9);
        assert!((r - 0.1).abs() < 1e-9);
        assert!((b + o + r + i - 1.0).abs() < 1e-9);
        // Legacy 3-tuple folds recovery into overhead.
        let (_, o3, _) = t.utilization(Some(1000));
        assert!((o3 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn recovery_appears_in_log_and_profile() {
        let mut t = Trace::new(1, Some(100));
        t.enable_log();
        t.record(0, 0, 50, Kind::Recovery);
        assert!(t.export_log().contains("0 0 50 rcvy"));
        let p = t.profile();
        assert!((p[0].recovery_frac - 0.5).abs() < 1e-9);
        assert!((p[0].idle_frac - 0.5).abs() < 1e-9);
        assert!(t.render_profile().contains("rcvy%"));
    }

    #[test]
    fn checkpoint_is_tracked_separately_and_folds_into_overhead() {
        let mut t = Trace::new(1, Some(100));
        t.enable_log();
        t.record(0, 0, 300, Kind::Busy);
        t.record(0, 300, 100, Kind::Checkpoint);
        assert_eq!(t.total_checkpoint(), 100);
        assert_eq!(t.total_overhead(), 0);
        let (b, o, r, i) = t.utilization_with_recovery(Some(1000));
        assert!((b - 0.3).abs() < 1e-9);
        assert!((o - 0.1).abs() < 1e-9, "checkpoint folds into overhead");
        assert_eq!(r, 0.0);
        assert!((b + o + r + i - 1.0).abs() < 1e-9);
        assert!(t.export_log().contains("0 300 100 ckpt"));
        let p = t.profile();
        assert!((p[3].checkpoint_frac - 1.0).abs() < 1e-9);
        assert!(t.render_profile().contains("ckpt%"));
    }

    #[test]
    fn message_counts() {
        let mut t = Trace::new(2, None);
        t.count_msg(0);
        t.count_msg(0);
        t.count_msg(1);
        assert_eq!(t.total_msgs(), 3);
    }

    #[test]
    fn export_log_round_trips_segments() {
        let mut t = Trace::new(2, None);
        t.enable_log();
        t.record(1, 100, 50, Kind::Busy);
        t.record(0, 30, 20, Kind::Overhead);
        t.record(0, 10, 5, Kind::Busy);
        let log = t.export_log();
        let lines: Vec<&str> = log.lines().skip(1).collect();
        assert_eq!(lines, vec!["0 10 5 busy", "0 30 20 ovhd", "1 100 50 busy"]);
    }

    #[test]
    #[should_panic(expected = "trace log not enabled")]
    fn export_without_log_panics() {
        let t = Trace::new(1, None);
        t.export_log();
    }

    /// Drive one identical charge sequence into two traces.
    fn drive(t: &mut Trace) {
        t.record(0, 0, 100, Kind::Busy);
        t.record(0, 100, 80, Kind::Busy); // adjacent: extends pending
        t.record(0, 250, 40, Kind::Overhead); // gap: drains PE 0
        t.record(3, 120, 300, Kind::Recovery); // crosses bucket boundaries
        t.record(7, 50, 25, Kind::Checkpoint);
        t.count_msg(0);
        t.count_msg(3);
        t.count_msg(3);
    }

    #[test]
    fn streaming_profile_equals_dense_profile() {
        let mut sparse = Trace::new(4096, Some(100));
        let mut dense = Trace::new_dense(4096, Some(100));
        drive(&mut sparse);
        drive(&mut dense);
        let (ps, pd) = (sparse.profile(), dense.profile());
        assert_eq!(ps.len(), pd.len());
        for (a, b) in ps.iter().zip(&pd) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.busy_frac, b.busy_frac);
            assert_eq!(a.overhead_frac, b.overhead_frac);
            assert_eq!(a.recovery_frac, b.recovery_frac);
            assert_eq!(a.checkpoint_frac, b.checkpoint_frac);
            assert_eq!(a.idle_frac, b.idle_frac);
        }
        assert_eq!(sparse.total_busy(), dense.total_busy());
        assert_eq!(sparse.total_overhead(), dense.total_overhead());
        assert_eq!(sparse.total_recovery(), dense.total_recovery());
        assert_eq!(sparse.total_checkpoint(), dense.total_checkpoint());
        assert_eq!(sparse.total_msgs(), dense.total_msgs());
        assert_eq!(sparse.end_time(), dense.end_time());
        assert!(sparse.materialized_pages() < dense.materialized_pages());
    }

    #[test]
    fn streaming_profile_overlays_pending_mid_run() {
        // Read the profile *mid-run*, while PE 0's second stretch and PE
        // 3's only stretch are still buffered (never drained): the sparse
        // overlay must match the dense one bucket-for-bucket.
        let mut sparse = Trace::new(16, Some(100));
        let mut dense = Trace::new_dense(16, Some(100));
        for t in [&mut sparse, &mut dense] {
            t.record(0, 0, 100, Kind::Busy);
            t.record(0, 350, 100, Kind::Busy); // pending at read time
            t.record(3, 120, 60, Kind::Overhead); // pending at read time
        }
        let (ps, pd) = (sparse.profile(), dense.profile());
        assert_eq!(ps.len(), pd.len());
        for (a, b) in ps.iter().zip(&pd) {
            assert_eq!(a.busy_frac, b.busy_frac);
            assert_eq!(a.overhead_frac, b.overhead_frac);
        }
        // The pending segments really were part of the read.
        assert!(ps[3].busy_frac > 0.0);
        assert!(ps[1].overhead_frac > 0.0);
    }

    #[test]
    fn untouched_pes_allocate_nothing() {
        // Inert plan: a trace sized for a million PEs where only a handful
        // record anything must materialize pages for those PEs alone.
        let mut t = Trace::new(1_000_000, Some(1000));
        assert_eq!(
            t.materialized_pages(),
            0,
            "construction allocates no per-PE state"
        );
        t.record(5, 0, 100, Kind::Busy);
        t.count_msg(5);
        // One page each for per_pe, msgs, pending — the other ~999k PEs
        // stay untouched.
        assert_eq!(t.materialized_pages(), 3);
        assert_eq!(t.pe_busy(999_999), 0);
        assert_eq!(t.pe_overhead(123_456), 0);
        assert_eq!(t.materialized_pages(), 3, "reads never materialize");
        assert_eq!(t.total_busy(), 100);
        assert_eq!(t.total_msgs(), 1);
    }

    #[test]
    fn stream_log_spills_segments_in_record_order() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut t = Trace::new(8, None);
        t.enable_log();
        t.stream_log_to(Box::new(buf.clone()));
        t.record(1, 100, 50, Kind::Busy);
        t.record(0, 30, 20, Kind::Overhead);
        t.record(1, 150, 10, Kind::Recovery);
        assert!(t.finish_stream());
        assert!(!t.finish_stream(), "sink is gone after finishing");
        let spilled = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // Record order, not sorted — streaming never buffers.
        assert_eq!(spilled, "1 100 50 busy\n0 30 20 ovhd\n1 150 10 rcvy\n");
        // The in-memory log (sorted export) saw the same segments.
        let log = t.export_log();
        assert!(log.contains("0 30 20 ovhd"));
        assert!(log.contains("1 100 50 busy"));
        assert!(log.contains("1 150 10 rcvy"));
    }

    #[test]
    fn render_contains_rows() {
        let mut t = Trace::new(1, Some(1000));
        t.record(0, 0, 500, Kind::Busy);
        t.record(0, 500, 250, Kind::Overhead);
        let s = t.render_profile();
        assert!(s.contains("busy%"));
        assert!(s.contains("50.0"));
        assert!(s.contains("25.0"));
    }
}
