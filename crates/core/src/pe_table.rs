//! Lazily materialized per-PE scheduler state (DESIGN.md §13).
//!
//! A whole-machine job at Hopper scale (153,216 PEs) or beyond must not
//! pay O(num_pes) heap structures at construction: the driver's per-PE
//! [`PeState`] — scheduler queue, parked machine events, deterministic
//! RNG, Charm element tables — is built page-by-page the first time a PE
//! is actually touched. An untouched PE costs one page-table slot
//! (`Option<Box<[PeState]>>` = 8 bytes amortized over [`PE_PAGE_LEN`]
//! neighbors), and reads through `&self` see a shared pristine flyweight
//! that is field-for-field identical to a fresh state.
//!
//! Correctness hinges on materialization being *pure*: a fresh
//! [`PeState`] is a function of `(seed, pe)` only (the RNG is
//! `DetRng::derive(seed, pe)`, every container starts empty), so whether
//! a PE is materialized at construction or on first touch is
//! unobservable — the same invariant the fabric's `LazyVec` tables rely
//! on, which is what keeps every pinned virtual time bit-identical.

use crate::cluster::PeState;

/// PEs per lazily materialized page. [`PeState`] is a few hundred bytes
/// of headers, so pages are kept small enough that a sparse job touching
/// scattered PEs does not materialize large dead spans around each.
pub const PE_PAGE_LEN: usize = 16;

/// Paged flyweight table of per-PE driver state.
pub(crate) struct PeTable {
    pages: Vec<Option<Box<[PeState]>>>,
    len: usize,
    seed: u64,
    /// Shared pristine state returned for `&self` reads of untouched PEs.
    /// Identical to any fresh state except for the (private, never read
    /// through `&self`) RNG stream, which is derived with a sentinel
    /// index so accidental use is loud in differential runs.
    fallback: PeState,
}

impl PeTable {
    pub(crate) fn new(num_pes: u32, seed: u64) -> Self {
        let len = num_pes as usize;
        PeTable {
            pages: (0..len.div_ceil(PE_PAGE_LEN)).map(|_| None).collect(),
            len,
            seed,
            fallback: PeState::fresh(seed, u64::MAX),
        }
    }

    /// Shared view of a PE's state; untouched PEs read as the pristine
    /// flyweight (empty queue, `Box<()>` user state, default Charm
    /// tables — exactly what a fresh state would contain).
    pub(crate) fn get(&self, pe: usize) -> &PeState {
        // panic-ok: an out-of-range PE id is a driver bug, not a runtime fault
        assert!(pe < self.len, "PE {pe} out of range ({} PEs)", self.len);
        match self.pages[pe / PE_PAGE_LEN]
            .as_ref()
            .and_then(|p| p.get(pe % PE_PAGE_LEN))
        {
            Some(st) => st,
            None => &self.fallback,
        }
    }

    /// Mutable access; materializes the PE's page on first touch.
    pub(crate) fn get_mut(&mut self, pe: usize) -> &mut PeState {
        // panic-ok: an out-of-range PE id is a driver bug, not a runtime fault
        assert!(pe < self.len, "PE {pe} out of range ({} PEs)", self.len);
        let pi = pe / PE_PAGE_LEN;
        if self.pages[pi].is_none() {
            let base = pi * PE_PAGE_LEN;
            let used = PE_PAGE_LEN.min(self.len - base);
            let page: Vec<PeState> = (0..used)
                .map(|i| PeState::fresh(self.seed, (base + i) as u64))
                .collect();
            self.pages[pi] = Some(page.into_boxed_slice());
        }
        // panic-ok: page materialized just above
        &mut self.pages[pi].as_mut().unwrap()[pe % PE_PAGE_LEN]
    }

    /// Number of materialized pages (memory diagnostics).
    pub(crate) fn materialized_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Materialize everything and hand out the dense state vector (the
    /// parallel engine partitions PE state by ownership). The table is
    /// left empty; [`PeTable::restore_dense`] puts the states back.
    pub(crate) fn take_dense(&mut self) -> Vec<PeState> {
        let mut out = Vec::with_capacity(self.len);
        for pi in 0..self.pages.len() {
            let base = pi * PE_PAGE_LEN;
            let used = PE_PAGE_LEN.min(self.len - base);
            match self.pages[pi].take() {
                Some(page) => out.extend(page.into_vec()),
                None => out.extend((0..used).map(|i| PeState::fresh(self.seed, (base + i) as u64))),
            }
        }
        out
    }

    /// Re-adopt a dense state vector from [`PeTable::take_dense`]
    /// (everything stays materialized — the states carry live queues).
    pub(crate) fn restore_dense(&mut self, pes: Vec<PeState>) {
        // panic-ok: a short dense vector is a driver bug, not a runtime fault
        assert_eq!(pes.len(), self.len, "dense PE vector length mismatch");
        let mut it = pes.into_iter();
        for pi in 0..self.pages.len() {
            let base = pi * PE_PAGE_LEN;
            let used = PE_PAGE_LEN.min(self.len - base);
            let page: Vec<PeState> = it.by_ref().take(used).collect();
            self.pages[pi] = Some(page.into_boxed_slice());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_pes_materialize_nothing() {
        let t = PeTable::new(1_000_000, 7);
        assert_eq!(t.materialized_pages(), 0);
        // Shared reads see pristine state and allocate nothing.
        assert_eq!(t.get(999_999).busy_until, 0);
        assert!(t.get(0).ft_local.is_none());
        assert_eq!(t.materialized_pages(), 0);
    }

    #[test]
    fn first_touch_materializes_one_page() {
        let mut t = PeTable::new(10_000, 7);
        t.get_mut(4_000).busy_until = 55;
        assert_eq!(t.materialized_pages(), 1);
        assert_eq!(t.get(4_000).busy_until, 55);
        // Page neighbors are fresh, other pages stay cold.
        assert_eq!(t.get(4_001).busy_until, 0);
        assert_eq!(t.materialized_pages(), 1);
    }

    #[test]
    fn dense_round_trip_preserves_state() {
        let mut t = PeTable::new(130, 9);
        t.get_mut(7).busy_until = 70;
        t.get_mut(128).busy_until = 1280;
        let dense = t.take_dense();
        assert_eq!(dense.len(), 130);
        assert_eq!(dense[7].busy_until, 70);
        assert_eq!(dense[128].busy_until, 1280);
        assert_eq!(dense[64].busy_until, 0);
        t.restore_dense(dense);
        assert_eq!(t.get(7).busy_until, 70);
        assert_eq!(t.get(128).busy_until, 1280);
        assert_eq!(t.materialized_pages(), 130usize.div_ceil(PE_PAGE_LEN));
    }

    #[test]
    fn materialized_rng_matches_eager_derivation() {
        // The whole flyweight rests on fresh state being a pure function
        // of (seed, pe): the paged RNG must equal the eager one.
        let mut t = PeTable::new(256, 0xC0FFEE);
        let mut eager = sim_core::DetRng::derive(0xC0FFEE, 200);
        let lazy = t.get_mut(200).rng_mut();
        for _ in 0..16 {
            assert_eq!(lazy.next_u64(), eager.next_u64());
        }
    }
}
