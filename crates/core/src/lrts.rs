//! The Lower-level RunTime System (LRTS) interface — paper §III-B.
//!
//! This is the "concise specification of the minimum requirements to
//! implement the CHARM++ software stack" on a new network. The three
//! essential functions map directly:
//!
//! | Paper                   | Here                              |
//! |-------------------------|-----------------------------------|
//! | `LrtsInit`              | [`MachineLayer::init`]            |
//! | `LrtsSyncSend`          | [`MachineLayer::sync_send`]       |
//! | `LrtsNetworkEngine`     | [`MachineLayer::on_event`] (the progress engine, driven by simulation events instead of a poll loop) |
//! | `LrtsCreatePersistent`  | [`MachineLayer::create_persistent`] |
//! | `LrtsSendPersistentMsg` | [`MachineLayer::send_persistent`] |
//!
//! A machine layer is a state machine: `sync_send` starts a protocol,
//! `on_event` advances it when the simulated NIC raises completions, and
//! delivery back into the Converse scheduler happens through
//! [`crate::cluster::MachineCtx::deliver_now`]. All CPU time a layer burns
//! must be charged via [`crate::cluster::MachineCtx::charge_overhead`] so it
//! shows up as runtime overhead in traces (the black part of the paper's
//! Fig. 12).

use crate::cluster::MachineCtx;
use crate::msg::PeId;
use bytes::Bytes;
use std::any::Any;

/// Handle for a persistent communication channel (paper §IV-A). Allocated
/// by the driver; bound to machine-layer state when the create command is
/// processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PersistentHandle(pub u64);

/// A Converse machine layer.
pub trait MachineLayer {
    /// Short name used in reports (e.g. `"uGNI"`, `"MPI"`).
    fn name(&self) -> &'static str;

    /// Downcast access, so harnesses can read layer-specific stats after a
    /// run (`cluster.layer_mut::<UgniLayer>()`).
    fn as_any(&mut self) -> &mut dyn Any;

    /// `LrtsInit`: one-time setup (mailboxes, CQs, pools).
    fn init(&mut self, ctx: &mut MachineCtx);

    /// `LrtsSyncSend`: non-blocking send of an encoded [`crate::msg::Envelope`]
    /// from `src_pe` to `dst_pe`. "The message is either sent immediately
    /// to network or buffered."
    fn sync_send(&mut self, ctx: &mut MachineCtx, src_pe: PeId, dst_pe: PeId, msg: Bytes);

    /// Progress engine: a machine-specific event fired (SMSG arrival, CQ
    /// completion, retry timer, ...). Events are delivered when the owning
    /// PE is free, modeling progress made between handler executions.
    fn on_event(&mut self, ctx: &mut MachineCtx, pe: PeId, ev: Box<dyn Any + Send>);

    /// Conservative lookahead (ns) for parallel execution: a lower bound on
    /// the virtual latency of any cross-node interaction this layer can
    /// produce. The parallel driver sizes its bounded time windows with
    /// this; correctness never depends on it (the serial phase orders all
    /// layer work canonically), so a conservative 1 is always safe.
    fn lookahead(&self) -> sim_core::Time {
        1
    }

    /// `LrtsCreatePersistent`: set up a persistent channel from `src_pe`
    /// to `dst_pe` with a pre-allocated receive buffer of `max_bytes`.
    /// Layers without persistent support ignore this; subsequent
    /// [`MachineLayer::send_persistent`] calls then fall back to
    /// [`MachineLayer::sync_send`].
    fn create_persistent(
        &mut self,
        _ctx: &mut MachineCtx,
        _src_pe: PeId,
        _dst_pe: PeId,
        _max_bytes: u64,
        _handle: PersistentHandle,
    ) {
    }

    /// `LrtsSendPersistentMsg`. Default: ordinary send.
    fn send_persistent(
        &mut self,
        ctx: &mut MachineCtx,
        _handle: PersistentHandle,
        src_pe: PeId,
        dst_pe: PeId,
        msg: Bytes,
    ) {
        self.sync_send(ctx, src_pe, dst_pe, msg);
    }

    /// A node entered a crash window: its NIC-side state (armed progress
    /// polls, outbound backlogs, half-open transactions rooted on its PEs)
    /// dies with the node's memory. Without this the layer's poll
    /// coalescing can point at progress events the runtime dropped on the
    /// dead node's floor, wedging the connection after a restart. Layers
    /// with no per-node progress state can keep the no-op default.
    fn node_fault(&mut self, _ctx: &mut MachineCtx, _node: gemini_net::NodeId) {}
}
