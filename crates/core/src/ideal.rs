//! An idealized machine layer: constant latency, zero overhead.
//!
//! Used by the core runtime's own tests (network-independent logic) and as
//! the "perfect network" ablation baseline — any gap between a real machine
//! layer and [`IdealLayer`] is, by construction, communication cost.

use crate::cluster::MachineCtx;
use crate::lrts::MachineLayer;
use crate::msg::PeId;
use bytes::Bytes;
use sim_core::Time;
use std::any::Any;

/// Delivers every message `latency` ns after it is sent, free of CPU cost.
pub struct IdealLayer {
    latency: Time,
    pub msgs: u64,
    pub bytes: u64,
}

impl IdealLayer {
    pub fn new(latency: Time) -> Self {
        IdealLayer {
            latency,
            msgs: 0,
            bytes: 0,
        }
    }
}

impl MachineLayer for IdealLayer {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn init(&mut self, _ctx: &mut MachineCtx) {}

    fn lookahead(&self) -> Time {
        // Every delivery lands exactly one latency after the send.
        self.latency.max(1)
    }

    fn sync_send(&mut self, ctx: &mut MachineCtx, _src_pe: PeId, dst_pe: PeId, msg: Bytes) {
        self.msgs += 1;
        self.bytes += msg.len() as u64;
        ctx.count_send(msg.len() as u64); // charge-ok: ideal layer is zero-cost
        ctx.deliver_at(ctx.now() + self.latency, dst_pe, msg); // charge-ok: zero-cost by design
    }

    fn on_event(&mut self, _ctx: &mut MachineCtx, _pe: PeId, _ev: Box<dyn Any + Send>) {
        unreachable!("IdealLayer schedules no machine events");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterCfg};
    use crate::msg::wire;

    #[test]
    fn constant_latency_delivery() {
        let mut c = Cluster::new(ClusterCfg::new(2, 2), Box::new(IdealLayer::new(777)));
        let h = c.register_handler(|ctx, env| {
            if ctx.pe() == 1 {
                // Arrived one latency after the send instant.
                assert!(ctx.now() >= 777);
                ctx.stop();
            } else {
                ctx.send(1, env.handler, wire::pack_u64s(&[1]));
            }
        });
        c.inject(0, 0, h, Bytes::new());
        let r = c.run();
        assert!(r.stopped_early);
        let layer: &mut IdealLayer = c.layer_mut();
        assert_eq!(layer.msgs, 1);
    }
}
