//! Quiescence detection (QD).
//!
//! Charm++ programs with dynamic task graphs (like the paper's N-Queens)
//! detect completion through quiescence: the moment when no handler is
//! running and no message is in flight anywhere. This module implements
//! the classic two-wave counting algorithm Converse uses: a coordinator
//! repeatedly collects `(sent, delivered)` totals from all PEs over the
//! spanning tree; quiescence is declared when two consecutive waves agree
//! and sends equal deliveries.
//!
//! The DES driver can also detect drain trivially (empty event queue), but
//! applications inside the simulation cannot see that — QD is the *in
//! band* mechanism, exactly like on a real machine, and it lets a program
//! start a next phase (or stop) from within.

use crate::cluster::{Cluster, PeCtx};
use crate::msg::{wire, HandlerId, PeId};
use bytes::Bytes;
use sim_core::Time;

/// Per-PE QD state, updated by the driver on every send/delivery.
#[derive(Debug, Default, Clone)]
pub struct QdPe {
    pub sent: u64,
    pub delivered: u64,
}

/// The coordinator's view of one collection wave.
#[derive(Debug, Default)]
struct Wave {
    reported: u32,
    sent: u64,
    delivered: u64,
}

/// QD coordinator state (lives on PE 0's user state side table).
#[derive(Debug)]
pub struct QdState {
    /// Client to notify on quiescence.
    client: (HandlerId, PeId),
    wave: Wave,
    prev: Option<(u64, u64)>,
    /// Poll period between waves.
    period: Time,
    armed: bool,
}

/// Handle returned by [`register`]; kick it with [`Qd::start`].
#[derive(Debug, Clone, Copy)]
pub struct Qd {
    collect: HandlerId,
    report: HandlerId,
}

const QD_COORDINATOR: PeId = 0;

/// Install the QD handlers on a cluster. `client` is invoked on
/// `client_pe` when quiescence is detected. Must be called before `run`.
pub fn register(cluster: &mut Cluster, client: HandlerId, client_pe: PeId, period: Time) -> Qd {
    // Handler: coordinator asks every PE for its counters.
    // thread-ok: write-once handler-id cell, set before the run starts.
    let report_cell = std::sync::Arc::new(std::sync::OnceLock::new());
    let rc = report_cell.clone();
    let collect = cluster.register_handler(move |ctx, _env| {
        // Drain any coalescing AM buffers first: a buffered constituent is
        // counted as sent but not yet delivered, so flushing here both
        // prevents a false quiescence verdict and guarantees buffered AMs
        // cannot outlive an idle machine (ISSUE flush trigger (c)).
        ctx.am_flush_all();
        let (sent, delivered) = ctx.qd_counters();
        ctx.send(
            QD_COORDINATOR,
            *rc.get().expect("report handler registered"),
            wire::pack_u64s(&[sent, delivered]),
        );
    });
    let collect_copy = collect;
    let report = cluster.register_handler(move |ctx, env| {
        let sent = wire::unpack_u64(&env.payload, 0);
        let delivered = wire::unpack_u64(&env.payload, 1);
        let num_pes = ctx.num_pes();
        let decided = {
            let qd = ctx.qd_state();
            qd.wave.reported += 1;
            qd.wave.sent += sent;
            qd.wave.delivered += delivered;
            if qd.wave.reported < num_pes {
                None
            } else {
                let totals = (qd.wave.sent, qd.wave.delivered);
                qd.wave = Wave::default();
                let stable = qd.prev == Some(totals) && totals.0 == totals.1;
                qd.prev = Some(totals);
                Some(stable)
            }
        };
        match decided {
            Some(true) => {
                let qd = ctx.qd_state();
                qd.armed = false;
                let client = qd.client;
                ctx.send(client.1, client.0, Bytes::new());
            }
            Some(false) => {
                // Schedule the next wave after the poll period.
                let period = ctx.qd_state().period;
                for pe in 0..num_pes {
                    ctx.send_after(period, pe, collect_copy, Bytes::new());
                }
            }
            None => {}
        }
    });
    report_cell.set(report).expect("set once");
    cluster.install_qd(
        QdState {
            client: (client, client_pe),
            wave: Wave::default(),
            prev: None,
            period,
            armed: false,
        },
        &[collect, report, client],
    );
    Qd { collect, report }
}

impl Qd {
    /// Begin watching for quiescence (call from a handler, typically right
    /// after seeding the work).
    pub fn start(&self, ctx: &mut PeCtx) {
        {
            let qd = ctx.qd_state();
            if qd.armed {
                return;
            }
            qd.armed = true;
            qd.prev = None;
        }
        let num_pes = ctx.num_pes();
        let period = ctx.qd_state().period;
        for pe in 0..num_pes {
            ctx.send_after(period, pe, self.collect, Bytes::new());
        }
    }

    /// The internal report handler (exposed for tests).
    pub fn report_handler(&self) -> HandlerId {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterCfg};
    use crate::ideal::IdealLayer;

    /// A diffusion: each task spawns children until depth 0; QD must fire
    /// only after the whole tree has drained.
    #[test]
    fn qd_fires_after_tree_drains() {
        let mut c = Cluster::new(ClusterCfg::new(8, 4), Box::new(IdealLayer::new(800)));
        c.init_user(|_| 0u64); // tasks executed
        let spawn = c.register_handler(|ctx, env| {
            *ctx.user::<u64>() += 1;
            let depth = wire::unpack_u64(&env.payload, 0);
            if depth > 0 {
                for _ in 0..2 {
                    let n = ctx.num_pes() as u64;
                    let dst = ctx.rng().below(n) as u32;
                    ctx.send(dst, env.handler, wire::pack_u64s(&[depth - 1]));
                }
            }
        });
        let done = c.register_handler(move |ctx, _| {
            // Quiescence: all 2^7-1... = 2^(d+1)-1 tasks must have run.
            ctx.stop();
        });
        let qd = register(&mut c, done, 0, 5_000);
        let kick = c.register_handler(move |ctx, _| {
            ctx.send(0, spawn, wire::pack_u64s(&[6]));
            qd.start(ctx);
        });
        c.inject(0, 0, kick, Bytes::new());
        let r = c.run();
        assert!(r.stopped_early, "QD never fired");
        let total: u64 = (0..8).map(|pe| *c.user::<u64>(pe)).sum();
        assert_eq!(total, (1 << 7) - 1, "QD fired before the tree drained");
    }

    /// QD on an already-quiet system fires promptly.
    #[test]
    fn qd_fires_on_idle_system() {
        let mut c = Cluster::new(ClusterCfg::new(4, 2), Box::new(IdealLayer::new(500)));
        let done = c.register_handler(|ctx, _| ctx.stop());
        let qd = register(&mut c, done, 0, 2_000);
        let kick = c.register_handler(move |ctx, _| qd.start(ctx));
        c.inject(0, 3, kick, Bytes::new());
        let r = c.run();
        assert!(r.stopped_early);
    }

    /// Two consecutive agreeing waves are required: a system that is
    /// momentarily quiet between bursts must not trigger QD.
    #[test]
    fn qd_survives_bursty_traffic() {
        let mut c = Cluster::new(ClusterCfg::new(4, 2), Box::new(IdealLayer::new(500)));
        c.init_user(|_| 0u64);
        // A chain with long gaps (timers) between hops: the network is
        // quiet during each gap, but messages are still logically pending.
        let chain = c.register_handler(|ctx, env| {
            *ctx.user::<u64>() += 1;
            let hops = wire::unpack_u64(&env.payload, 0);
            if hops > 0 {
                // Delay longer than the QD period.
                ctx.send_after(
                    30_000,
                    (ctx.pe() + 1) % 4,
                    env.handler,
                    wire::pack_u64s(&[hops - 1]),
                );
            }
        });
        let done = c.register_handler(move |ctx, _| {
            let done_count = *ctx.user::<u64>();
            let _ = done_count;
            ctx.stop();
        });
        let qd = register(&mut c, done, 0, 5_000);
        let kick = c.register_handler(move |ctx, _| {
            ctx.send(0, chain, wire::pack_u64s(&[4]));
            qd.start(ctx);
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        let total: u64 = (0..4).map(|pe| *c.user::<u64>(pe)).sum();
        assert_eq!(total, 5, "QD fired before the delayed chain completed");
    }
}
