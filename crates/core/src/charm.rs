//! The Charm layer: indexed collections of migratable objects (chare
//! arrays) with asynchronous entry-method invocation, spanning-tree
//! broadcast, and tree reductions (paper §III-A).
//!
//! Objects are `Box<dyn Any>` states owned by the runtime and placed
//! round-robin over PEs. An entry-method send is an ordinary Converse
//! message to the owning PE carrying a small Charm sub-header; handler 0
//! ([`CHARM_HANDLER`]) decodes it and invokes the registered entry function
//! on the addressed element — active messages, exactly as the paper
//! describes the model.

use crate::cluster::{Cluster, PeCtx};
use crate::msg::{Envelope, HandlerId, PeId};
use bytes::{BufMut, Bytes, BytesMut};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// The reserved Converse handler that dispatches all Charm traffic.
pub const CHARM_HANDLER: HandlerId = HandlerId(0);

/// Fan-out of the PE spanning tree used for broadcast and reductions.
pub const TREE_ARITY: u32 = 4;

/// A chare array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub u16);

/// An entry method of some array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryId(pub u16);

/// Reduction combiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    Sum,
    Min,
    Max,
}

impl RedOp {
    fn combine(self, acc: &mut [f64], vals: &[f64]) {
        assert_eq!(acc.len(), vals.len(), "reduction arity mismatch");
        for (a, v) in acc.iter_mut().zip(vals) {
            match self {
                RedOp::Sum => *a += v,
                RedOp::Min => *a = a.min(*v),
                RedOp::Max => *a = a.max(*v),
            }
        }
    }

    fn id(self) -> u8 {
        match self {
            RedOp::Sum => 0,
            RedOp::Min => 1,
            RedOp::Max => 2,
        }
    }

    fn from_id(b: u8) -> Self {
        match b {
            0 => RedOp::Sum,
            1 => RedOp::Min,
            2 => RedOp::Max,
            _ => panic!("bad reduction op {b}"),
        }
    }
}

type EntryFn = Arc<dyn Fn(&mut PeCtx, &mut dyn Any, u64, Bytes) + Send + Sync>;

struct ArrayDef {
    #[allow(dead_code)]
    name: String,
    num_elems: u64,
    /// Reduction client: (handler, pe) receiving finished reductions.
    red_client: Option<(HandlerId, PeId)>,
    /// PEs owning at least one element, sorted. The reduction tree spans
    /// exactly these (a PE with no elements never contributes, so it must
    /// not appear in the tree).
    participants: Vec<PeId>,
}

struct EntryDef {
    array: ArrayId,
    f: EntryFn,
}

/// Element routing indirection: an element whose round-robin home is PE
/// `h` currently lives on `route.get(h)`. Identity until a
/// redistribute-mode crash recovery folds a dead PE's elements onto the
/// PE holding their buddy checkpoint — so only the (rare) redirected
/// homes are stored, not an O(num_pes) identity vector. A million-PE
/// machine that never crashes routes through an empty map.
#[derive(Default, Debug)]
pub(crate) struct RouteMap {
    overrides: std::collections::BTreeMap<PeId, PeId>,
}

impl RouteMap {
    /// Where the element homed at `h` currently lives.
    pub(crate) fn get(&self, home: PeId) -> PeId {
        self.overrides.get(&home).copied().unwrap_or(home)
    }

    /// Redirect `home`'s elements to `dst` (identity writes erase the
    /// override, keeping the map proportional to live redirections).
    pub(crate) fn set(&mut self, home: PeId, dst: PeId) {
        if dst == home {
            self.overrides.remove(&home);
        } else {
            self.overrides.insert(home, dst);
        }
    }
}

/// Global (pre-run) Charm registrations.
#[derive(Default)]
pub struct CharmRegistry {
    arrays: Vec<ArrayDef>,
    entries: Vec<EntryDef>,
    /// Element routing indirection (see [`RouteMap`]).
    pub(crate) route: RouteMap,
    /// True once any element has moved off its home PE: broadcasts then
    /// switch from the PE spanning tree (which may contain dead PEs) to
    /// direct sends from the root.
    pub(crate) relocated: bool,
}

impl CharmRegistry {
    /// Fold every participant list through [`CharmRegistry::route`] after a
    /// redistribute recovery: dead PEs' entries collapse onto the PEs that
    /// adopted their elements.
    pub(crate) fn remap_participants(&mut self) {
        for a in &mut self.arrays {
            for p in &mut a.participants {
                *p = self.route.get(*p);
            }
            a.participants.sort_unstable();
            a.participants.dedup();
        }
    }
}

/// Per-PE Charm runtime state.
#[derive(Default)]
pub struct CharmPe {
    /// Element states; `Option` so dispatch can take one out while the
    /// entry runs (an entry may send to a co-located element).
    elements: HashMap<(u16, u64), Option<Box<dyn Any + Send>>>,
    /// Elements living on this PE, per array.
    local_count: HashMap<u16, u64>,
    /// In-flight reduction partials keyed by (array, wave).
    reductions: HashMap<(u16, u64), RedState>,
    /// Next local contribution wave per array.
    local_wave: HashMap<u16, u64>,
}

struct RedState {
    contributed: u64,
    children_reported: u32,
    acc: Option<Vec<f64>>,
    op: RedOp,
}

impl CharmPe {
    /// Number of elements of `aid` on this PE.
    pub fn local_elements(&self, aid: ArrayId) -> u64 {
        self.local_count.get(&aid.0).copied().unwrap_or(0)
    }

    /// Drop all volatile Charm state (node crash, or rollback before a
    /// checkpoint restore).
    pub(crate) fn wipe(&mut self) {
        self.elements.clear();
        self.local_count.clear();
        self.reductions.clear();
        self.local_wave.clear();
    }

    /// Sorted `(array, index)` keys of every element on this PE
    /// (checkpoint order must not depend on hash order).
    pub(crate) fn element_keys(&self) -> Vec<(u16, u64)> {
        let mut keys: Vec<(u16, u64)> = self.elements.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Borrow an element's state for checkpoint serialization.
    pub(crate) fn element_state(&self, key: (u16, u64)) -> &dyn Any {
        match self.elements.get(&key) {
            Some(Some(state)) => state.as_ref(),
            // panic-ok: checkpointing an unregistered element is a code bug
            _ => panic!("checkpoint of missing element {key:?}"),
        }
    }

    /// Install (or adopt) an element restored from a checkpoint.
    pub(crate) fn insert_element(&mut self, key: (u16, u64), state: Box<dyn Any + Send>) {
        if self.elements.insert(key, Some(state)).is_none() {
            *self.local_count.entry(key.0).or_insert(0) += 1;
        }
    }

    /// Sorted per-array local reduction wave counters (the app-level
    /// in-flight sequence numbers a checkpoint must capture).
    pub(crate) fn wave_snapshot(&self) -> Vec<(u16, u64)> {
        let mut waves: Vec<(u16, u64)> =
            self.local_wave.iter().map(|(aid, w)| (*aid, *w)).collect();
        waves.sort_unstable();
        waves
    }

    /// Merge a checkpointed wave counter back in. Max-merge: when a PE
    /// adopts a dead PE's elements their counters agree at the checkpoint's
    /// quiescent point, and max keeps a later local value from regressing.
    pub(crate) fn merge_wave(&mut self, aid: u16, wave: u64) {
        let w = self.local_wave.entry(aid).or_insert(0);
        *w = (*w).max(wave);
    }

    /// Discard in-flight reduction partials (rollback: contributions will
    /// be regenerated by replay from the checkpoint).
    pub(crate) fn clear_reductions(&mut self) {
        self.reductions.clear();
    }
}

/// Round-robin element placement.
pub fn home_pe(idx: u64, num_pes: u32) -> PeId {
    (idx % num_pes as u64) as PeId
}

fn tree_parent(pe: PeId) -> PeId {
    (pe - 1) / TREE_ARITY
}

fn tree_children(pe: PeId, num_pes: u32) -> impl Iterator<Item = PeId> {
    (1..=TREE_ARITY)
        .map(move |i| pe * TREE_ARITY + i)
        .filter(move |&c| c < num_pes)
}

// ---- wire format of Charm sub-messages (Envelope payload) ----
const OP_ENTRY: u8 = 0;
const OP_BCAST: u8 = 1;
const OP_REDUCE: u8 = 2;
/// Broadcast leg sent point-to-point from the root to one participating
/// PE (no tree forwarding at the receiver). Used after a redistribute
/// recovery, when the PE spanning tree may run through dead PEs.
const OP_BCAST_DIRECT: u8 = 3;

fn enc_entry(aid: ArrayId, entry: EntryId, idx: u64, user: &Bytes) -> Bytes {
    let mut b = BytesMut::with_capacity(13 + user.len());
    b.put_u8(OP_ENTRY);
    b.put_u16(aid.0);
    b.put_u16(entry.0);
    b.put_u64(idx);
    b.put_slice(user);
    b.freeze()
}

fn enc_bcast(aid: ArrayId, entry: EntryId, user: &Bytes) -> Bytes {
    let mut b = BytesMut::with_capacity(5 + user.len());
    b.put_u8(OP_BCAST);
    b.put_u16(aid.0);
    b.put_u16(entry.0);
    b.put_slice(user);
    b.freeze()
}

fn enc_bcast_direct(aid: ArrayId, entry: EntryId, user: &Bytes) -> Bytes {
    let mut b = BytesMut::with_capacity(5 + user.len());
    b.put_u8(OP_BCAST_DIRECT);
    b.put_u16(aid.0);
    b.put_u16(entry.0);
    b.put_slice(user);
    b.freeze()
}

fn enc_reduce(aid: ArrayId, wave: u64, op: RedOp, vals: &[f64]) -> Bytes {
    let mut b = BytesMut::with_capacity(14 + vals.len() * 8);
    b.put_u8(OP_REDUCE);
    b.put_u16(aid.0);
    b.put_u64(wave);
    b.put_u8(op.id());
    for v in vals {
        b.put_f64_le(*v);
    }
    b.freeze()
}

impl Cluster {
    /// Create a chare array of `n` elements; `ctor(idx)` builds each
    /// element's state on its home PE.
    pub fn create_array<T: Send + 'static>(
        &mut self,
        name: &str,
        n: u64,
        mut ctor: impl FnMut(u64) -> T,
    ) -> ArrayId {
        let aid = ArrayId(self.charm.arrays.len() as u16);
        let num_pes = self.cfg.num_pes;
        let mut participants: Vec<PeId> = Vec::new();
        for idx in 0..n {
            let pe = home_pe(idx, num_pes);
            let st = &mut self.pes.get_mut(pe as usize).charm;
            st.elements.insert((aid.0, idx), Some(Box::new(ctor(idx))));
            *st.local_count.entry(aid.0).or_insert(0) += 1;
            if !participants.contains(&pe) {
                participants.push(pe);
            }
        }
        participants.sort_unstable();
        self.charm.arrays.push(ArrayDef {
            name: name.to_string(),
            num_elems: n,
            red_client: None,
            participants,
        });
        aid
    }

    /// Register an entry method for `aid`. The closure receives the PE
    /// context, the element state, the element index, and the payload.
    pub fn register_entry<T: Send + 'static>(
        &mut self,
        aid: ArrayId,
        f: impl Fn(&mut PeCtx, &mut T, u64, Bytes) + Send + Sync + 'static,
    ) -> EntryId {
        let eid = EntryId(self.charm.entries.len() as u16);
        self.charm.entries.push(EntryDef {
            array: aid,
            f: Arc::new(move |ctx, any, idx, payload| {
                let t = any.downcast_mut::<T>().expect("element state type");
                f(ctx, t, idx, payload)
            }),
        });
        eid
    }

    /// Route finished reductions of `aid` to `(handler, pe)`.
    pub fn set_reduction_client(&mut self, aid: ArrayId, handler: HandlerId, pe: PeId) {
        self.charm.arrays[aid.0 as usize].red_client = Some((handler, pe));
    }

    /// Number of elements in an array.
    pub fn array_len(&self, aid: ArrayId) -> u64 {
        self.charm.arrays[aid.0 as usize].num_elems
    }

    /// Kick an entry method from outside the simulation (mainchare-style),
    /// at virtual time `at`.
    pub fn inject_entry(
        &mut self,
        at: sim_core::Time,
        aid: ArrayId,
        idx: u64,
        entry: EntryId,
        payload: Bytes,
    ) {
        let pe = self.charm.route.get(home_pe(idx, self.cfg.num_pes));
        self.inject(at, pe, CHARM_HANDLER, enc_entry(aid, entry, idx, &payload));
    }

    /// Inject a broadcast from outside the simulation.
    pub fn inject_broadcast(
        &mut self,
        at: sim_core::Time,
        aid: ArrayId,
        entry: EntryId,
        payload: Bytes,
    ) {
        self.inject(at, 0, CHARM_HANDLER, enc_bcast(aid, entry, &payload));
    }

    /// Read an element's state after a run.
    pub fn element<T: 'static>(&self, aid: ArrayId, idx: u64) -> &T {
        let pe = self.charm.route.get(home_pe(idx, self.cfg.num_pes));
        self.pes
            .get(pe as usize)
            .charm
            .elements
            .get(&(aid.0, idx))
            .expect("no such element")
            .as_ref()
            .expect("element taken")
            .downcast_ref()
            .expect("element type mismatch")
    }
}

impl PeCtx<'_> {
    /// Asynchronous entry-method invocation on element `idx` of `aid`.
    pub fn charm_send(&mut self, aid: ArrayId, idx: u64, entry: EntryId, payload: Bytes) {
        let pe = self.charm_reg.route.get(home_pe(idx, self.num_pes()));
        self.send(pe, CHARM_HANDLER, enc_entry(aid, entry, idx, &payload));
    }

    /// Broadcast an entry-method invocation to every element of `aid`
    /// (spanning tree over PEs, then local fan-out).
    pub fn charm_broadcast(&mut self, aid: ArrayId, entry: EntryId, payload: Bytes) {
        // Route to the tree root; it forwards.
        self.send(0, CHARM_HANDLER, enc_bcast(aid, entry, &payload));
    }

    /// Contribute this element's share of the current reduction wave.
    /// When every element of `aid` has contributed, the combined vector is
    /// delivered to the array's reduction client.
    pub fn contribute(&mut self, aid: ArrayId, vals: &[f64], op: RedOp) {
        let local = self.charm_pe.local_elements(aid);
        assert!(local > 0, "contribute from a PE with no elements");
        let wave = *self.charm_pe.local_wave.entry(aid.0).or_insert(0);
        red_accumulate(self, aid, wave, op, vals, true);
    }
}

/// Fold a contribution (local element or child partial) into this PE's
/// reduction state, flushing up the tree when complete.
fn red_accumulate(
    ctx: &mut PeCtx<'_>,
    aid: ArrayId,
    wave: u64,
    op: RedOp,
    vals: &[f64],
    from_local_element: bool,
) {
    let pe = ctx.pe();
    // Tree over participating PEs (ranks in the sorted participant list).
    let participants = &ctx.charm_reg.arrays[aid.0 as usize].participants;
    let n_parts = participants.len() as u32;
    let rank = participants
        .binary_search(&pe)
        .expect("reduction message on a PE with no elements") as u32;
    let n_children = tree_children(rank, n_parts).count() as u32;
    let parent_pe = if rank == 0 {
        None
    } else {
        Some(participants[tree_parent(rank) as usize])
    };
    let local_needed = ctx.charm_pe.local_elements(aid);

    let st = ctx
        .charm_pe
        .reductions
        .entry((aid.0, wave))
        .or_insert(RedState {
            contributed: 0,
            children_reported: 0,
            acc: None,
            op,
        });
    debug_assert_eq!(st.op, op, "mixed reduction ops in one wave");
    match &mut st.acc {
        None => st.acc = Some(vals.to_vec()),
        Some(acc) => op.combine(acc, vals),
    }
    if from_local_element {
        st.contributed += 1;
    } else {
        st.children_reported += 1;
    }
    let done = st.contributed == local_needed && st.children_reported == n_children;
    if !done {
        return;
    }
    let acc = ctx
        .charm_pe
        .reductions
        .remove(&(aid.0, wave))
        .and_then(|s| s.acc)
        .expect("finished reduction with no accumulator");
    // This PE's wave is finished; advance the local wave counter so the
    // next contribute() call on this PE opens the following wave.
    let w = ctx.charm_pe.local_wave.entry(aid.0).or_insert(0);
    if *w == wave {
        *w = wave + 1;
    }
    match parent_pe {
        None => {
            // Root: deliver to the client.
            let (handler, target) = ctx.charm_reg.arrays[aid.0 as usize]
                .red_client
                .expect("reduction finished but no client registered");
            let mut b = BytesMut::with_capacity(8 + acc.len() * 8);
            b.put_u64_le(wave);
            for v in &acc {
                b.put_f64_le(*v);
            }
            ctx.send(target, handler, b.freeze());
        }
        Some(parent) => {
            ctx.send(parent, CHARM_HANDLER, enc_reduce(aid, wave, op, &acc));
        }
    }
}

/// The Converse handler behind [`CHARM_HANDLER`].
pub fn dispatch(ctx: &mut PeCtx, env: Envelope) {
    let p = &env.payload;
    match p[0] {
        OP_ENTRY => {
            let aid = ArrayId(u16::from_be_bytes([p[1], p[2]]));
            let eid = EntryId(u16::from_be_bytes([p[3], p[4]]));
            let idx = u64::from_be_bytes(p[5..13].try_into().unwrap());
            let user = env.payload.slice(13..);
            invoke_entry(ctx, aid, eid, idx, user);
        }
        OP_BCAST => {
            let aid = ArrayId(u16::from_be_bytes([p[1], p[2]]));
            let eid = EntryId(u16::from_be_bytes([p[3], p[4]]));
            let user = env.payload.slice(5..);
            if ctx.charm_reg.relocated {
                // After a redistribute recovery the PE spanning tree may
                // run through dead PEs: fan out directly to every
                // participating PE instead.
                let me = ctx.pe();
                let parts = ctx.charm_reg.arrays[aid.0 as usize].participants.clone();
                let direct = enc_bcast_direct(aid, eid, &user);
                for pe in parts {
                    if pe != me {
                        ctx.send(pe, CHARM_HANDLER, direct.clone());
                    }
                }
            } else {
                // Forward down the PE spanning tree.
                let pe = ctx.pe();
                let num_pes = ctx.num_pes();
                for child in tree_children(pe, num_pes) {
                    ctx.send(child, CHARM_HANDLER, env.payload.clone());
                }
            }
            bcast_local(ctx, aid, eid, user);
        }
        OP_BCAST_DIRECT => {
            let aid = ArrayId(u16::from_be_bytes([p[1], p[2]]));
            let eid = EntryId(u16::from_be_bytes([p[3], p[4]]));
            let user = env.payload.slice(5..);
            bcast_local(ctx, aid, eid, user);
        }
        OP_REDUCE => {
            let aid = ArrayId(u16::from_be_bytes([p[1], p[2]]));
            let wave = u64::from_be_bytes(p[3..11].try_into().unwrap());
            let op = RedOp::from_id(p[11]);
            let vals: Vec<f64> = (0..(p.len() - 12) / 8)
                .map(|i| f64::from_le_bytes(p[12 + i * 8..20 + i * 8].try_into().unwrap()))
                .collect();
            red_accumulate(ctx, aid, wave, op, &vals, false);
        }
        op => panic!("bad charm opcode {op}"),
    }
}

/// Invoke a broadcast entry on each element living on this PE.
fn bcast_local(ctx: &mut PeCtx, aid: ArrayId, eid: EntryId, user: Bytes) {
    let mut local: Vec<u64> = ctx
        .charm_pe
        .elements
        .keys()
        .filter(|(a, _)| *a == aid.0)
        .map(|(_, i)| *i)
        .collect();
    local.sort_unstable();
    for idx in local {
        invoke_entry(ctx, aid, eid, idx, user.clone());
    }
}

fn invoke_entry(ctx: &mut PeCtx, aid: ArrayId, eid: EntryId, idx: u64, user: Bytes) {
    let def = &ctx.charm_reg.entries[eid.0 as usize];
    assert_eq!(def.array, aid, "entry {eid:?} does not belong to {aid:?}");
    let f = def.f.clone();
    let pe = ctx.pe();
    let mut state = ctx
        .charm_pe
        .elements
        .get_mut(&(aid.0, idx))
        .unwrap_or_else(|| panic!("message for missing element {aid:?}[{idx}] on PE {pe}"))
        .take()
        .expect("reentrant entry on one element");
    f(ctx, state.as_mut(), idx, user);
    *ctx.charm_pe.elements.get_mut(&(aid.0, idx)).unwrap() = Some(state);
}

// `wire` is re-exported for payload packing in the doc examples.
pub use crate::msg::wire as payload_wire;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterCfg};
    use crate::ideal::IdealLayer;
    use crate::msg::wire;

    fn cluster(pes: u32) -> Cluster {
        Cluster::new(ClusterCfg::new(pes, 4), Box::new(IdealLayer::new(1000)))
    }

    #[test]
    fn tree_shape_is_consistent() {
        let n = 23;
        for pe in 1..n {
            let p = tree_parent(pe);
            assert!(tree_children(p, n).any(|c| c == pe), "pe {pe}");
        }
        // Every PE reachable from the root.
        let mut seen = vec![false; n as usize];
        let mut stack = vec![0u32];
        while let Some(pe) = stack.pop() {
            seen[pe as usize] = true;
            stack.extend(tree_children(pe, n));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn entry_send_reaches_element() {
        let mut c = cluster(4);
        let aid = c.create_array("counters", 10, |_| 0u64);
        let bump = c.register_entry::<u64>(aid, |_ctx, st, _idx, payload| {
            *st += wire::unpack_u64(&payload, 0);
        });
        c.inject_entry(0, aid, 7, bump, wire::pack_u64s(&[41]));
        c.inject_entry(0, aid, 7, bump, wire::pack_u64s(&[1]));
        c.run();
        assert_eq!(*c.element::<u64>(aid, 7), 42);
        assert_eq!(*c.element::<u64>(aid, 6), 0);
    }

    #[test]
    fn elements_chat_between_pes() {
        let mut c = cluster(3);
        let aid = c.create_array("relay", 6, |_| 0u64);
        let entry = c.register_entry::<u64>(aid, move |ctx, st, idx, payload| {
            let hops = wire::unpack_u64(&payload, 0);
            *st += 1;
            if hops > 0 {
                let next = (idx + 1) % 6;
                ctx.charm_send(aid, next, EntryId(0), wire::pack_u64s(&[hops - 1]));
            }
        });
        c.inject_entry(0, aid, 0, entry, wire::pack_u64s(&[12]));
        c.run();
        // 13 invocations around the ring: each element hit at least twice.
        let total: u64 = (0..6).map(|i| *c.element::<u64>(aid, i)).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn broadcast_reaches_every_element() {
        let mut c = cluster(5);
        let aid = c.create_array("cells", 17, |_| 0u32);
        let touch = c.register_entry::<u32>(aid, |_ctx, st, _idx, _p| *st += 1);
        c.inject_broadcast(0, aid, touch, Bytes::new());
        c.run();
        for i in 0..17 {
            assert_eq!(*c.element::<u32>(aid, i), 1, "element {i} missed");
        }
    }

    #[test]
    fn reduction_sums_over_all_elements() {
        let mut c = cluster(4);
        let aid = c.create_array("vals", 12, |idx| idx as f64);
        let done = std::sync::Arc::new(std::sync::Mutex::new(-1.0));
        let done2 = done.clone();
        let client = c.register_handler(move |ctx, env| {
            let wave = u64::from_le_bytes(env.payload[0..8].try_into().unwrap());
            assert_eq!(wave, 0);
            *done2.lock().unwrap() = wire::unpack_f64(&env.payload[8..], 0);
            ctx.stop();
        });
        c.set_reduction_client(aid, client, 0);
        let kick = c.register_entry::<f64>(aid, move |ctx, st, _idx, _p| {
            ctx.contribute(aid, &[*st], RedOp::Sum);
        });
        c.inject_broadcast(0, aid, kick, Bytes::new());
        c.run();
        // sum 0..12 = 66
        assert_eq!(*done.lock().unwrap(), 66.0);
    }

    #[test]
    fn successive_reduction_waves_keep_sequence() {
        let mut c = cluster(3);
        let aid = c.create_array("w", 6, |_| ());
        let results = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let r2 = results.clone();
        let kick_cell: std::sync::Arc<std::sync::OnceLock<EntryId>> =
            std::sync::Arc::new(std::sync::OnceLock::new());
        let kc = kick_cell.clone();
        let client = c.register_handler(move |ctx, env| {
            let wave = u64::from_le_bytes(env.payload[0..8].try_into().unwrap());
            let v = wire::unpack_f64(&env.payload[8..], 0);
            r2.lock().unwrap().push((wave, v));
            if wave < 2 {
                ctx.charm_broadcast(aid, *kc.get().unwrap(), Bytes::new());
            } else {
                ctx.stop();
            }
        });
        c.set_reduction_client(aid, client, 0);
        let kick = c.register_entry::<()>(aid, move |ctx, _st, _idx, _p| {
            ctx.contribute(aid, &[1.0], RedOp::Sum);
        });
        kick_cell.set(kick).expect("set once");
        c.inject_broadcast(0, aid, kick, Bytes::new());
        c.run();
        assert_eq!(&*results.lock().unwrap(), &[(0, 6.0), (1, 6.0), (2, 6.0)]);
    }

    #[test]
    fn min_max_reductions() {
        for (op, expect) in [(RedOp::Min, 0.0), (RedOp::Max, 9.0)] {
            let mut c = cluster(2);
            let aid = c.create_array("mm", 10, |idx| idx as f64);
            let got = std::sync::Arc::new(std::sync::Mutex::new(f64::NAN));
            let g2 = got.clone();
            let client = c.register_handler(move |ctx, env| {
                *g2.lock().unwrap() = wire::unpack_f64(&env.payload[8..], 0);
                ctx.stop();
            });
            c.set_reduction_client(aid, client, 0);
            let kick = c.register_entry::<f64>(aid, move |ctx, st, _i, _p| {
                ctx.contribute(aid, &[*st], op);
            });
            c.inject_broadcast(0, aid, kick, Bytes::new());
            c.run();
            assert_eq!(*got.lock().unwrap(), expect, "{op:?}");
        }
    }

    #[test]
    fn reduction_completes_with_fewer_elements_than_pes() {
        // Regression: the reduction tree must span only PEs that own
        // elements — PEs without elements used to deadlock the wave.
        let mut c = cluster(16);
        let aid = c.create_array("sparse", 3, |idx| idx as f64);
        let got = std::sync::Arc::new(std::sync::Mutex::new(f64::NAN));
        let g2 = got.clone();
        let client = c.register_handler(move |ctx, env| {
            *g2.lock().unwrap() = wire::unpack_f64(&env.payload[8..], 0);
            ctx.stop();
        });
        c.set_reduction_client(aid, client, 0);
        let kick = c.register_entry::<f64>(aid, move |ctx, st, _i, _p| {
            ctx.contribute(aid, &[*st], RedOp::Sum);
        });
        c.inject_broadcast(0, aid, kick, Bytes::new());
        let r = c.run();
        assert!(r.stopped_early, "sparse reduction deadlocked");
        assert_eq!(*got.lock().unwrap(), 0.0 + 1.0 + 2.0);
    }

    #[test]
    fn broadcast_message_count_is_tree_not_quadratic() {
        let mut c = cluster(16);
        let aid = c.create_array("wide", 16, |_| 0u32);
        let touch = c.register_entry::<u32>(aid, |_ctx, st, _idx, _p| *st += 1);
        c.inject_broadcast(0, aid, touch, Bytes::new());
        c.run();
        // Tree forwarding: at most num_pes - 1 forwards (plus the inject).
        assert!(
            c.stats().msgs_sent <= 16,
            "broadcast used {} messages",
            c.stats().msgs_sent
        );
        for i in 0..16 {
            assert_eq!(*c.element::<u32>(aid, i), 1);
        }
    }

    #[test]
    fn vector_reductions_combine_elementwise() {
        let mut c = cluster(4);
        let aid = c.create_array("vec", 8, |idx| idx as f64);
        let got = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let g2 = got.clone();
        let client = c.register_handler(move |ctx, env| {
            let body = &env.payload[8..];
            *g2.lock().unwrap() = (0..wire::f64_count(body))
                .map(|i| wire::unpack_f64(body, i))
                .collect();
            ctx.stop();
        });
        c.set_reduction_client(aid, client, 0);
        let kick = c.register_entry::<f64>(aid, move |ctx, st, _i, _p| {
            ctx.contribute(aid, &[*st, 1.0, -*st], RedOp::Sum);
        });
        c.inject_broadcast(0, aid, kick, Bytes::new());
        c.run();
        assert_eq!(&*got.lock().unwrap(), &[28.0, 8.0, -28.0]);
    }

    #[test]
    #[should_panic(expected = "missing element")]
    fn send_to_missing_element_panics() {
        let mut c = cluster(2);
        let aid = c.create_array("small", 2, |_| ());
        let e = c.register_entry::<()>(aid, |_, _, _, _| {});
        c.inject_entry(0, aid, 99, e, Bytes::new());
        c.run();
    }
}
