//! Message envelopes.
//!
//! Every Converse message is an envelope — destination PE, handler id,
//! payload — serialized to a flat byte buffer before it enters a machine
//! layer, exactly as Charm++ messages are contiguous buffers the runtime
//! owns. The machine layers move [`bytes::Bytes`]; this module is the only
//! place that knows the wire layout.

use bytes::{BufMut, Bytes, BytesMut};

/// Processing element (core) index within the job.
pub type PeId = u32;

/// Converse handler index, assigned by [`crate::cluster::Cluster::register_handler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandlerId(pub u16);

/// Fixed envelope header size on the wire (bytes). Matches the order of
/// magnitude of Converse's envelope; what matters for the experiments is
/// that small application payloads still pay a realistic header.
pub const HEADER_BYTES: usize = 32;

const MAGIC: u16 = 0xC4A7;

/// Payloads at or below this many bytes are inlined into one contiguous
/// wire buffer; larger ones ride behind the header zero-copy (chained).
/// Sized so the SMSG/eager small-message paths — the ones that *do*
/// flatten the buffer into mailbox frames — always see contiguous wire
/// bytes and never pay a lazy flatten.
const INLINE_WIRE: usize = 1024;

/// Default message priority (midpoint; smaller values run first, as in
/// Charm++'s prioritized execution).
pub const DEFAULT_PRIO: u16 = u16::MAX / 2;

/// A runtime message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    pub src_pe: PeId,
    pub dst_pe: PeId,
    pub handler: HandlerId,
    /// Scheduling priority: smaller runs first; FIFO within a priority.
    pub priority: u16,
    /// Membership epoch the message was sent in. Rolls forward on every
    /// crash recovery; the driver discards messages from earlier epochs so
    /// rollback-replay stays exactly-once. Always 0 when fault tolerance is
    /// off — the wire bytes are then identical to the pre-epoch format
    /// (this field occupies previously zero-padded header bytes).
    pub epoch: u32,
    pub payload: Bytes,
}

impl Envelope {
    pub fn new(src_pe: PeId, dst_pe: PeId, handler: HandlerId, payload: Bytes) -> Self {
        Envelope {
            src_pe,
            dst_pe,
            handler,
            priority: DEFAULT_PRIO,
            epoch: 0,
            payload,
        }
    }

    pub fn with_priority(mut self, priority: u16) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    /// Total wire size: what the machine layer actually transfers.
    pub fn wire_size(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }

    /// Serialize to the wire format.
    ///
    /// Small payloads are copied into one contiguous buffer; larger ones
    /// are chained behind the header ([`Bytes::chained`]) so the wire
    /// buffer shares the sender's payload allocation — the machine layers
    /// move the result without ever copying the payload host-side. Wire
    /// *contents* are identical either way.
    pub fn encode(&self) -> Bytes {
        if self.payload.len() <= INLINE_WIRE {
            return self.encode_mut().freeze();
        }
        let mut b = BytesMut::with_capacity(HEADER_BYTES);
        self.put_header(&mut b);
        Bytes::chained(b.freeze(), self.payload.clone())
    }

    /// Serialize to a still-mutable, fully contiguous wire buffer (tests
    /// corrupt headers through this without re-copying the encoded bytes).
    pub fn encode_mut(&self) -> BytesMut {
        let mut b = BytesMut::with_capacity(self.wire_size());
        self.put_header(&mut b);
        b.put_slice(&self.payload);
        b
    }

    fn put_header(&self, b: &mut BytesMut) {
        b.put_u16(MAGIC);
        b.put_u16(self.handler.0);
        b.put_u32(self.src_pe);
        b.put_u32(self.dst_pe);
        b.put_u32(self.payload.len() as u32);
        b.put_u16(self.priority);
        b.put_u32(self.epoch);
        // Pad the header to its fixed size.
        b.put_bytes(0, HEADER_BYTES - 22);
    }

    /// Deserialize from the wire format. Panics on a malformed buffer —
    /// that is always a machine-layer bug, not an input condition.
    pub fn decode(buf: &Bytes) -> Envelope {
        assert!(buf.len() >= HEADER_BYTES, "short envelope: {}", buf.len());
        // Read the header through a sub-slice: on a chained wire buffer
        // this resolves to the contiguous header part, so decoding never
        // flattens (= copies) the payload.
        let hdr = buf.slice(..HEADER_BYTES);
        let magic = u16::from_be_bytes([hdr[0], hdr[1]]);
        assert_eq!(magic, MAGIC, "corrupt envelope magic {magic:#x}");
        let handler = HandlerId(u16::from_be_bytes([hdr[2], hdr[3]]));
        let src_pe = u32::from_be_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]);
        let dst_pe = u32::from_be_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]);
        let len = u32::from_be_bytes([hdr[12], hdr[13], hdr[14], hdr[15]]) as usize;
        let priority = u16::from_be_bytes([hdr[16], hdr[17]]);
        let epoch = u32::from_be_bytes([hdr[18], hdr[19], hdr[20], hdr[21]]);
        assert_eq!(
            buf.len(),
            HEADER_BYTES + len,
            "envelope length mismatch: wire {} vs header {}",
            buf.len(),
            HEADER_BYTES + len
        );
        Envelope {
            src_pe,
            dst_pe,
            handler,
            priority,
            epoch,
            payload: buf.slice(HEADER_BYTES..),
        }
    }

    /// Peek only the destination PE from an encoded buffer (machine layers
    /// route on this without a full decode).
    pub fn peek_dst(buf: &Bytes) -> PeId {
        assert!(buf.len() >= HEADER_BYTES);
        let hdr = buf.slice(..HEADER_BYTES);
        u32::from_be_bytes([hdr[8], hdr[9], hdr[10], hdr[11]])
    }
}

/// Little-endian helpers for app payloads: the apps in this workspace pack
/// small plain-old-data structs into payload bytes with these.
pub mod wire {
    use bytes::{BufMut, Bytes, BytesMut};

    pub fn pack_u64s(vals: &[u64]) -> Bytes {
        let mut b = BytesMut::with_capacity(vals.len() * 8);
        for v in vals {
            b.put_u64_le(*v);
        }
        b.freeze()
    }

    pub fn unpack_u64(buf: &[u8], idx: usize) -> u64 {
        let o = idx * 8;
        u64::from_le_bytes(buf[o..o + 8].try_into().expect("short payload"))
    }

    pub fn pack_f64s(vals: &[f64]) -> Bytes {
        let mut b = BytesMut::with_capacity(vals.len() * 8);
        for v in vals {
            b.put_f64_le(*v);
        }
        b.freeze()
    }

    pub fn unpack_f64(buf: &[u8], idx: usize) -> f64 {
        let o = idx * 8;
        f64::from_le_bytes(buf[o..o + 8].try_into().expect("short payload"))
    }

    pub fn f64_count(buf: &[u8]) -> usize {
        buf.len() / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let e = Envelope::new(3, 17, HandlerId(9), Bytes::from_static(b"payload!"));
        let wire = e.encode();
        assert_eq!(wire.len(), e.wire_size());
        let d = Envelope::decode(&wire);
        assert_eq!(d, e);
    }

    #[test]
    fn large_payload_round_trips_zero_copy() {
        let payload = Bytes::from(vec![7u8; 4 * INLINE_WIRE]);
        let e = Envelope::new(1, 2, HandlerId(3), payload.clone());
        let wire = e.encode();
        assert_eq!(wire.len(), e.wire_size());
        let d = Envelope::decode(&wire);
        assert_eq!(d, e);
        // The decoded payload aliases the sender's allocation: encode
        // chained it behind the header and decode sliced it back out.
        assert_eq!(d.payload.as_ptr(), payload.as_ptr());
        // A flattened view of the whole wire buffer still reads correctly.
        assert_eq!(&wire[HEADER_BYTES..HEADER_BYTES + 4], &[7, 7, 7, 7]);
    }

    #[test]
    fn empty_payload_round_trip() {
        let e = Envelope::new(0, 0, HandlerId(0), Bytes::new());
        let d = Envelope::decode(&e.encode());
        assert_eq!(d, e);
        assert_eq!(e.wire_size(), HEADER_BYTES);
    }

    #[test]
    fn priority_survives_the_wire() {
        let e = Envelope::new(1, 2, HandlerId(3), Bytes::from_static(b"p")).with_priority(7);
        let d = Envelope::decode(&e.encode());
        assert_eq!(d.priority, 7);
        assert_eq!(d, e);
    }

    #[test]
    fn epoch_survives_the_wire_and_zero_matches_legacy_padding() {
        let e = Envelope::new(1, 2, HandlerId(3), Bytes::from_static(b"p")).with_epoch(5);
        let d = Envelope::decode(&e.encode());
        assert_eq!(d.epoch, 5);
        assert_eq!(d, e);
        // Epoch 0 occupies bytes that used to be header zero-padding: the
        // encoded buffer of a non-FT message is byte-identical to the
        // pre-epoch wire format.
        let legacy = Envelope::new(1, 2, HandlerId(3), Bytes::from_static(b"p"));
        let wire = legacy.encode();
        assert!(wire[18..HEADER_BYTES].iter().all(|&b| b == 0));
    }

    #[test]
    fn peek_dst_matches_decode() {
        let e = Envelope::new(1, 42, HandlerId(2), Bytes::from_static(b"x"));
        assert_eq!(Envelope::peek_dst(&e.encode()), 42);
    }

    #[test]
    #[should_panic(expected = "corrupt envelope magic")]
    fn corrupt_magic_panics() {
        let e = Envelope::new(0, 0, HandlerId(0), Bytes::new());
        let mut wire = e.encode_mut();
        wire[0] = 0;
        Envelope::decode(&wire.freeze());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn truncated_payload_panics() {
        let e = Envelope::new(0, 0, HandlerId(0), Bytes::from_static(b"abcdef"));
        let wire = e.encode();
        let cut = wire.slice(..wire.len() - 2);
        Envelope::decode(&cut);
    }

    #[test]
    fn wire_helpers_round_trip() {
        let b = wire::pack_u64s(&[5, 10, u64::MAX]);
        assert_eq!(wire::unpack_u64(&b, 0), 5);
        assert_eq!(wire::unpack_u64(&b, 2), u64::MAX);
        let f = wire::pack_f64s(&[1.5, -2.25]);
        assert_eq!(wire::unpack_f64(&f, 1), -2.25);
        assert_eq!(wire::f64_count(&f), 2);
    }
}
