//! Runtime-level fault tolerance: a heartbeat failure detector plus
//! in-memory double (buddy) checkpointing, after Charm++'s in-memory
//! checkpoint/restart (DESIGN.md §11).
//!
//! Everything here runs end-to-end in virtual time and is bit-replayable:
//! crashes come only from the [`gemini_net::FaultPlan`]'s schedule-driven
//! crash windows (never the fault RNG), detection is timeout arithmetic on
//! virtual-time heartbeats, and recovery mutates the cluster between
//! events, so two runs under the same plan are byte-identical.
//!
//! Protocol sketch:
//!
//! * every node's lead PE self-schedules a **heartbeat** to the monitor
//!   (PE 0) each `hb_period`; the monitor's **detector tick** declares a
//!   node dead when its last heartbeat is older than `hb_timeout`;
//! * apps opt into **checkpointing** via the [`Checkpoint`] trait;
//!   [`crate::cluster::PeCtx::ft_maybe_checkpoint`] snapshots every PE
//!   from a quiescent point on a `ckpt_period` cadence, storing one copy
//!   locally and one on a **buddy** (next live node, same core offset);
//! * on a declared failure the membership **epoch** rolls forward, every
//!   live PE rolls back to its last checkpoint, the dead node's PEs are
//!   restored from their buddy copies — onto the restarted incarnation
//!   when the crash window has `restart_after_ns`, or redistributed onto
//!   the buddy-holding PEs when the node is gone for good — and messages
//!   from earlier epochs are discarded at delivery, which together with
//!   replay from the checkpoint keeps execution exactly-once.

use crate::cluster::{Cluster, Event, PeCtx};
use crate::msg::{wire, Envelope, HandlerId, PeId};
use crate::trace::Kind;
use bytes::Bytes;
use gemini_net::NodeId;
use sim_core::Time;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// App-side opt-in: state that can ride a checkpoint. Mirrors Charm++'s
/// PUP in the small: one flat byte serialization, one reconstruction.
pub trait Checkpoint {
    fn save(&self) -> Vec<u8>;
    fn restore(bytes: &[u8]) -> Self
    where
        Self: Sized;
}

/// Fault-tolerance tuning knobs (all virtual time).
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Heartbeat send period per node.
    pub hb_period: Time,
    /// Declare a node dead when its heartbeat is older than this. Beats
    /// ride the scheduler at top priority, but a PE that is *computing*
    /// cannot beat: size the timeout several times the application's
    /// longest busy stretch or a loaded node reads as a dead one.
    pub hb_timeout: Time,
    /// Minimum spacing between checkpoints (enforced by
    /// [`crate::cluster::PeCtx::ft_maybe_checkpoint`]).
    pub ckpt_period: Time,
    /// Fixed virtual-time cost of taking one PE's checkpoint.
    pub ckpt_base_ns: Time,
    /// Incremental checkpoint cost per KiB of serialized state.
    pub ckpt_ns_per_kb: Time,
    /// Fixed virtual-time cost of restoring one PE.
    pub restore_base_ns: Time,
    /// Incremental restore cost per KiB of serialized state.
    pub restore_ns_per_kb: Time,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            hb_period: 10_000,
            hb_timeout: 30_000,
            ckpt_period: 50_000,
            ckpt_base_ns: 1_000,
            ckpt_ns_per_kb: 100,
            restore_base_ns: 2_000,
            restore_ns_per_kb: 200,
        }
    }
}

/// Post-run summary of FT activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FtReport {
    /// Completed checkpoint waves (including the bootstrap one at t=0).
    pub ckpts: u64,
    /// Completed crash recoveries.
    pub recoveries: u64,
    /// Final membership epoch (= recoveries; kept separate for clarity).
    pub epoch: u32,
}

/// One PE's checkpoint: serialized chare elements, the per-array local
/// reduction wave counters (the in-flight application-level sequence
/// numbers), and the bare per-PE user state.
pub struct FtSnapshot {
    /// `(array, index, bytes)`, sorted by key.
    pub(crate) elements: Vec<(u16, u64, Vec<u8>)>,
    /// `(array, wave)`, sorted.
    pub(crate) local_wave: Vec<(u16, u64)>,
    /// Serialized user state (None when the app registered no
    /// [`Cluster::ft_user`] serializer).
    pub(crate) user: Option<Vec<u8>>,
    /// Total serialized payload (drives the virtual-time cost model).
    pub(crate) bytes: u64,
}

/// Deferred FT work queued by handlers and enacted by the driver between
/// events (so snapshots and restores always see a consistent cluster).
pub(crate) enum FtAction {
    Checkpoint,
    Declare(NodeId),
}

type SaveFn = Arc<dyn Fn(&dyn Any) -> Vec<u8> + Send + Sync>;
type LoadFn = Arc<dyn Fn(&[u8]) -> Box<dyn Any + Send> + Send + Sync>;

/// Failure-detector and checkpoint bookkeeping, installed by
/// [`Cluster::enable_ft`].
pub struct FtCore {
    pub(crate) cfg: FtConfig,
    /// Current membership epoch; rolls forward on every recovery.
    pub(crate) epoch: u32,
    /// Virtual time of the last checkpoint wave (cadence gate).
    pub(crate) last_ckpt: Time,
    /// Work queued by handlers, drained after each event.
    pub(crate) pending: Vec<FtAction>,
    /// Monitor side: node -> last heartbeat receipt (BTreeMap: the
    /// detector scan must be deterministic).
    last_hb: BTreeMap<NodeId, Time>,
    /// Nodes declared dead. A restarting node leaves this set when its
    /// recovery completes; a redistributed one never does.
    dead: BTreeSet<NodeId>,
    /// Nodes whose fresh incarnation has booted and awaits restore.
    pub(crate) restarted: BTreeSet<NodeId>,
    /// Gone-for-good nodes whose recovery (redistribute) has completed:
    /// the membership shrank, and waves over the survivors are complete
    /// again.
    gone: BTreeSet<NodeId>,
    beat_h: HandlerId,
    #[allow(dead_code)]
    hb_h: HandlerId,
    #[allow(dead_code)]
    tick_h: HandlerId,
    /// App resume entry `(handler, pe)` kicked once after each recovery.
    resume: Option<(HandlerId, PeId)>,
    /// Heartbeat traffic stops past this virtual time so runs drain; 0
    /// (inert plan: no crash windows) means no heartbeats at all.
    hb_horizon: Time,
    /// Per-array element (de)serializers, keyed by `ArrayId.0`.
    savers: BTreeMap<u16, (SaveFn, LoadFn)>,
    /// Bare per-PE user-state (de)serializer.
    user_ck: Option<(SaveFn, LoadFn)>,
    pub(crate) ckpts: u64,
    pub(crate) recoveries: u64,
}

impl Cluster {
    /// Install the fault-tolerance subsystem: heartbeat failure detector,
    /// buddy checkpointing, epoch-based rollback recovery.
    ///
    /// Must be called before arrays are FT-registered ([`Cluster::ft_array`])
    /// and before [`Cluster::run`]. The monitor and recovery coordinator
    /// live on node 0, so crash plans must spare node 0. Incompatible with
    /// quiescence detection (checked at `run`).
    pub fn enable_ft(&mut self, cfg: FtConfig) {
        assert!(self.ft.is_none(), "fault tolerance enabled twice");
        assert!(
            !self.cfg.fault.node_crash.iter().any(|w| w.node == 0),
            "the FT monitor lives on node 0: crash plans must spare node 0"
        );
        let cores = self.cfg.cores_per_node;

        // Monitor side: record a heartbeat receipt.
        let hb_h = self.register_handler(move |ctx: &mut PeCtx, env: Envelope| {
            let node = wire::unpack_u64(&env.payload, 0) as NodeId;
            let now = ctx.now();
            ctx.ft_state().last_hb.insert(node, now);
        });
        // Node side: send a heartbeat to the monitor, re-arm until the
        // horizon. All FT control traffic runs at priority 0 — on a
        // saturated PE a default-priority beat queues behind the whole
        // application backlog, and that drift would read as a timeout.
        let beat_h = self.register_handler(move |ctx: &mut PeCtx, env: Envelope| {
            let now = ctx.now();
            let (period, horizon) = {
                let ft = ctx.ft_state();
                (ft.cfg.hb_period, ft.hb_horizon)
            };
            let node = (ctx.pe() / cores) as u64;
            ctx.send_prio(0, hb_h, wire::pack_u64s(&[node]), 0);
            if now < horizon {
                let pe = ctx.pe();
                ctx.send_after_prio(period, pe, env.handler, Bytes::new(), 0);
            }
        });
        // Monitor side: timeout-based suspicion; declarations are queued
        // and enacted between events.
        let tick_h = self.register_handler(move |ctx: &mut PeCtx, env: Envelope| {
            let now = ctx.now();
            let (period, horizon) = {
                let ft = ctx.ft_state();
                let timeout = ft.cfg.hb_timeout;
                let mut suspects: Vec<NodeId> = Vec::new();
                for (n, last) in ft.last_hb.iter() {
                    if !ft.dead.contains(n) && now.saturating_sub(*last) > timeout {
                        suspects.push(*n);
                    }
                }
                for n in suspects {
                    ft.dead.insert(n);
                    ft.pending.push(FtAction::Declare(n));
                }
                (ft.cfg.hb_period, ft.hb_horizon)
            };
            if now < horizon {
                let pe = ctx.pe();
                ctx.send_after_prio(period, pe, env.handler, Bytes::new(), 0);
            }
        });
        for h in [hb_h, beat_h, tick_h] {
            // FT control traffic is outside quiescence accounting and the
            // membership-epoch gate (a recovery must not kill the
            // detector's own self-scheduling chains).
            self.system_handlers.insert(h.0);
        }

        // Heartbeats only need to cover the window in which a crash can
        // be detected; past the horizon the chains stop re-arming so the
        // event queue drains. An inert plan (no crash windows) gets a
        // zero horizon and therefore zero heartbeat traffic.
        let hb_horizon = self
            .cfg
            .fault
            .node_crash
            .iter()
            .map(|w| w.restart_at().unwrap_or(w.at_ns) + cfg.hb_timeout + 2 * cfg.hb_period)
            .max()
            .unwrap_or(0);

        let mut last_hb: BTreeMap<NodeId, Time> = BTreeMap::new();
        if hb_horizon > 0 {
            for n in 0..self.cfg.num_nodes() {
                last_hb.insert(n, 0);
                let lead = n * cores;
                if lead < self.cfg.num_pes {
                    let env = Envelope::new(lead, lead, beat_h, Bytes::new()).with_priority(0);
                    self.events
                        .push(cfg.hb_period, Event::Deliver(lead, env.encode()));
                }
            }
            let env = Envelope::new(0, 0, tick_h, Bytes::new()).with_priority(0);
            self.events
                .push(cfg.hb_period, Event::Deliver(0, env.encode()));
        }

        self.crash_gate = true;
        self.ft = Some(FtCore {
            cfg,
            epoch: 0,
            last_ckpt: 0,
            pending: Vec::new(),
            last_hb,
            dead: BTreeSet::new(),
            restarted: BTreeSet::new(),
            gone: BTreeSet::new(),
            beat_h,
            hb_h,
            tick_h,
            resume: None,
            hb_horizon,
            savers: BTreeMap::new(),
            user_ck: None,
            ckpts: 0,
            recoveries: 0,
        });
    }

    /// Register array `aid`'s element type for checkpointing. Every array
    /// that exists when FT is enabled must be registered — an unregistered
    /// array's elements cannot be serialized, which would silently lose
    /// them at recovery, so the checkpointer panics instead.
    pub fn ft_array<T: Checkpoint + Send + 'static>(&mut self, aid: crate::charm::ArrayId) {
        let ft = match self.ft.as_mut() {
            Some(f) => f,
            None => panic!("call enable_ft before ft_array"),
        };
        ft.savers.insert(aid.0, ck_fns::<T>());
    }

    /// Register the bare per-PE user state (see [`Cluster::init_user`])
    /// for checkpointing. Optional; without it user state is not restored.
    pub fn ft_user<T: Checkpoint + Send + 'static>(&mut self) {
        let ft = match self.ft.as_mut() {
            Some(f) => f,
            None => panic!("call enable_ft before ft_user"),
        };
        ft.user_ck = Some(ck_fns::<T>());
    }

    /// Route a post-recovery resume kick to `(handler, pe)`: invoked once
    /// after every completed recovery with payload
    /// `[epoch, dead node, restarted? 1 : 0]` (u64 LE each). The handler's
    /// job is to re-drive the app from its restored state. `pe` should be
    /// on node 0 (it must survive every plannable crash).
    pub fn ft_on_resume(&mut self, handler: HandlerId, pe: PeId) {
        let ft = match self.ft.as_mut() {
            Some(f) => f,
            None => panic!("call enable_ft before ft_on_resume"),
        };
        ft.resume = Some((handler, pe));
    }

    /// FT activity summary (all zeros when FT is off).
    pub fn ft_report(&self) -> FtReport {
        match &self.ft {
            Some(f) => FtReport {
                ckpts: f.ckpts,
                recoveries: f.recoveries,
                epoch: f.epoch,
            },
            None => FtReport::default(),
        }
    }

    /// Take the bootstrap checkpoint at t=0 (called from `run`): every
    /// recovery has a wave to roll back to even before the app's first
    /// `ft_maybe_checkpoint`.
    pub(crate) fn ft_bootstrap(&mut self) {
        let fresh = match &self.ft {
            Some(f) => f.ckpts == 0,
            None => false,
        };
        if fresh {
            self.ft_checkpoint(0);
        }
    }

    /// Drain FT work queued by the handlers of the event just dispatched.
    pub(crate) fn ft_pump(&mut self, t: Time) {
        let pending = match self.ft.as_mut() {
            Some(f) if !f.pending.is_empty() => std::mem::take(&mut f.pending),
            _ => return,
        };
        for action in pending {
            match action {
                FtAction::Checkpoint => self.ft_checkpoint(t),
                FtAction::Declare(node) => {
                    // When the plan restarts the node later, recovery
                    // waits for the fresh incarnation; otherwise the
                    // node is gone and its PEs redistribute now.
                    let restart = self
                        .cfg
                        .fault
                        .node_crash
                        .iter()
                        .find(|w| w.node == node)
                        .and_then(|w| w.restart_at());
                    match restart {
                        Some(r) if r > t => self.events.push(r, Event::FtRecover(node)),
                        _ => self.ft_recover(t, node),
                    }
                }
            }
        }
    }

    /// Take one checkpoint wave: serialize every live PE's state and
    /// place copies locally and on the PE's buddy.
    pub(crate) fn ft_checkpoint(&mut self, t: Time) {
        let mut ft = match self.ft.take() {
            Some(f) => f,
            None => return,
        };
        self.ft_checkpoint_inner(t, &mut ft);
        self.ft = Some(ft);
    }

    fn ft_checkpoint_inner(&mut self, t: Time, ft: &mut FtCore) {
        // A wave taken with a member down would be a partial snapshot:
        // recovery would then restore the survivors from it but the dead
        // PEs from an older wave — an inconsistent cut that loses the
        // causality between them (a pong counted on one side but not the
        // other). Checkpointing suspends until recovery settles the
        // membership: a restart restores full membership, a redistribute
        // shrinks it (waves over the survivors are complete again). Until
        // then the last complete wave stays the rollback point.
        let unsettled = self
            .node_down
            .iter()
            .enumerate()
            .any(|(n, &d)| d && !ft.gone.contains(&(n as NodeId)));
        if unsettled {
            return;
        }
        let cores = self.cfg.cores_per_node;
        for pe in 0..self.cfg.num_pes {
            if self.node_down[(pe / cores) as usize] {
                continue;
            }
            let snap = {
                let st = self.pes.get(pe as usize);
                let keys = st.charm.element_keys();
                let mut elements = Vec::with_capacity(keys.len());
                let mut bytes = 0u64;
                for (aid, idx) in keys {
                    let save = match ft.savers.get(&aid) {
                        Some((s, _)) => s.clone(),
                        // A populated array without a Checkpoint registration
                        // cannot be saved — config bug. panic-ok: by design.
                        None => panic!(
                            "array {aid} has elements but no Checkpoint \
                             registration (call ft_array)"
                        ),
                    };
                    let data = save(st.charm.element_state((aid, idx)));
                    // 16 bytes of per-element framing in the cost model.
                    bytes += data.len() as u64 + 16;
                    elements.push((aid, idx, data));
                }
                let user = match &ft.user_ck {
                    Some((save, _)) => {
                        let data = save(st.user.as_ref());
                        bytes += data.len() as u64;
                        Some(data)
                    }
                    None => None,
                };
                Arc::new(FtSnapshot {
                    elements,
                    local_wave: st.charm.wave_snapshot(),
                    user,
                    bytes,
                })
            };
            // Serialization + buddy copy is real work: charge it as its
            // own trace category so the cadence sweep can read overhead.
            let cost = ft.cfg.ckpt_base_ns + snap.bytes.div_ceil(1024) * ft.cfg.ckpt_ns_per_kb;
            let start = t.max(self.pes.get(pe as usize).busy_until);
            self.trace.record(pe, start, cost, Kind::Checkpoint);
            self.pes.get_mut(pe as usize).busy_until = start + cost;
            let buddy = self.ft_buddy_of(pe, ft);
            self.pes.get_mut(pe as usize).ft_local = Some(snap.clone());
            self.pes.get_mut(buddy as usize).ft_buddy.insert(pe, snap);
        }
        ft.ckpts += 1;
        ft.last_ckpt = t;
    }

    /// The PE holding `pe`'s second checkpoint copy: same core offset on
    /// the next live node (wrapping). Degenerates to `pe` itself on a
    /// single-node job, where no buddy can survive a node loss anyway.
    fn ft_buddy_of(&self, pe: PeId, ft: &FtCore) -> PeId {
        let cores = self.cfg.cores_per_node;
        let nodes = self.cfg.num_nodes();
        let node = pe / cores;
        let offset = pe % cores;
        for k in 1..nodes {
            let cand = (node + k) % nodes;
            if self.node_down[cand as usize] || ft.dead.contains(&cand) {
                continue;
            }
            let bpe = cand * cores + offset;
            if bpe < self.cfg.num_pes {
                return bpe;
            }
        }
        pe
    }

    /// Enact crash recovery for a declared-dead node: roll the membership
    /// epoch, restore the dead node's PEs from their buddy checkpoints
    /// (in place after a restart, redistributed otherwise), roll every
    /// surviving PE back to its own last checkpoint, and kick the app's
    /// resume handler in the new epoch.
    pub(crate) fn ft_recover(&mut self, t: Time, node: NodeId) {
        let mut ft = match self.ft.take() {
            Some(f) => f,
            // panic-ok: a crash with FT disabled is unrecoverable by design
            None => panic!("crash recovery without fault tolerance enabled"),
        };
        self.ft_recover_inner(t, node, &mut ft);
        self.ft = Some(ft);
    }

    fn ft_recover_inner(&mut self, t: Time, node: NodeId, ft: &mut FtCore) {
        ft.epoch += 1;
        ft.recoveries += 1;
        let cores = self.cfg.cores_per_node;
        let num_pes = self.cfg.num_pes;
        let lo = node * cores;
        let hi = (lo + cores).min(num_pes);
        let restart = ft.restarted.remove(&node);

        // Locate the dead PEs' buddy snapshots: scan the live PEs in PE
        // order (deterministic), first hit wins.
        let mut orphans: Vec<(PeId, PeId, Arc<FtSnapshot>)> = Vec::new();
        for dead in lo..hi {
            let mut found: Option<(PeId, Arc<FtSnapshot>)> = None;
            for holder in 0..num_pes {
                if self.node_down[(holder / cores) as usize] {
                    continue;
                }
                if let Some(s) = self.pes.get(holder as usize).ft_buddy.get(&dead) {
                    found = Some((holder, s.clone()));
                    break;
                }
            }
            match found {
                Some((holder, s)) => orphans.push((dead, holder, s)),
                // Both replicas lost — unrecoverable with buddy (double)
                // checkpointing. panic-ok: by design.
                None => panic!("no surviving checkpoint for PE {dead} (its buddy also died)"),
            }
        }

        if restart {
            // The fresh incarnation rejoins the membership and will be
            // restored in place below. Its NIC state starts clean too:
            // polls armed during the outage were dropped with the dead
            // incarnation, and a stale arm would suppress the coalesced
            // polls the new one needs.
            self.node_down[node as usize] = false;
            self.with_layer(t, |layer, ctx| layer.node_fault(ctx, node));
            ft.dead.remove(&node);
        } else {
            // Redistribute: elements move to the PEs already holding
            // their buddy copies. Re-point every home whose route led to
            // the dead node (covers homes redirected by earlier
            // recoveries too), then fold the participant lists.
            for h in 0..num_pes {
                let cur = self.charm.route.get(h);
                if (lo..hi).contains(&cur) {
                    for (dead, holder, _) in &orphans {
                        if *dead == cur {
                            self.charm.route.set(h, *holder);
                        }
                    }
                }
            }
            self.charm.relocated = true;
            self.charm.remap_participants();
            ft.gone.insert(node);
        }

        // Roll every live PE back to the last checkpoint wave.
        for pe in 0..num_pes {
            if self.node_down[(pe / cores) as usize] {
                continue;
            }
            let dead_range = (lo..hi).contains(&pe);
            let own_snap = if restart && dead_range {
                // A restarted PE's own copy died with the old
                // incarnation; restore from the buddy copy.
                let mut s = None;
                for (dead, _, snap) in &orphans {
                    if *dead == pe {
                        s = Some(snap.clone());
                    }
                }
                s
            } else {
                self.pes.get(pe as usize).ft_local.clone()
            };
            let sys = self.system_handlers.clone();
            let st = self.pes.get_mut(pe as usize);
            if restart && dead_range {
                // Fresh incarnation: nothing before `t` happened on it.
                st.busy_until = t;
            }
            // Drop undelivered pre-recovery application messages from the
            // scheduler queue (their sends will be replayed from the
            // checkpoint), but keep FT/QD control envelopes — the
            // detector's chains must survive recovery.
            let kept: Vec<_> = st
                .queue
                .drain()
                .map(|r| r.0)
                .filter(|p| sys.contains(&p.env.handler.0))
                .collect();
            for p in kept {
                st.queue.push(std::cmp::Reverse(p));
            }
            st.charm.clear_reductions();
            // Buffered (unflushed) typed AMs are pre-rollback sends: the
            // replay from the checkpoint regenerates them, so delivering
            // the stale copies too would double-deliver.
            st.am.wipe();
            let mut bytes = 0u64;
            if let Some(snap) = own_snap {
                st.charm.wipe();
                restore_snapshot(st, ft, &snap);
                bytes += snap.bytes;
            }
            if !restart {
                // Holders adopt the elements of the dead PEs whose buddy
                // copies they hold (the dead PEs' bare user state is
                // dropped — only chare elements migrate).
                for (_, holder, snap) in &orphans {
                    if *holder == pe {
                        adopt_snapshot(st, ft, snap);
                        bytes += snap.bytes;
                    }
                }
            }
            let cost = ft.cfg.restore_base_ns + bytes.div_ceil(1024) * ft.cfg.restore_ns_per_kb;
            let start = t.max(st.busy_until);
            self.trace.record(pe, start, cost, Kind::Recovery);
            self.pes.get_mut(pe as usize).busy_until = start + cost;
        }

        // A gone-for-good node's buddy entries are unreachable garbage;
        // a restarting node's stay (they are still the latest checkpoint
        // should it crash again before the next wave).
        if !restart {
            for pe in 0..num_pes {
                // Shared-read gate first: PEs holding no buddy copies
                // (including never-materialized ones) are skipped without
                // forcing their pages into existence.
                if self.pes.get(pe as usize).ft_buddy.is_empty() {
                    continue;
                }
                let st = self.pes.get_mut(pe as usize);
                for dead in lo..hi {
                    st.ft_buddy.remove(&dead);
                }
            }
        }

        // Failure-detector bookkeeping: fresh heartbeat horizon for the
        // surviving membership, and a re-armed beat chain for the
        // restarted node (its old chain died with it).
        let nodes: Vec<NodeId> = ft.last_hb.keys().copied().collect();
        for n in nodes {
            if ft.dead.contains(&n) {
                ft.last_hb.remove(&n);
            } else {
                ft.last_hb.insert(n, t);
            }
        }
        if restart {
            ft.last_hb.insert(node, t);
            let lead = lo;
            let env = Envelope::new(lead, lead, ft.beat_h, Bytes::new())
                .with_priority(0)
                .with_epoch(ft.epoch);
            self.events
                .push(t + ft.cfg.hb_period, Event::Deliver(lead, env.encode()));
        }

        // Kick the app back to life in the new epoch.
        if let Some((h, pe)) = ft.resume {
            let payload =
                wire::pack_u64s(&[ft.epoch as u64, node as u64, if restart { 1 } else { 0 }]);
            let env = Envelope::new(pe, pe, h, payload).with_epoch(ft.epoch);
            self.events.push(t, Event::Deliver(pe, env.encode()));
        }
    }
}

/// Build the type-erased (de)serializer pair for `T`.
fn ck_fns<T: Checkpoint + Send + 'static>() -> (SaveFn, LoadFn) {
    (
        Arc::new(|any: &dyn Any| match any.downcast_ref::<T>() {
            Some(v) => v.save(),
            None => panic!("checkpoint serializer saw a different state type"),
        }),
        Arc::new(|bytes: &[u8]| Box::new(T::restore(bytes)) as Box<dyn Any + Send>),
    )
}

/// Restore a PE's own snapshot: elements, wave counters, user state.
fn restore_snapshot(st: &mut crate::cluster::PeState, ft: &FtCore, snap: &FtSnapshot) {
    for (aid, idx, data) in &snap.elements {
        let load = match ft.savers.get(aid) {
            Some((_, l)) => l.clone(),
            // A snapshot without its loader cannot be restored — a
            // registration lifetime bug. panic-ok: unrecoverable by design.
            None => panic!("checkpointed array {aid} lost its Checkpoint registration"),
        };
        st.charm.insert_element((*aid, *idx), load(data));
    }
    for (aid, w) in &snap.local_wave {
        st.charm.merge_wave(*aid, *w);
    }
    if let (Some((_, load)), Some(data)) = (&ft.user_ck, &snap.user) {
        st.user = load(data);
    }
}

/// Adopt a dead PE's snapshot onto its buddy holder (redistribute mode):
/// elements and wave counters migrate; the dead PE's user state does not.
fn adopt_snapshot(st: &mut crate::cluster::PeState, ft: &FtCore, snap: &FtSnapshot) {
    for (aid, idx, data) in &snap.elements {
        let load = match ft.savers.get(aid) {
            Some((_, l)) => l.clone(),
            // A snapshot without its loader cannot be restored — a
            // registration lifetime bug. panic-ok: unrecoverable by design.
            None => panic!("checkpointed array {aid} lost its Checkpoint registration"),
        };
        st.charm.insert_element((*aid, *idx), load(data));
    }
    for (aid, w) in &snap.local_wave {
        st.charm.merge_wave(*aid, *w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charm::RedOp;
    use crate::cluster::{Cluster, ClusterCfg, RunReport};
    use crate::ideal::IdealLayer;
    use gemini_net::{FaultPlan, NodeCrashWindow};

    struct Cnt(u64);
    impl Checkpoint for Cnt {
        fn save(&self) -> Vec<u8> {
            self.0.to_le_bytes().to_vec()
        }
        fn restore(bytes: &[u8]) -> Self {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[..8]);
            Cnt(u64::from_le_bytes(b))
        }
    }

    /// A reduction-driven round loop: every element bumps a counter and
    /// contributes; the client re-broadcasts until `rounds` waves are
    /// done. Exactly-once ⇒ every counter ends at exactly `rounds`.
    fn run_ring(plan: FaultPlan, rounds: u64) -> (RunReport, Vec<u64>, FtReport) {
        let mut cfg = ClusterCfg::new(8, 2);
        cfg.fault = plan;
        let mut c = Cluster::new(cfg, Box::new(IdealLayer::new(1_000)));
        c.enable_ft(FtConfig {
            ckpt_period: 20_000,
            ..FtConfig::default()
        });
        let aid = c.create_array("cnt", 8, |_| Cnt(0));
        c.ft_array::<Cnt>(aid);
        let bump = c.register_entry::<Cnt>(aid, move |ctx, st, _idx, _p| {
            st.0 += 1;
            ctx.contribute(aid, &[st.0 as f64], RedOp::Sum);
        });
        let client = c.register_handler(move |ctx, env| {
            let wave = u64::from_le_bytes(env.payload[0..8].try_into().unwrap());
            if wave + 1 >= rounds {
                ctx.stop();
            } else {
                ctx.charm_broadcast(aid, bump, Bytes::new());
                ctx.ft_maybe_checkpoint();
            }
        });
        c.set_reduction_client(aid, client, 0);
        let resume = c.register_handler(move |ctx, _env| {
            ctx.charm_broadcast(aid, bump, Bytes::new());
        });
        c.ft_on_resume(resume, 0);
        c.inject_broadcast(0, aid, bump, Bytes::new());
        let r = c.run();
        let counts: Vec<u64> = (0..8).map(|i| c.element::<Cnt>(aid, i).0).collect();
        (r, counts, c.ft_report())
    }

    fn crash_plan(node: u32, restart: Option<sim_core::Time>) -> FaultPlan {
        let mut plan = FaultPlan::default();
        plan.node_crash.push(NodeCrashWindow {
            node,
            at_ns: 60_000,
            restart_after_ns: restart,
        });
        plan
    }

    #[test]
    fn inert_plan_means_no_heartbeats_and_one_bootstrap_checkpoint() {
        let (r, counts, ft) = run_ring(FaultPlan::default(), 10);
        assert!(r.stopped_early);
        assert_eq!(counts, vec![10; 8]);
        assert_eq!(ft.recoveries, 0);
        assert_eq!(ft.epoch, 0);
        assert!(ft.ckpts >= 1, "bootstrap checkpoint missing");
        assert_eq!(r.stats.ft_dead_drops, 0);
        assert_eq!(r.stats.ft_stale_drops, 0);
    }

    #[test]
    fn restart_crash_recovers_exactly_once() {
        let rounds = 60;
        let (rf, fault_free, _) = run_ring(FaultPlan::default(), rounds);
        let (rc, crashed, ft) = run_ring(crash_plan(1, Some(30_000)), rounds);
        assert!(rf.stopped_early && rc.stopped_early);
        assert_eq!(ft.recoveries, 1);
        assert_eq!(ft.epoch, 1);
        assert_eq!(crashed, fault_free, "crash run diverged from fault-free");
        assert_eq!(crashed, vec![rounds; 8]);
        assert!(rc.stats.ft_dead_drops > 0, "nothing died with the node?");
        assert!(rc.end_time > rf.end_time, "recovery cost no time?");
    }

    #[test]
    fn redistribute_crash_folds_elements_onto_buddies() {
        let rounds = 60;
        let (r, counts, ft) = run_ring(crash_plan(3, None), rounds);
        assert!(r.stopped_early);
        assert_eq!(ft.recoveries, 1);
        assert_eq!(counts, vec![rounds; 8]);
    }

    #[test]
    fn crash_runs_are_bit_replayable() {
        for restart in [Some(30_000), None] {
            let a = run_ring(crash_plan(1, restart), 60);
            let b = run_ring(crash_plan(1, restart), 60);
            assert_eq!(a.0.end_time, b.0.end_time);
            assert_eq!(a.0.stats, b.0.stats);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2);
        }
    }

    #[test]
    #[should_panic(expected = "spare node 0")]
    fn crashing_the_monitor_node_is_rejected() {
        run_ring(crash_plan(0, Some(10_000)), 10);
    }

    #[test]
    #[should_panic(expected = "call enable_ft")]
    fn ft_array_requires_enable_ft() {
        let mut c = Cluster::new(ClusterCfg::new(4, 2), Box::new(IdealLayer::new(1_000)));
        let aid = c.create_array("x", 4, |_| Cnt(0));
        c.ft_array::<Cnt>(aid);
    }

    #[test]
    #[should_panic(expected = "restart window without fault tolerance")]
    fn restart_windows_require_ft() {
        let mut cfg = ClusterCfg::new(8, 2);
        cfg.fault = crash_plan(1, Some(30_000));
        let mut c = Cluster::new(cfg, Box::new(IdealLayer::new(1_000)));
        c.run();
    }
}
