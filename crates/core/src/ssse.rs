//! A minimal ParSSSE-style state-space search engine (paper [19],
//! used by the N-Queens evaluation in §V-C).
//!
//! Tasks are self-contained payloads. Spawning a task sends it to a
//! uniformly random PE (the paper: "After a new task is dynamically
//! created, it is randomly assigned to a processor"), where the registered
//! task function either expands it into child tasks or solves it
//! sequentially, reporting results into a per-PE accumulator that is
//! summed after the run drains.

use crate::cluster::{Cluster, PeCtx};
use crate::msg::{HandlerId, PeId};
use bytes::Bytes;

/// Per-PE accumulator every SSSE app shares.
#[derive(Debug, Default, Clone)]
pub struct SsseStats {
    /// Tasks executed on this PE.
    pub tasks: u64,
    /// Application-defined result counter (e.g. solutions found).
    pub results: u64,
    /// Nodes/states expanded (for work accounting).
    pub nodes: u64,
}

/// Handle to a registered search.
#[derive(Debug, Clone, Copy)]
pub struct Ssse {
    handler: HandlerId,
}

impl Ssse {
    /// Register a search whose task function is `f(ctx, payload)`.
    /// The per-PE [`SsseStats`] lives alongside the user state `U`.
    pub fn register<U: 'static>(
        cluster: &mut Cluster,
        f: impl Fn(&mut PeCtx, &Ssse, Bytes) + Send + Sync + 'static,
    ) -> Ssse {
        // Self-referential handler: the task function gets the Ssse handle
        // so it can spawn children. HandlerId is assigned before the
        // closure can run, so materialize it in a cell.
        // thread-ok: write-once handler-id cell, set before the run starts.
        let cell = std::sync::Arc::new(std::sync::OnceLock::new());
        let cell2 = cell.clone();
        let h = cluster.register_handler(move |ctx, env| {
            let me = Ssse {
                handler: *cell2.get().expect("ssse handler registered"),
            };
            f(ctx, &me, env.payload);
        });
        cell.set(h).expect("set once");
        Ssse { handler: h }
    }

    /// Spawn a task on a uniformly random PE.
    pub fn spawn(&self, ctx: &mut PeCtx, payload: Bytes) {
        let n = ctx.num_pes() as u64;
        let dst = ctx.rng().below(n) as PeId;
        ctx.send(dst, self.handler, payload);
    }

    /// Spawn a task on a specific PE (used to seed the root).
    pub fn spawn_on(&self, ctx: &mut PeCtx, pe: PeId, payload: Bytes) {
        ctx.send(pe, self.handler, payload);
    }

    /// Seed the search from outside the simulation.
    pub fn seed(&self, cluster: &mut Cluster, at: sim_core::Time, pe: PeId, payload: Bytes) {
        cluster.inject(at, pe, self.handler, payload);
    }
}

/// Sum a field of [`SsseStats`] over all PEs after a run, given the stats
/// live in user state accessible by `get`.
pub fn sum_stats<U: 'static>(cluster: &Cluster, get: impl Fn(&U) -> &SsseStats) -> SsseStats {
    let mut total = SsseStats::default();
    for pe in 0..cluster.cfg.num_pes {
        let s = get(cluster.user::<U>(pe));
        total.tasks += s.tasks;
        total.results += s.results;
        total.nodes += s.nodes;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterCfg};
    use crate::ideal::IdealLayer;
    use crate::msg::wire;

    /// A toy search: count all leaves of a uniform tree of given depth and
    /// branching. Exact expected count = branch^depth.
    #[test]
    fn counts_leaves_of_uniform_tree() {
        let mut c = Cluster::new(ClusterCfg::new(8, 4), Box::new(IdealLayer::new(500)));
        c.init_user(|_| SsseStats::default());
        let ssse = Ssse::register::<SsseStats>(&mut c, |ctx, me, payload| {
            let depth = wire::unpack_u64(&payload, 0);
            let branch = wire::unpack_u64(&payload, 1);
            let st = ctx.user::<SsseStats>();
            st.tasks += 1;
            st.nodes += 1;
            if depth == 0 {
                st.results += 1;
                return;
            }
            for _ in 0..branch {
                me.spawn(ctx, wire::pack_u64s(&[depth - 1, branch]));
            }
        });
        ssse.seed(&mut c, 0, 0, wire::pack_u64s(&[5, 3]));
        c.run();
        let total = sum_stats::<SsseStats>(&c, |u| u);
        assert_eq!(total.results, 3u64.pow(5));
        // Total tasks = all tree nodes = (3^6 - 1) / 2.
        assert_eq!(total.tasks, (3u64.pow(6) - 1) / 2);
    }

    #[test]
    fn random_placement_spreads_work() {
        let mut c = Cluster::new(ClusterCfg::new(16, 4), Box::new(IdealLayer::new(500)));
        c.init_user(|_| SsseStats::default());
        let ssse = Ssse::register::<SsseStats>(&mut c, |ctx, me, payload| {
            let depth = wire::unpack_u64(&payload, 0);
            ctx.user::<SsseStats>().tasks += 1;
            if depth > 0 {
                for _ in 0..2 {
                    me.spawn(ctx, wire::pack_u64s(&[depth - 1]));
                }
            }
        });
        ssse.seed(&mut c, 0, 0, wire::pack_u64s(&[9]));
        c.run();
        let busy_pes = (0..16)
            .filter(|&pe| c.user::<SsseStats>(pe).tasks > 0)
            .count();
        assert!(busy_pes >= 14, "only {busy_pes}/16 PEs saw tasks");
    }
}
