//! Typed active messages with destination-batched small-message
//! aggregation (DESIGN.md §14).
//!
//! The Converse layer below this one is deliberately raw: handlers take an
//! [`Envelope`] and apps hand-roll byte packing per message. This module
//! adds the AM++/Charm++-style typed layer — register a handler once per
//! message *type* with [`Cluster::register_am`], send with
//! [`PeCtx::am_send`], and the runtime owns the encode/decode — and, under
//! it, the throughput feature the paper's SMSG economics beg for: small
//! AMs to the same destination are coalesced into one SMSG-sized buffer
//! and ride the wire as a single envelope, so the fixed per-message cost
//! (mailbox credit, CQ event, 32-byte header) is paid once per *batch*.
//!
//! A destination buffer is flushed when:
//!
//! * it cannot take the next AM without exceeding
//!   [`AmConfig::max_batch_bytes`] (the SMSG frame limit),
//! * its per-destination flush timer expires — a normal scheduled event
//!   at a fixed virtual delay, so flushing is deterministic and
//!   bit-replayable at any thread count,
//! * or quiescence detection polls the PE (`qd.rs` drains every buffer
//!   before reading the ledger, so buffered AMs can never wedge QD).
//!
//! Aggregation is opt-in per cluster ([`Cluster::am_config`]); with it off
//! (the default), `am_send` is byte-for-byte the plain [`PeCtx::send`] of
//! the same payload, which is what keeps every pre-existing wallclock pin
//! bit-identical.
//!
//! Charge discipline: the typed layer charges only `Kind::Overhead` time
//! ([`AmConfig::per_am_send_ns`] at append, [`AmConfig::per_am_dispatch_ns`]
//! per constituent at the receiver's sub-header walk, plus the one
//! `send_overhead` per flushed batch); handler bodies charge their own
//! `Kind::Busy` via [`PeCtx::charge`] exactly as raw handlers do.
//!
//! Exactly-once under faults: each constituent carries the membership
//! epoch it was appended in. The batch envelope itself is a *system*
//! message (it survives the recovery queue filter like any control
//! message), but the receiver walk re-applies the stale-epoch drop per
//! constituent, and crash wipes / rollback-replay clear the coalescing
//! buffers on every affected PE — so a constituent AM is delivered exactly
//! as often as its unaggregated twin would have been.

use crate::cluster::{Cluster, Cmd, Event, PeCtx};
use crate::msg::{Envelope, HandlerId, PeId, DEFAULT_PRIO};
use bytes::Bytes;
use sim_core::Time;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Payload codec for a typed active message. Encoding appends to the
/// destination's coalescing buffer (or a scratch buffer on the direct
/// path); decoding slices the batch zero-copy.
pub trait AmData: Sized + 'static {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(b: Bytes) -> Self;

    /// Payload for the direct (unaggregated) path. The default routes
    /// through [`AmData::encode`]; `Bytes` overrides it to pass its
    /// buffer through untouched, so a typed port of a raw-`send` app has
    /// identical wire bytes *and* identical host-side copy behavior.
    fn into_direct(self) -> Bytes {
        let mut v = Vec::new();
        self.encode(&mut v);
        Bytes::from(v)
    }
}

impl AmData for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_b: Bytes) -> Self {}
    fn into_direct(self) -> Bytes {
        Bytes::new()
    }
}

impl AmData for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(b: Bytes) -> Self {
        u32::from_le_bytes(b[..4].try_into().expect("u32 AM payload"))
    }
}

impl AmData for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(b: Bytes) -> Self {
        u64::from_le_bytes(b[..8].try_into().expect("u64 AM payload"))
    }
}

impl AmData for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(b: Bytes) -> Self {
        f64::from_le_bytes(b[..8].try_into().expect("f64 AM payload"))
    }
}

impl AmData for (u64, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
        out.extend_from_slice(&self.1.to_le_bytes());
    }
    fn decode(b: Bytes) -> Self {
        (
            u64::from_le_bytes(b[..8].try_into().expect("pair AM payload")),
            u64::from_le_bytes(b[8..16].try_into().expect("pair AM payload")),
        )
    }
}

impl<const N: usize> AmData for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(b: Bytes) -> Self {
        b[..N].try_into().expect("fixed-array AM payload")
    }
}

impl AmData for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(b: Bytes) -> Self {
        b
    }
    fn into_direct(self) -> Bytes {
        self
    }
}

/// Handle returned by [`Cluster::register_am`]: the AM's slot in the
/// batch-dispatch table plus its dedicated Converse handler for the
/// direct path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmId {
    pub(crate) idx: u16,
    pub(crate) h: HandlerId,
}

impl AmId {
    /// The plain Converse handler the direct (unaggregated) path uses.
    pub fn handler(&self) -> HandlerId {
        self.h
    }
}

/// Aggregation policy, set once before the run via [`Cluster::am_config`].
#[derive(Debug, Clone)]
pub struct AmConfig {
    /// Coalesce small same-destination AMs (default: off — `am_send` is
    /// then exactly a plain `send` of the encoded payload).
    pub aggregation: bool,
    /// Coalescing buffer capacity, batch framing included. Defaults to
    /// the SMSG frame size (1024 B) so a full batch always rides the
    /// small-message path; an AM whose framed size alone exceeds this
    /// bypasses aggregation entirely.
    pub max_batch_bytes: usize,
    /// Virtual-time bound on how long an appended AM may sit buffered
    /// before the per-destination flush timer fires.
    pub flush_delay_ns: Time,
    /// Overhead charged at append on the aggregated path, replacing the
    /// per-message `send_overhead` (paid once per batch instead).
    pub per_am_send_ns: Time,
    /// Overhead charged per constituent at the receiver's batch walk.
    pub per_am_dispatch_ns: Time,
}

impl Default for AmConfig {
    fn default() -> Self {
        AmConfig {
            aggregation: false,
            max_batch_bytes: 1024,
            flush_delay_ns: 5_000,
            per_am_send_ns: 30,
            per_am_dispatch_ns: 40,
        }
    }
}

/// Batch-payload op bytes: a dispatch envelope is either a batch of
/// constituent AMs or a per-destination flush-timer tick (self-send).
const OP_BATCH: u8 = 0;
const OP_TIMER: u8 = 1;

/// Per-constituent framing: `[am_idx u16][len u16][epoch u32]`, little
/// endian, followed by `len` payload bytes.
const SUBHDR: usize = 8;

/// Type-erased AM dispatch entry (the typed closure behind a decode).
type AmFn = Arc<dyn Fn(&mut PeCtx, PeId, Bytes) + Send + Sync>;

/// Global (per-cluster) AM state: the dispatch table, the lazily
/// registered batch/timer Converse handler, and the aggregation policy.
/// Shared immutably by workers during parallel windows.
#[derive(Default)]
pub(crate) struct AmRegistry {
    pub(crate) handlers: Vec<AmFn>,
    pub(crate) dispatch: Option<HandlerId>,
    pub(crate) cfg: AmConfig,
}

/// One destination's coalescing buffer.
#[derive(Default)]
struct DstBuf {
    /// Framed batch bytes (`OP_BATCH` + constituent frames); empty when
    /// nothing is buffered (the backing `Vec` is then in the pool).
    data: Vec<u8>,
    /// Whether a flush-timer tick is already in flight for this
    /// destination (one timer per destination at a time).
    timer_armed: bool,
}

/// Per-PE AM state: destination buffers plus the host-side recyclers for
/// coalescing buffers and the receiver's scatter scratch. Lives in
/// `PeState`, wiped with the rest of volatile PE state on crash and
/// rollback. Purely host-memory pools — virtual time never observes them.
pub(crate) struct AmPe {
    /// BTreeMap so flush-all order is deterministic.
    bufs: BTreeMap<PeId, DstBuf>,
    /// Recycles coalescing-buffer allocations (flush reclaims the sent
    /// buffer via `Bytes::try_reclaim`, so steady-state batching does not
    /// allocate per batch).
    pool: mempool::ObjPool<Vec<u8>>,
    /// Recycles the receiver walk's `(am_idx, epoch, start, end)` scatter
    /// scratch.
    scatter: mempool::ObjPool<Vec<(u16, u32, u32, u32)>>,
}

impl Default for AmPe {
    fn default() -> Self {
        AmPe {
            bufs: BTreeMap::new(),
            pool: mempool::ObjPool::new(16),
            scatter: mempool::ObjPool::new(4),
        }
    }
}

impl AmPe {
    /// Drop all buffered constituents (node crash / rollback-replay):
    /// they were sent in the dying epoch and the replay re-sends them.
    pub(crate) fn wipe(&mut self) {
        self.bufs.clear();
    }

    /// Host-side recycler stats of the coalescing-buffer pool.
    pub(crate) fn pool_stats(&self) -> mempool::ObjPoolStats {
        self.pool.stats.clone()
    }
}

impl Cluster {
    /// Set the aggregation policy (call before `run`, like handler
    /// registration).
    pub fn am_config(&mut self, cfg: AmConfig) {
        self.am.cfg = cfg;
    }

    /// Register a typed active-message handler. The returned [`AmId`] is
    /// `Copy` and is all a sender needs: [`PeCtx::am_send`] encodes the
    /// typed value, the runtime routes it (directly or batched), and `f`
    /// runs at the destination with the decoded value and the source PE.
    pub fn register_am<T: AmData>(
        &mut self,
        f: impl Fn(&mut PeCtx, PeId, T) + Send + Sync + 'static,
    ) -> AmId {
        self.am_ensure_dispatch();
        let f = Arc::new(f);
        let g = f.clone();
        let idx = self.am.handlers.len();
        assert!(idx <= u16::MAX as usize, "too many registered AMs");
        self.am
            .handlers
            .push(Arc::new(move |ctx, src, b| g(ctx, src, T::decode(b))));
        // The dedicated Converse handler carries the direct path: its wire
        // envelope is indistinguishable from a hand-rolled handler's.
        let h = self.register_handler(move |ctx, env| {
            let src = env.src_pe;
            f(ctx, src, T::decode(env.payload));
        });
        AmId { idx: idx as u16, h }
    }

    /// Register the shared batch/timer dispatch handler once, as a
    /// *system* handler: batches are transport framing, not application
    /// traffic — the QD ledger and the membership-epoch gate account per
    /// constituent instead (in `am_send` and the batch walk).
    fn am_ensure_dispatch(&mut self) {
        if self.am.dispatch.is_some() {
            return;
        }
        let h = self.register_handler(am_dispatch);
        self.am.dispatch = Some(h);
        self.system_handlers.insert(h.0);
    }

    /// Coalescing-buffer pool counters for one PE (test diagnostics).
    pub fn am_pool_stats(&mut self, pe: PeId) -> mempool::ObjPoolStats {
        self.pes.get_mut(pe as usize).am.pool_stats()
    }
}

impl PeCtx<'_> {
    /// Send a typed active message. Small AMs to remote destinations are
    /// coalesced when aggregation is on; self-sends, oversized AMs, and
    /// aggregation-off sends take the direct path (a plain [`PeCtx::send`]
    /// on the AM's dedicated handler — identical charges and wire bytes).
    pub fn am_send<T: AmData>(&mut self, dst: PeId, am: AmId, data: T) {
        let acfg = &self.am_reg.cfg;
        if !acfg.aggregation || dst == self.pe() {
            let payload = data.into_direct();
            return self.send(dst, am.h, payload);
        }
        let (max_batch, per_send, flush_delay) = (
            acfg.max_batch_bytes,
            acfg.per_am_send_ns,
            acfg.flush_delay_ns,
        );

        let mut scratch = self.am_pe.pool.get();
        data.encode(&mut scratch);
        if 1 + SUBHDR + scratch.len() > max_batch {
            // Too big to ever fit a batch frame: direct send. The scratch
            // allocation is consumed by the payload (and comes back to the
            // pool on the next reclaim cycle if the encode path frees it).
            let payload = Bytes::from(scratch);
            return self.send(dst, am.h, payload);
        }

        // Size-triggered flush before appending, so a batch never exceeds
        // the SMSG frame.
        let need = SUBHDR + scratch.len();
        let full = self
            .am_pe
            .bufs
            .get(&dst)
            .is_some_and(|b| !b.data.is_empty() && b.data.len() + need > max_batch);
        if full {
            self.am_flush_dst(dst);
        }

        let epoch = self.epoch();
        let arm = {
            let AmPe { bufs, pool, .. } = &mut *self.am_pe;
            let buf = bufs.entry(dst).or_default();
            if buf.data.is_empty() {
                buf.data = pool.get();
                buf.data.push(OP_BATCH);
            }
            buf.data.extend_from_slice(&am.idx.to_le_bytes());
            buf.data
                .extend_from_slice(&(scratch.len() as u16).to_le_bytes());
            buf.data.extend_from_slice(&epoch.to_le_bytes());
            buf.data.extend_from_slice(&scratch);
            let arm = !buf.timer_armed;
            buf.timer_armed = true;
            arm
        };
        scratch.clear();
        self.am_pe.pool.put(scratch);

        // Constituent-level accounting: the batch envelope is system
        // traffic, so the QD ledger and stats count the AM itself here.
        self.charged_ovh += per_send;
        self.qd_pe.sent += 1;
        self.stats.am_agg_sent += 1;

        if arm {
            // One timer tick per destination at a time: a fixed virtual
            // delay from the arming append, scheduled like any other
            // event, so flush points are bit-replayable.
            let dispatch = self.am_reg.dispatch.expect("am dispatch registered");
            let mut tp = Vec::with_capacity(5);
            tp.push(OP_TIMER);
            tp.extend_from_slice(&dst.to_le_bytes());
            let me = self.pe();
            self.send_after_prio(flush_delay, me, dispatch, Bytes::from(tp), DEFAULT_PRIO);
        }
    }

    /// Flush every non-empty coalescing buffer (deterministic destination
    /// order). QD's collect handler calls this before reading the ledger;
    /// apps may call it at phase boundaries.
    pub fn am_flush_all(&mut self) {
        let first = match self.am_pe.bufs.iter().find(|(_, b)| !b.data.is_empty()) {
            Some((d, _)) => *d,
            None => return,
        };
        let mut cur = Some(first);
        while let Some(dst) = cur {
            self.am_flush_dst(dst);
            cur = self
                .am_pe
                .bufs
                .range(dst + 1..)
                .find(|(_, b)| !b.data.is_empty())
                .map(|(d, _)| *d);
        }
    }

    /// Flush one destination's buffer as a single batch envelope on the
    /// dispatch handler. Mirrors the manual half of [`PeCtx::send`]
    /// (charges, stats, outbox routing) but reclaims the coalescing
    /// buffer through the pool instead of dropping it.
    fn am_flush_dst(&mut self, dst: PeId) {
        let data = match self.am_pe.bufs.get_mut(&dst) {
            Some(buf) if !buf.data.is_empty() => std::mem::take(&mut buf.data),
            _ => return,
        };
        debug_assert_ne!(dst, self.pe(), "self-sends never aggregate");
        let dispatch = self.am_reg.dispatch.expect("am dispatch registered");
        self.charged_ovh += self.cfg.send_overhead;
        let at = self.now();
        let env =
            Envelope::new(self.pe(), dst, dispatch, Bytes::from(data)).with_epoch(self.epoch());
        let bytes = env.encode();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        self.stats.am_batches += 1;
        let src = self.pe();
        self.outbox
            .push((at, Event::Cmd(src, Cmd::Send { dst, msg: bytes })));
        // A batch is at most max_batch_bytes <= the inline-wire limit, so
        // encode copied it into the wire buffer and the payload handle is
        // the sole owner again: reclaim the allocation for the next batch.
        if let Ok(mut v) = env.payload.try_reclaim() {
            v.clear();
            self.am_pe.pool.put(v);
        }
    }
}

/// The Converse handler behind every batch envelope and flush-timer tick.
/// Worker-pure: everything it touches is per-PE state reached through
/// `PeCtx`, and its sends go through the buffered outbox.
pub(crate) fn am_dispatch(ctx: &mut PeCtx, env: Envelope) {
    let p: &[u8] = &env.payload;
    match p[0] {
        OP_TIMER => {
            let dst = PeId::from_le_bytes(p[1..5].try_into().expect("timer payload"));
            if let Some(buf) = ctx.am_pe.bufs.get_mut(&dst) {
                buf.timer_armed = false;
            }
            ctx.am_flush_dst(dst);
        }
        OP_BATCH => {
            // Sub-header walk into pooled scatter scratch first, then
            // dispatch: constituents may re-enter `am_send`, so no
            // borrow of the AM state survives into the handler calls.
            let mut segs = ctx.am_pe.scatter.get();
            let mut o = 1usize;
            while o + SUBHDR <= p.len() {
                let idx = u16::from_le_bytes([p[o], p[o + 1]]);
                let len = u16::from_le_bytes([p[o + 2], p[o + 3]]) as usize;
                let epoch = u32::from_le_bytes([p[o + 4], p[o + 5], p[o + 6], p[o + 7]]);
                segs.push((idx, epoch, (o + SUBHDR) as u32, (o + SUBHDR + len) as u32));
                o += SUBHDR + len;
            }
            assert_eq!(o, p.len(), "malformed AM batch framing");
            let cur = ctx.epoch();
            let per_dispatch = ctx.am_reg.cfg.per_am_dispatch_ns;
            for &(idx, am_epoch, a, b) in segs.iter() {
                if am_epoch < cur {
                    // Stale-epoch drop per constituent (exactly-once under
                    // rollback-replay), mirroring the driver's gate for
                    // unaggregated messages.
                    ctx.stats.ft_stale_drops += 1;
                    continue;
                }
                ctx.qd_pe.delivered += 1;
                ctx.charged_ovh += per_dispatch;
                let h = ctx.am_reg.handlers[idx as usize].clone();
                h(ctx, env.src_pe, env.payload.slice(a as usize..b as usize));
            }
            segs.clear();
            ctx.am_pe.scatter.put(segs);
        }
        op => panic!("unknown AM dispatch op {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterCfg;
    use crate::ideal::IdealLayer;

    fn cluster(pes: u32) -> Cluster {
        Cluster::new(ClusterCfg::new(pes, 2), Box::new(IdealLayer::new(1_000)))
    }

    /// Per-PE test state: a running sum and a message count.
    #[derive(Default)]
    struct St {
        sum: u64,
        n: u64,
        from: Vec<PeId>,
    }

    fn sum_app(c: &mut Cluster, agg: bool, sends_per_pe: u64) -> (u64, u64, Time) {
        c.am_config(AmConfig {
            aggregation: agg,
            ..AmConfig::default()
        });
        c.init_user(|_| St::default());
        let bump = c.register_am::<u64>(|ctx, src, v| {
            let st = ctx.user::<St>();
            st.sum += v;
            st.n += 1;
            st.from.push(src);
        });
        let kick = c.register_handler(move |ctx, _| {
            let n = ctx.num_pes();
            for i in 0..sends_per_pe {
                let dst = (ctx.pe() + 1 + (i as u32 % (n - 1))) % n;
                ctx.am_send(dst, bump, i);
            }
        });
        for pe in 0..c.cfg.num_pes {
            c.inject(0, pe, kick, Bytes::new());
        }
        let r = c.run();
        let (mut sum, mut n) = (0, 0);
        for pe in 0..c.cfg.num_pes {
            let st = c.user::<St>(pe);
            sum += st.sum;
            n += st.n;
        }
        (sum, n, r.end_time)
    }

    #[test]
    fn typed_round_trip_direct() {
        let mut c = cluster(4);
        let (sum, n, _) = sum_app(&mut c, false, 10);
        assert_eq!(n, 40);
        assert_eq!(sum, 4 * (0..10).sum::<u64>());
        assert_eq!(c.stats().am_agg_sent, 0);
        assert_eq!(c.stats().am_batches, 0);
    }

    #[test]
    fn aggregated_run_same_results_fewer_envelopes_less_virtual_time() {
        let mut direct = cluster(4);
        let (ds, dn, dv) = sum_app(&mut direct, false, 50);
        let mut agg = cluster(4);
        let (asum, an, av) = sum_app(&mut agg, true, 50);
        assert_eq!((asum, an), (ds, dn), "aggregation changed app results");
        assert!(agg.stats().am_batches > 0, "nothing was batched");
        assert_eq!(agg.stats().am_agg_sent, 200);
        assert!(
            agg.stats().msgs_sent < direct.stats().msgs_sent,
            "batching must shrink envelope count: {} vs {}",
            agg.stats().msgs_sent,
            direct.stats().msgs_sent
        );
        assert!(
            av < dv,
            "many small AMs must finish earlier aggregated: {av} vs {dv}"
        );
    }

    #[test]
    fn aggregated_src_pe_is_preserved_per_constituent() {
        let mut c = cluster(3);
        c.am_config(AmConfig {
            aggregation: true,
            ..AmConfig::default()
        });
        c.init_user(|_| St::default());
        let h = c.register_am::<u64>(|ctx, src, v| {
            assert_eq!(v as u32, src, "payload encodes the true sender");
            ctx.user::<St>().n += 1;
        });
        let kick = c.register_handler(move |ctx, _| {
            for _ in 0..4 {
                ctx.am_send(2, h, ctx.pe() as u64);
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        c.inject(0, 1, kick, Bytes::new());
        c.run();
        assert_eq!(c.user::<St>(2).n, 8);
    }

    #[test]
    fn size_limit_splits_batches() {
        let mut c = cluster(2);
        c.am_config(AmConfig {
            aggregation: true,
            max_batch_bytes: 64, // 3 u64 frames (16 B each) per batch
            flush_delay_ns: 1_000_000,
            ..AmConfig::default()
        });
        c.init_user(|_| St::default());
        let h = c.register_am::<u64>(|ctx, _, _| ctx.user::<St>().n += 1);
        let kick = c.register_handler(move |ctx, _| {
            for i in 0..10u64 {
                ctx.am_send(1, h, i);
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        assert_eq!(c.user::<St>(1).n, 10);
        // 10 frames at 3 per batch: three full flushes plus the timer tail.
        assert_eq!(c.stats().am_batches, 4);
    }

    #[test]
    fn oversized_am_takes_the_direct_path() {
        let mut c = cluster(2);
        c.am_config(AmConfig {
            aggregation: true,
            max_batch_bytes: 32,
            ..AmConfig::default()
        });
        c.init_user(|_| St::default());
        let h = c.register_am::<Bytes>(|ctx, _, b| {
            ctx.user::<St>().sum += b.len() as u64;
            ctx.user::<St>().n += 1;
        });
        let kick = c.register_handler(move |ctx, _| {
            ctx.am_send(1, h, Bytes::from(vec![0u8; 100]));
            ctx.am_send(1, h, Bytes::from(vec![0u8; 4]));
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        let st = c.user::<St>(1);
        assert_eq!((st.n, st.sum), (2, 104));
        assert_eq!(c.stats().am_agg_sent, 1, "only the small AM aggregates");
    }

    #[test]
    fn timer_drains_a_sub_threshold_buffer() {
        let mut c = cluster(2);
        c.am_config(AmConfig {
            aggregation: true,
            ..AmConfig::default()
        });
        c.init_user(|_| St::default());
        let h = c.register_am::<u64>(|ctx, _, v| ctx.user::<St>().sum += v);
        let kick = c.register_handler(move |ctx, _| {
            ctx.am_send(1, h, 41u64);
            ctx.am_send(1, h, 1u64);
        });
        c.inject(0, 0, kick, Bytes::new());
        let r = c.run();
        assert_eq!(c.user::<St>(1).sum, 42, "timer flush never fired");
        assert_eq!(c.stats().am_batches, 1);
        assert!(r.end_time > 5_000, "flush waited out the timer delay");
    }

    #[test]
    fn flush_reclaims_buffers_through_the_pool() {
        let mut c = cluster(2);
        c.am_config(AmConfig {
            aggregation: true,
            max_batch_bytes: 64,
            ..AmConfig::default()
        });
        c.init_user(|_| St::default());
        let h = c.register_am::<u64>(|ctx, _, _| ctx.user::<St>().n += 1);
        let kick = c.register_handler(move |ctx, _| {
            for i in 0..60u64 {
                ctx.am_send(1, h, i);
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        assert_eq!(c.user::<St>(1).n, 60);
        let s = c.am_pool_stats(0);
        assert!(
            s.hits > s.misses,
            "steady-state batching must recycle, not allocate: {s:?}"
        );
    }

    #[test]
    fn self_sends_and_aggregation_off_are_plain_sends() {
        // Bit-identical end times: am_send with aggregation off vs the
        // hand-rolled handler it replaces.
        let run = |typed: bool| {
            let mut c = cluster(4);
            c.init_user(|_| St::default());
            if typed {
                let h = c.register_am::<u64>(|ctx, _, v| ctx.user::<St>().sum += v);
                let kick = c.register_handler(move |ctx, _| {
                    ctx.am_send(ctx.pe(), h, 7u64); // self-send
                    ctx.am_send((ctx.pe() + 1) % 4, h, 9u64);
                });
                c.inject(0, 0, kick, Bytes::new());
            } else {
                // The hand-rolled equivalent: dispatch handler first so the
                // handler-id layout matches register_am's.
                let _dispatch_slot = c.register_handler(|_, _| {});
                let h = c.register_handler(|ctx, env| {
                    let v = u64::from_le_bytes(env.payload[..8].try_into().unwrap());
                    ctx.user::<St>().sum += v;
                });
                let kick = c.register_handler(move |ctx, _| {
                    ctx.send(ctx.pe(), h, crate::msg::wire::pack_u64s(&[7]));
                    ctx.send((ctx.pe() + 1) % 4, h, crate::msg::wire::pack_u64s(&[9]));
                });
                c.inject(0, 0, kick, Bytes::new());
            }
            let r = c.run();
            (
                r.end_time,
                r.stats.events,
                c.user::<St>(0).sum + c.user::<St>(1).sum,
            )
        };
        assert_eq!(run(true), run(false));
    }
}
