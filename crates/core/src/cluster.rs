//! The sequential discrete-event driver binding Converse schedulers,
//! a machine layer, and the simulated fabric into one runnable job.
//!
//! Execution model (DESIGN.md §3): every PE owns a Converse scheduler — a
//! FIFO of delivered envelopes. Handlers are real Rust closures executed at
//! their virtual start time; they account for computation with
//! [`PeCtx::charge`] and their sends are timestamped at the PE-local
//! virtual time at which they were issued. A PE processes one message at a
//! time (`busy_until`); machine-layer progress for a PE is deferred while
//! that PE is busy, which is exactly how a non-SMP Charm++ process only
//! advances the network between handler executions — the mechanism behind
//! the paper's Fig. 10 and Fig. 12 observations.

use crate::charm::{CharmPe, CharmRegistry};
use crate::ft::{FtCore, FtSnapshot};
use crate::lrts::{MachineLayer, PersistentHandle};
use crate::msg::{Envelope, HandlerId, PeId};
use crate::pe_table::PeTable;
use crate::qd::{QdPe, QdState};
use crate::trace::{Kind, Trace, TraceOp};
use bytes::Bytes;
use gemini_net::NodeId;
use sim_core::parallel::{partition_ranges, run_pool, EvKey, KeyedQueue};
use sim_core::{DetRng, EventQueue, Time};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Default for [`ClusterCfg::threads`] (see [`set_default_threads`]).
    static DEFAULT_THREADS: std::cell::Cell<u32> = const { std::cell::Cell::new(1) };
    /// Default for [`ClusterCfg::batch_windows`] (see
    /// [`set_default_batch_windows`]).
    static DEFAULT_BATCH_WINDOWS: std::cell::Cell<u32> = const { std::cell::Cell::new(4) };
    /// Default for [`ClusterCfg::handoff_min_events`] (see
    /// [`set_default_handoff_min_events`]).
    static DEFAULT_HANDOFF_MIN: std::cell::Cell<u32> = const { std::cell::Cell::new(16) };
    /// Barrier-wait nanoseconds accumulated by parallel runs on this
    /// thread since the last [`take_sync_overhead_ns`].
    static SYNC_OVERHEAD: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Set the worker count newly built [`ClusterCfg`]s default to (clamped to
/// at least 1). Thread-local, so harnesses running independent simulations
/// on a thread pool don't race: each harness thread configures its own
/// default and every app built on it inherits `--threads` with zero churn.
///
/// Requests beyond `std::thread::available_parallelism()` are capped to it
/// (with a one-line stderr warning, printed once per process): on a small
/// box, oversubscribed workers fight the scheduler at every window barrier
/// and parallel runs regress instead of winning. Set the
/// `CHARM_FORCE_THREADS` environment variable (any value) — or call
/// [`set_default_threads_forced`] — to bypass the cap, e.g. for
/// determinism suites that must exercise the parallel engine regardless
/// of host size.
pub fn set_default_threads(n: u32) {
    let n = n.max(1);
    if std::env::var_os("CHARM_FORCE_THREADS").is_some() {
        DEFAULT_THREADS.with(|c| c.set(n));
        return;
    }
    let hw = std::thread::available_parallelism()
        .map(|p| p.get() as u32)
        .unwrap_or(1);
    if n > hw {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "charm-rt: capping threads {n} -> {hw} (available_parallelism); \
                 set CHARM_FORCE_THREADS=1 to override"
            );
        });
        DEFAULT_THREADS.with(|c| c.set(hw));
    } else {
        DEFAULT_THREADS.with(|c| c.set(n));
    }
}

/// [`set_default_threads`] without the `available_parallelism()` cap.
/// For harnesses that must drive the parallel engine at an exact worker
/// count — the differential/proptest suites and the wallclock sweep pin
/// virtual results (and meter sync overhead) at thread counts the host
/// may not physically have.
pub fn set_default_threads_forced(n: u32) {
    DEFAULT_THREADS.with(|c| c.set(n.max(1)));
}

/// The current thread's default for [`ClusterCfg::threads`].
pub fn default_threads() -> u32 {
    DEFAULT_THREADS.with(|c| c.get())
}

/// Set the window-batch depth newly built [`ClusterCfg`]s default to
/// (clamped to at least 1). See [`ClusterCfg::batch_windows`].
pub fn set_default_batch_windows(k: u32) {
    DEFAULT_BATCH_WINDOWS.with(|c| c.set(k.max(1)));
}

/// The current thread's default for [`ClusterCfg::batch_windows`].
pub fn default_batch_windows() -> u32 {
    DEFAULT_BATCH_WINDOWS.with(|c| c.get())
}

/// Set the hand-off work floor newly built [`ClusterCfg`]s default to.
/// See [`ClusterCfg::handoff_min_events`]; 0 hands off every eligible
/// window (the determinism suites use this to keep the worker path fully
/// exercised on tiny configurations).
pub fn set_default_handoff_min_events(n: u32) {
    DEFAULT_HANDOFF_MIN.with(|c| c.set(n));
}

/// The current thread's default for [`ClusterCfg::handoff_min_events`].
pub fn default_handoff_min_events() -> u32 {
    DEFAULT_HANDOFF_MIN.with(|c| c.get())
}

/// Drain this thread's accumulated parallel-sync overhead meter: the
/// nanoseconds runs since the last call spent waiting at pool barriers
/// (as opposed to executing events). Always 0 for sequential runs.
pub fn take_sync_overhead_ns() -> u64 {
    SYNC_OVERHEAD.with(|c| c.replace(0))
}

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterCfg {
    pub num_pes: u32,
    pub cores_per_node: u32,
    /// Converse scheduler cost per executed handler (dequeue + dispatch).
    pub sched_overhead: Time,
    /// Converse-level cost of issuing one send (envelope setup), excluding
    /// everything the machine layer charges.
    pub send_overhead: Time,
    /// Timeline bucket width for Fig.-12-style profiles (None = totals only).
    pub trace_bucket: Option<Time>,
    /// Safety valve for runaway simulations.
    pub max_events: u64,
    /// Seed for all per-PE deterministic RNGs.
    pub seed: u64,
    /// Chaos knob: the fault plan active in the machine layer's fabric (the
    /// inert default injects nothing). Kept here so drivers and reports can
    /// see at the cluster level whether a run was a chaos run.
    pub fault: gemini_net::FaultPlan,
    /// Worker threads for [`Cluster::run`]: 1 = sequential engine, N > 1 =
    /// conservative parallel execution over node partitions (bit-identical
    /// results — see DESIGN.md §10). Defaults to [`default_threads`].
    pub threads: u32,
    /// Consecutive lookahead windows a worker may execute per barrier
    /// crossing (≥ 1). Workers publish a per-partition frontier once per
    /// window and bound themselves by the other partitions' frontiers
    /// plus the lookahead, so deeper batches amortize the barrier without
    /// changing any virtual timestamp (DESIGN.md §10). Defaults to
    /// [`default_batch_windows`].
    pub batch_windows: u32,
    /// Minimum events queued across the window's ready partitions before
    /// the driver wakes the worker pool; smaller windows execute inline
    /// on the driver thread in the same canonical order (bit-identical,
    /// just cheaper than a barrier round-trip for a handful of events).
    /// Defaults to [`default_handoff_min_events`].
    pub handoff_min_events: u32,
}

impl ClusterCfg {
    pub fn new(num_pes: u32, cores_per_node: u32) -> Self {
        ClusterCfg {
            num_pes,
            cores_per_node,
            sched_overhead: 200,
            send_overhead: 100,
            trace_bucket: None,
            max_events: 2_000_000_000,
            seed: 0xC0FFEE,
            fault: gemini_net::FaultPlan::default(),
            threads: default_threads(),
            batch_windows: default_batch_windows(),
            handoff_min_events: default_handoff_min_events(),
        }
    }

    pub fn num_nodes(&self) -> u32 {
        self.num_pes.div_ceil(self.cores_per_node)
    }
}

/// Commands from application handlers to the machine layer, executed at
/// the PE-local virtual time they were issued (this keeps all fabric calls
/// globally time-ordered).
pub enum Cmd {
    Send {
        dst: PeId,
        msg: Bytes,
    },
    CreatePersistent {
        dst: PeId,
        max_bytes: u64,
        handle: PersistentHandle,
    },
    SendPersistent {
        handle: PersistentHandle,
        dst: PeId,
        msg: Bytes,
    },
}

/// Simulation events.
pub enum Event {
    /// Let the PE's Converse scheduler run one message.
    PeRun(PeId),
    /// Hand an encoded envelope to a PE's scheduler queue.
    Deliver(PeId, Bytes),
    /// Machine-layer-specific event, processed when the PE is free.
    Machine(PeId, Box<dyn Any + Send>),
    /// Machine-layer event processed at its exact time even if the PE is
    /// busy (protocol continuations whose CPU cost was already charged).
    MachineNow(PeId, Box<dyn Any + Send>),
    /// Drain a PE's parked machine events now that it may be free.
    ParkedWake(PeId),
    /// Application command issued from a handler on `PeId`.
    Cmd(PeId, Cmd),
    /// A node goes down (`up = false`, volatile state lost) or a fresh
    /// incarnation boots (`up = true`). Scheduled from the fault plan's
    /// crash windows at cluster construction.
    NodeLife(NodeId, bool),
    /// Enact crash recovery for a declared-dead node (scheduled by the
    /// failure detector; waits for the node's restart when one is coming).
    FtRecover(NodeId),
}

pub(crate) struct PeState {
    /// Prioritized Converse scheduler queue: (priority, seq) ordering,
    /// FIFO within a priority (Charm++'s prioritized execution).
    pub(crate) queue: std::collections::BinaryHeap<std::cmp::Reverse<PrioEnv>>,
    queue_seq: u64,
    pub(crate) busy_until: Time,
    pub(crate) run_scheduled: bool,
    /// Machine events deferred while this PE was busy, drained by a single
    /// ParkedWake event (re-queueing each one individually is quadratic
    /// under load).
    parked: VecDeque<Box<dyn Any + Send>>,
    parked_wake: bool,
    pub(crate) user: Box<dyn Any + Send>,
    rng: DetRng,
    pub(crate) charm: CharmPe,
    /// Typed-AM per-PE state: destination coalescing buffers + host-side
    /// buffer recyclers (am.rs).
    pub(crate) am: crate::am::AmPe,
    qd: QdPe,
    /// Per-PE persistent-channel handle counter. Handles are namespaced by
    /// PE (`pe << 32 | local`) so allocation is identical no matter which
    /// thread executes the PE in parallel mode.
    next_persistent: u64,
    /// This PE's own latest checkpoint (survivors roll back to it).
    pub(crate) ft_local: Option<Arc<FtSnapshot>>,
    /// Buddy copies this PE holds for remote PEs (keyed by owner PE;
    /// BTreeMap so recovery scans are deterministic).
    pub(crate) ft_buddy: std::collections::BTreeMap<PeId, Arc<FtSnapshot>>,
}

impl PeState {
    /// A pristine per-PE state. This must stay a *pure* function of
    /// `(seed, pe)`: the flyweight table (pe_table.rs) materializes states
    /// lazily, and lazy-vs-eager construction is only unobservable while
    /// a fresh state depends on nothing but its coordinates.
    pub(crate) fn fresh(seed: u64, pe: u64) -> Self {
        PeState {
            queue: std::collections::BinaryHeap::new(),
            queue_seq: 0,
            busy_until: 0,
            run_scheduled: false,
            parked: VecDeque::new(),
            parked_wake: false,
            user: Box::new(()),
            rng: DetRng::derive(seed, pe),
            charm: CharmPe::default(),
            am: crate::am::AmPe::default(),
            qd: QdPe::default(),
            next_persistent: 0,
            ft_local: None,
            ft_buddy: std::collections::BTreeMap::new(),
        }
    }

    #[cfg(test)]
    pub(crate) fn rng_mut(&mut self) -> &mut DetRng {
        &mut self.rng
    }
}

/// Queue entry ordered by (priority, arrival sequence).
pub(crate) struct PrioEnv {
    prio: u16,
    seq: u64,
    pub(crate) env: Envelope,
}

impl PartialEq for PrioEnv {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl Eq for PrioEnv {}
impl PartialOrd for PrioEnv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioEnv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.seq).cmp(&(other.prio, other.seq))
    }
}

/// Aggregate run statistics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ClusterStats {
    pub events: u64,
    /// Event-type breakdown: [PeRun, Deliver, Machine, MachineNow, Cmd]
    /// (NodeLife/FtRecover count under the Machine bucket).
    pub event_kinds: [u64; 5],
    pub handlers_run: u64,
    pub msgs_sent: u64,
    pub msgs_delivered: u64,
    pub bytes_sent: u64,
    /// Messages / bytes that actually crossed the machine layer (excludes
    /// Converse self-send loopback).
    pub net_msgs: u64,
    pub net_bytes: u64,
    /// Events discarded because their target node was inside a crash
    /// window (its cores and NIC were dead).
    pub ft_dead_drops: u64,
    /// Messages discarded because they were sent in a pre-recovery
    /// membership epoch (rollback-replay exactly-once).
    pub ft_stale_drops: u64,
    /// Typed AMs that were appended to a destination coalescing buffer
    /// (constituents, not envelopes — am.rs).
    pub am_agg_sent: u64,
    /// Batch envelopes flushed by the AM aggregation engine.
    pub am_batches: u64,
}

/// Result of [`Cluster::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time of the last processed event.
    pub end_time: Time,
    pub stats: ClusterStats,
    pub stopped_early: bool,
}

/// A complete simulated job.
pub struct Cluster {
    /// Shared immutable configuration: one copy behind an `Arc`, no
    /// matter how many PEs, workers, or report handles look at it.
    pub cfg: Arc<ClusterCfg>,
    now: Time,
    pub(crate) events: EventQueue<Event>,
    pub(crate) pes: PeTable,
    layer: Option<Box<dyn MachineLayer>>,
    #[allow(clippy::type_complexity)]
    handlers: Vec<Arc<dyn Fn(&mut PeCtx, Envelope) + Send + Sync>>,
    pub(crate) charm: CharmRegistry,
    /// Typed-AM dispatch table + aggregation policy (am.rs).
    pub(crate) am: crate::am::AmRegistry,
    pub(crate) trace: Trace,
    stats: ClusterStats,
    stopped: bool,
    /// Handlers whose traffic is excluded from quiescence counting and
    /// from the membership-epoch gate (QD's control messages and the FT
    /// control plane — heartbeats and detector ticks are epoch-agnostic).
    pub(crate) system_handlers: std::collections::HashSet<u16>,
    qd: Option<QdState>,
    /// Per-node liveness under the fault plan's crash windows: a down
    /// node's events are discarded at dispatch (its cores are dead).
    pub(crate) node_down: Vec<bool>,
    /// True when any crash-window machinery is armed (crash windows in the
    /// plan or the FT subsystem installed): gates the per-event liveness
    /// and epoch checks so crash-free runs pay nothing.
    pub(crate) crash_gate: bool,
    /// Fault-tolerance subsystem state (heartbeat failure detector + buddy
    /// checkpointing), installed by [`Cluster::enable_ft`].
    pub(crate) ft: Option<FtCore>,
    /// Host-side recycler for handler outbox vectors: the scheduler runs
    /// one handler per `PeRun`, and a malloc/free pair per handler is the
    /// single hottest host allocation at scale. Purely a host-memory
    /// optimization — virtual time never observes it.
    outbox_pool: mempool::ObjPool<Vec<(Time, Event)>>,
    /// Recycles the parallel driver's per-partition `ExecOut` scratch
    /// buffers (trace/cmd/outbox vectors) across `run_parallel` calls.
    /// Host-memory only — virtual time never observes it.
    exec_pool: mempool::ObjPool<ExecOut>,
}

impl Cluster {
    pub fn new(cfg: ClusterCfg, layer: Box<dyn MachineLayer>) -> Self {
        if let Err(e) = cfg.fault.validate() {
            panic!("invalid fault plan: {e}");
        }
        let trace = Trace::new(cfg.num_pes, cfg.trace_bucket);
        // Per-PE state is a lazily materialized flyweight: nothing is
        // allocated here, PEs spring into (deterministic) existence on
        // first touch (pe_table.rs).
        let pes = PeTable::new(cfg.num_pes, cfg.seed);
        let node_down = vec![false; cfg.num_nodes() as usize];
        let crash_gate = cfg.fault.has_node_crash();
        let mut c = Cluster {
            cfg: Arc::new(cfg),
            now: 0,
            events: EventQueue::new(),
            pes,
            layer: Some(layer),
            handlers: Vec::new(),
            charm: CharmRegistry::default(),
            am: crate::am::AmRegistry::default(),
            trace,
            stats: ClusterStats::default(),
            stopped: false,
            system_handlers: std::collections::HashSet::new(),
            qd: None,
            node_down,
            crash_gate,
            ft: None,
            outbox_pool: mempool::ObjPool::new(4),
            exec_pool: mempool::ObjPool::new(16),
        };
        // Handler 0 is reserved for the Charm dispatch (arrays, broadcast,
        // reductions — see charm.rs).
        let h = c.register_handler(crate::charm::dispatch);
        debug_assert_eq!(h, crate::charm::CHARM_HANDLER);
        // Schedule the plan's crash windows as first-class events.
        for w in c.cfg.fault.node_crash.clone() {
            assert!(
                w.node < c.cfg.num_nodes(),
                "crash window names node {} but the job has {} nodes",
                w.node,
                c.cfg.num_nodes()
            );
            c.events.push(w.at_ns, Event::NodeLife(w.node, false));
            if let Some(r) = w.restart_at() {
                c.events.push(r, Event::NodeLife(w.node, true));
            }
        }
        // Give the machine layer its LrtsInit call at t=0.
        let mut layer = c.layer.take().expect("layer");
        {
            let mut ctx = MachineCtx {
                now: 0,
                cfg: &c.cfg,
                back: McBack::Seq {
                    pes: &mut c.pes,
                    events: &mut c.events,
                },
                trace: &mut c.trace,
                stats: &mut c.stats,
            };
            layer.init(&mut ctx);
        }
        c.layer = Some(layer);
        c
    }

    /// Register a Converse handler; returns its id. Handlers must be
    /// `Send + Sync` because parallel runs execute them from worker
    /// threads (shared immutably, one PE at a time).
    pub fn register_handler(
        &mut self,
        f: impl Fn(&mut PeCtx, Envelope) + Send + Sync + 'static,
    ) -> HandlerId {
        self.handlers.push(Arc::new(f));
        HandlerId(self.handlers.len() as u16 - 1)
    }

    /// Install per-PE user state. Inherently eager — it materializes
    /// every PE. Whole-machine apps do exactly that anyway; sparse
    /// jobs at huge PE counts should install state from handlers instead.
    pub fn init_user<T: Send + 'static>(&mut self, mut f: impl FnMut(PeId) -> T) {
        for pe in 0..self.cfg.num_pes {
            self.pes.get_mut(pe as usize).user = Box::new(f(pe));
        }
    }

    /// Read back per-PE user state after a run.
    pub fn user<T: 'static>(&self, pe: PeId) -> &T {
        self.pes
            .get(pe as usize)
            .user
            .downcast_ref()
            .expect("user state type mismatch")
    }

    pub fn user_mut<T: 'static>(&mut self, pe: PeId) -> &mut T {
        self.pes
            .get_mut(pe as usize)
            .user
            .downcast_mut()
            .expect("user state type mismatch")
    }

    /// Install quiescence detection state (see [`crate::qd::register`]).
    pub(crate) fn install_qd(&mut self, st: QdState, system: &[HandlerId]) {
        self.qd = Some(st);
        for h in system {
            self.system_handlers.insert(h.0);
        }
    }

    /// Seed the job with an initial message (like a mainchare entry).
    pub fn inject(&mut self, at: Time, dst: PeId, handler: HandlerId, payload: Bytes) {
        let env = Envelope::new(dst, dst, handler, payload);
        // Balance the quiescence ledger: an injection is an external send.
        if !self.system_handlers.contains(&handler.0) {
            self.pes.get_mut(dst as usize).qd.sent += 1;
        }
        self.events.push(at, Event::Deliver(dst, env.encode()));
    }

    /// Direct access to the machine layer (e.g. to read its stats after a
    /// run).
    pub fn layer_mut<T: 'static>(&mut self) -> &mut T {
        self.layer
            .as_mut()
            .expect("layer")
            .as_any()
            .downcast_mut()
            .expect("layer type mismatch")
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enable the per-PE Projections-style segment log (see
    /// [`Trace::export_log`]); call before `run`.
    pub fn enable_trace_log(&mut self) {
        self.trace.enable_log();
    }

    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Pages of per-PE driver state currently materialized (memory
    /// diagnostics; see pe_table.rs and DESIGN.md §13). A sparse job on a
    /// huge machine should report far fewer than [`Self::total_pe_pages`].
    pub fn materialized_pe_pages(&self) -> usize {
        self.pes.materialized_pages()
    }

    /// Page count a fully dense machine would materialize — the
    /// denominator for [`Self::materialized_pe_pages`].
    pub fn total_pe_pages(&self) -> usize {
        (self.cfg.num_pes as usize).div_ceil(crate::pe_table::PE_PAGE_LEN)
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn node_of(&self, pe: PeId) -> NodeId {
        pe / self.cfg.cores_per_node
    }

    /// Run until the event queue drains, a handler calls [`PeCtx::stop`],
    /// or `max_events` is hit. With `cfg.threads > 1` this dispatches to
    /// [`Cluster::run_parallel`]; results are bit-identical either way.
    pub fn run(&mut self) -> RunReport {
        if self.ft.is_some() {
            assert!(
                self.qd.is_none(),
                "fault tolerance and quiescence detection cannot be combined \
                 (QD's global ledger has no rollback story)"
            );
            self.ft_bootstrap();
        } else {
            assert!(
                !self
                    .cfg
                    .fault
                    .node_crash
                    .iter()
                    .any(|w| w.restart_after_ns.is_some()),
                "a restart window without fault tolerance rejoins an empty node: \
                 call enable_ft() or drop restart_after_ns"
            );
        }
        if self.cfg.threads > 1 {
            self.run_parallel(self.cfg.threads)
        } else {
            self.run_seq()
        }
    }

    /// The sequential engine (`threads = 1` degenerate case).
    fn run_seq(&mut self) -> RunReport {
        while !self.stopped {
            if self.stats.events >= self.cfg.max_events {
                panic!(
                    "simulation exceeded max_events={} at t={}",
                    self.cfg.max_events, self.now
                );
            }
            let Some((t, ev)) = self.events.pop() else {
                break;
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.stats.events += 1;
            self.stats.event_kinds[match &ev {
                Event::PeRun(_) => 0,
                Event::Deliver(..) => 1,
                Event::Machine(..) | Event::ParkedWake(_) => 2,
                Event::MachineNow(..) => 3,
                Event::Cmd(..) => 4,
                Event::NodeLife(..) | Event::FtRecover(_) => 2,
            }] += 1;
            self.dispatch(t, ev);
            // Handlers queue FT work (checkpoints, failure declarations)
            // instead of mutating global state mid-event; enact it here so
            // every snapshot/restore sees a consistent cluster.
            if self.ft.is_some() {
                self.ft_pump(t);
            }
        }
        RunReport {
            end_time: self.now,
            stats: self.stats.clone(),
            stopped_early: self.stopped,
        }
    }

    /// Is `pe`'s node currently inside a crash window? (Cheap gate first:
    /// crash-free runs never index the liveness table.)
    fn pe_node_down(&self, pe: PeId) -> bool {
        self.crash_gate && self.node_down[(pe / self.cfg.cores_per_node) as usize]
    }

    fn dispatch(&mut self, t: Time, ev: Event) {
        match ev {
            Event::PeRun(pe) => {
                if self.pe_node_down(pe) {
                    self.stats.ft_dead_drops += 1;
                    return;
                }
                self.pe_run(t, pe)
            }
            Event::Deliver(pe, bytes) => {
                let env = Envelope::decode(&bytes);
                debug_assert_eq!(env.dst_pe, pe);
                if self.crash_gate {
                    if self.node_down[(pe / self.cfg.cores_per_node) as usize] {
                        // The destination's cores are dead: the message is
                        // lost with the node (rollback-replay regenerates
                        // it in the next epoch).
                        self.stats.ft_dead_drops += 1;
                        return;
                    }
                    let cur = self.ft.as_ref().map_or(0, |f| f.epoch);
                    if env.epoch < cur && !self.system_handlers.contains(&env.handler.0) {
                        // Sent before the last recovery rolled the
                        // membership epoch: the replay already (or will)
                        // re-send it, so delivering this copy would break
                        // exactly-once.
                        self.stats.ft_stale_drops += 1;
                        return;
                    }
                }
                self.stats.msgs_delivered += 1;
                self.trace.count_msg(pe);
                let st = self.pes.get_mut(pe as usize);
                if !self.system_handlers.contains(&env.handler.0) {
                    st.qd.delivered += 1;
                }
                let seq = st.queue_seq;
                st.queue_seq += 1;
                st.queue.push(std::cmp::Reverse(PrioEnv {
                    prio: env.priority,
                    seq,
                    env,
                }));
                if !st.run_scheduled {
                    st.run_scheduled = true;
                    let at = t.max(st.busy_until);
                    self.events.push(at, Event::PeRun(pe));
                }
            }
            Event::Machine(pe, mev) => {
                if self.pe_node_down(pe) {
                    // Dead NIC: the progress engine on this node is gone.
                    self.stats.ft_dead_drops += 1;
                    return;
                }
                let st = self.pes.get_mut(pe as usize);
                if st.busy_until > t {
                    // Progress only happens when the PE is free: park the
                    // event and arm a single wake at the busy horizon.
                    st.parked.push_back(mev);
                    if !st.parked_wake {
                        st.parked_wake = true;
                        let at = st.busy_until;
                        self.events.push(at, Event::ParkedWake(pe));
                    }
                    return;
                }
                self.with_layer(t, |layer, ctx| layer.on_event(ctx, pe, mev));
            }
            Event::MachineNow(pe, mev) => {
                if self.pe_node_down(pe) {
                    self.stats.ft_dead_drops += 1;
                    return;
                }
                self.with_layer(t, |layer, ctx| layer.on_event(ctx, pe, mev));
            }
            Event::ParkedWake(pe) => {
                if self.pe_node_down(pe) {
                    self.stats.ft_dead_drops += 1;
                    return;
                }
                self.pes.get_mut(pe as usize).parked_wake = false;
                loop {
                    let st = self.pes.get_mut(pe as usize);
                    if st.parked.is_empty() {
                        break;
                    }
                    if st.busy_until > t {
                        if !st.parked_wake {
                            st.parked_wake = true;
                            let at = st.busy_until;
                            self.events.push(at, Event::ParkedWake(pe));
                        }
                        break;
                    }
                    let mev = st.parked.pop_front().unwrap();
                    self.with_layer(t, |layer, ctx| layer.on_event(ctx, pe, mev));
                }
            }
            Event::Cmd(pe, cmd) => {
                if self.pe_node_down(pe) {
                    // A command issued by a PE that has since crashed; its
                    // send dies with the node. (Commands from live PEs to
                    // dead destinations still reach the layer — the fabric
                    // surfaces NodeDown and the retry machinery reacts.)
                    self.stats.ft_dead_drops += 1;
                    return;
                }
                self.with_layer(t, |layer, ctx| match cmd {
                    Cmd::Send { dst, msg } => layer.sync_send(ctx, pe, dst, msg),
                    Cmd::CreatePersistent {
                        dst,
                        max_bytes,
                        handle,
                    } => layer.create_persistent(ctx, pe, dst, max_bytes, handle),
                    Cmd::SendPersistent { handle, dst, msg } => {
                        layer.send_persistent(ctx, handle, pe, dst, msg)
                    }
                });
            }
            Event::NodeLife(node, up) => self.node_life(t, node, up),
            Event::FtRecover(node) => self.ft_recover(t, node),
        }
    }

    /// Enact a crash-window edge: take the node's volatile state down, or
    /// record its fresh (empty) incarnation.
    fn node_life(&mut self, t: Time, node: NodeId, up: bool) {
        if !up {
            self.node_down[node as usize] = true;
            // The machine layer loses the node's NIC state too (armed
            // polls, backlogs): without this the layer would keep
            // coalescing onto progress events that were dropped with the
            // node, wedging its connections after a restart.
            self.with_layer(t, |layer, ctx| layer.node_fault(ctx, node));
            let lo = node * self.cfg.cores_per_node;
            let hi = (lo + self.cfg.cores_per_node).min(self.cfg.num_pes);
            for pe in lo..hi {
                let st = self.pes.get_mut(pe as usize);
                // Volatile state is lost with the node. Scheduler queues,
                // parked machine events, user state, chare elements, and
                // even the node's own checkpoint copies (they live in its
                // memory) — only the buddy copies on other nodes survive.
                st.queue.clear();
                st.run_scheduled = false;
                st.parked.clear();
                st.parked_wake = false;
                st.user = Box::new(());
                st.charm.wipe();
                st.am.wipe();
                st.ft_local = None;
                st.ft_buddy.clear();
            }
            return;
        }
        match &mut self.ft {
            Some(ft) => {
                // Stay gated (node_down remains true) until recovery
                // restores the PEs from their buddy checkpoints: the empty
                // incarnation must not consume application messages.
                ft.restarted.insert(node);
            }
            None => {
                // Without FT a restart would rejoin an empty node; run()
                // rejects such plans up front, so this is unreachable in
                // practice but harmless: the node simply reports back up.
                self.node_down[node as usize] = false;
            }
        }
    }

    pub(crate) fn with_layer(
        &mut self,
        t: Time,
        f: impl FnOnce(&mut dyn MachineLayer, &mut MachineCtx),
    ) {
        // panic-ok: reentrancy guard — with_layer never nests
        let mut layer = self.layer.take().expect("machine layer reentrancy");
        {
            let mut ctx = MachineCtx {
                now: t,
                cfg: &self.cfg,
                back: McBack::Seq {
                    pes: &mut self.pes,
                    events: &mut self.events,
                },
                trace: &mut self.trace,
                stats: &mut self.stats,
            };
            f(layer.as_mut(), &mut ctx);
        }
        self.layer = Some(layer);
    }

    fn pe_run(&mut self, t: Time, pe: PeId) {
        let st = self.pes.get_mut(pe as usize);
        if st.busy_until > t {
            // Still finishing earlier work (overhead charges can extend it).
            // A busy wakeup does no work; it is excluded from the event
            // count because how many occur depends on engine scheduling
            // internals (how often busy_until moved after the wakeup was
            // scheduled), and the count must stay engine-invariant.
            self.stats.events -= 1;
            self.stats.event_kinds[0] -= 1;
            self.events.push(st.busy_until, Event::PeRun(pe));
            return;
        }
        let Some(std::cmp::Reverse(PrioEnv { env, .. })) = st.queue.pop() else {
            st.run_scheduled = false;
            return;
        };
        let handler = self
            .handlers
            .get(env.handler.0 as usize)
            .unwrap_or_else(|| panic!("unregistered handler {:?}", env.handler))
            .clone();

        let mut outbox = self.outbox_pool.get();
        let mut stop = false;
        let epoch = self.ft.as_ref().map_or(0, |f| f.epoch);
        let (charged_app, charged_ovh) = {
            let st = self.pes.get_mut(pe as usize);
            let mut ctx = PeCtx {
                pe,
                start: t,
                charged_app: 0,
                charged_ovh: 0,
                cfg: &self.cfg,
                user: &mut st.user,
                rng: &mut st.rng,
                charm_pe: &mut st.charm,
                charm_reg: &self.charm,
                am_pe: &mut st.am,
                am_reg: &self.am,
                outbox: &mut outbox,
                stop: &mut stop,
                next_persistent: &mut st.next_persistent,
                stats: &mut self.stats,
                qd_pe: &mut st.qd,
                qd_global: &mut self.qd,
                system_handlers: &self.system_handlers,
                ft_global: &mut self.ft,
                epoch,
            };
            handler(&mut ctx, env);
            (ctx.charged_app, ctx.charged_ovh)
        };
        self.stats.handlers_run += 1;

        let total = charged_app + charged_ovh + self.cfg.sched_overhead;
        self.trace.record(pe, t, charged_app, Kind::Busy);
        self.trace.record(
            pe,
            t + charged_app,
            charged_ovh + self.cfg.sched_overhead,
            Kind::Overhead,
        );

        for (at, ev) in outbox.drain(..) {
            self.events.push(at, ev);
        }
        self.outbox_pool.put(outbox);
        if stop {
            self.stopped = true;
        }

        let st = self.pes.get_mut(pe as usize);
        st.busy_until = t + total;
        if st.queue.is_empty() {
            st.run_scheduled = false;
        } else {
            self.events.push(st.busy_until, Event::PeRun(pe));
        }
    }

    /// Conservative parallel execution over node partitions (DESIGN.md §10).
    ///
    /// The cluster's nodes are split into `threads` contiguous partitions,
    /// each owning its PEs' state and a keyed event queue. Execution
    /// alternates a serial phase (main thread, canonical global order:
    /// machine-layer events, command execution, ties) with bounded parallel
    /// windows in which workers run PE-local events with
    /// `t < min(next layer event, frontier + lookahead)`. Side effects that
    /// touch shared accounting (trace, stats) are buffered per event and
    /// replayed in canonical key order at the window barrier, so every
    /// virtual timestamp, trace charge, RNG draw and statistic is
    /// bit-identical to [`Cluster::run`] with `threads = 1`.
    ///
    /// Falls back to the sequential engine when parallelism cannot help or
    /// is unsupported: `threads <= 1`, fewer than two nodes, quiescence
    /// detection installed (QD shares one global ledger), the `legacy-heap`
    /// queue feature, or node-crash chaos (crash enactment and checkpoint/
    /// recovery mutate PE state across every partition at one instant,
    /// which the windowed engine cannot interleave — forcing serial keeps
    /// crash runs bit-identical at any thread count).
    pub fn run_parallel(&mut self, threads: u32) -> RunReport {
        if threads <= 1
            || self.qd.is_some()
            || sim_core::LEGACY_HEAP
            || self.cfg.num_nodes() < 2
            || self.ft.is_some()
            || self.cfg.fault.has_node_crash()
            // A streaming trace sink writes records in global execution
            // order as they happen; the windowed engine replays trace
            // effects per partition (order-equivalent for every other
            // consumer, not for a byte stream).
            || self.trace.has_sink()
        {
            return self.run_seq();
        }
        let nparts = threads.min(self.cfg.num_nodes());
        let num_pes = self.cfg.num_pes;
        let cores = self.cfg.cores_per_node;

        // Contiguous node blocks; a node's PEs never split across partitions
        // (intra-node traffic must stay partition-local — the lookahead
        // bound only covers cross-node latency).
        let node_ranges = partition_ranges(self.cfg.num_nodes(), nparts);
        let mut pe_part = vec![0u32; num_pes as usize];
        let mut parts: Vec<PartData> = Vec::with_capacity(node_ranges.len());
        // The parallel engine owns PE state densely per partition:
        // materialize everything (whole-machine parallel runs touch every
        // PE anyway) and take the dense vector.
        let mut all_pes = self.pes.take_dense().into_iter();
        for (i, r) in node_ranges.iter().enumerate() {
            let lo = (r.start * cores).min(num_pes);
            let hi = (r.end * cores).min(num_pes);
            for pe in lo..hi {
                pe_part[pe as usize] = i as u32;
            }
            parts.push(PartData {
                idx: i as u32,
                base_pe: lo,
                pes: all_pes.by_ref().take((hi - lo) as usize).collect(),
                q: KeyedQueue::new(),
                epoch: 0,
                fx: Vec::new(),
                origins: Vec::new(),
                trace_ops: Vec::new(),
                cmds: Vec::new(),
                scratch: self.exec_pool.get(),
            });
        }
        debug_assert!(all_pes.next().is_none());

        // Split the pending queue in pop order: `(time, seq)` pop order IS
        // the canonical order, so assigning ascending flat ordinals here
        // seeds the keyed queues with the exact sequential tie-break.
        let mut serial: KeyedQueue<Event> = KeyedQueue::new();
        let mut ord = 0u64;
        while let Some((t, ev)) = self.events.pop() {
            let key = EvKey::flat(t, ord);
            ord += 1;
            match &ev {
                Event::PeRun(pe) | Event::Deliver(pe, _) => {
                    parts[pe_part[*pe as usize] as usize].q.push(key, ev)
                }
                _ => serial.push(key, ev),
            }
        }

        let lookahead = self.layer.as_ref().expect("layer").lookahead().max(1);
        let ctl = BatchCtl {
            halt: AtomicU64::new(u64::MAX),
            frontiers: (0..nparts).map(|_| AtomicU64::new(u64::MAX)).collect(),
            lookahead,
            batch_windows: self.cfg.batch_windows.max(1),
        };
        let (parts, sync_ns, serial, stop_leftovers, end_now, end_stopped) = {
            let Cluster {
                cfg,
                layer,
                handlers,
                charm,
                am,
                trace,
                stats,
                system_handlers,
                ..
            } = &mut *self;
            let env = ExecEnv {
                cfg,
                handlers,
                charm_reg: charm,
                am_reg: am,
                system_handlers,
            };
            let mut driver = ParDriver {
                cfg,
                handlers,
                charm_reg: charm,
                am_reg: am,
                system_handlers,
                layer,
                trace,
                stats,
                pe_part: &pe_part,
                serial,
                ord,
                now: 0,
                stopped: false,
                lookahead,
                ctl: &ctl,
                scratch: ExecOut::default(),
                leftovers: Vec::new(),
            };
            let (parts, sync_ns) = run_pool(
                parts,
                nparts as usize,
                |part, t_s| phase_run(part, t_s, &env, &ctl),
                |parts| driver.step(parts),
            );
            (
                parts,
                sync_ns,
                driver.serial,
                driver.leftovers,
                driver.now,
                driver.stopped,
            )
        };

        SYNC_OVERHEAD.with(|c| c.set(c.get().saturating_add(sync_ns)));
        self.now = end_now;
        self.stopped = end_stopped;
        // Reassemble PE state (partitions are contiguous and in order) and
        // put any still-pending events back on the sequential queue in
        // canonical order, mirroring the state `run_seq` leaves on an early
        // stop. At most one source is non-empty: a stop found *inside a
        // window* drains every queue into `stop_leftovers` (already in
        // canonical order); a stop on the serial frontier leaves flat-keyed
        // queues, where the plain key sort is the canonical order.
        let mut serial = serial;
        let mut leftover_evs: Vec<(EvKey, Event)> = serial.drain_sorted();
        let mut pes = Vec::with_capacity(num_pes as usize);
        for mut p in parts {
            leftover_evs.extend(p.q.drain_sorted());
            pes.append(&mut p.pes);
            self.exec_pool.put(std::mem::take(&mut p.scratch));
        }
        leftover_evs.sort_by_key(|e| e.0);
        for (k, ev) in leftover_evs {
            self.events.push(k.t, ev);
        }
        for (t, ev) in stop_leftovers {
            self.events.push(t, ev);
        }
        self.pes.restore_dense(pes);

        RunReport {
            end_time: self.now,
            stats: self.stats.clone(),
            stopped_early: self.stopped,
        }
    }
}

/// Event-storage backend behind a [`MachineCtx`]: the sequential engine's
/// single queue, or the parallel driver's partitioned queues. Layers never
/// see the difference — pushes route by event class (PE-local `PeRun`/
/// `Deliver` to the owning partition, layer events to the serial queue)
/// with main-thread `Flat` ordinals, so the canonical event order is the
/// sequential `(time, push-seq)` order in both modes.
pub(crate) enum McBack<'a> {
    Seq {
        pes: &'a mut PeTable,
        events: &'a mut EventQueue<Event>,
    },
    Par {
        parts: &'a mut [PartData],
        pe_part: &'a [u32],
        serial: &'a mut KeyedQueue<Event>,
        ord: &'a mut u64,
        /// Partition of the PE whose `Cmd` is executing, when one is: its
        /// cross-partition pushes must respect the lookahead bound (see
        /// the debug assert in `push_par`). `None` for machine events,
        /// whose pushes are ordered by the serial phase unconditionally.
        cur_part: Option<u32>,
        lookahead: Time,
    },
}

/// What a machine layer sees of the cluster.
pub struct MachineCtx<'a> {
    now: Time,
    cfg: &'a ClusterCfg,
    back: McBack<'a>,
    trace: &'a mut Trace,
    stats: &'a mut ClusterStats,
}

impl MachineCtx<'_> {
    pub fn now(&self) -> Time {
        self.now
    }

    fn pe_state_mut(&mut self, pe: PeId) -> &mut PeState {
        match &mut self.back {
            McBack::Seq { pes, .. } => pes.get_mut(pe as usize),
            McBack::Par { parts, pe_part, .. } => {
                let p = &mut parts[pe_part[pe as usize] as usize];
                let base = p.base_pe;
                &mut p.pes[(pe - base) as usize]
            }
        }
    }

    /// Route one event push through the active backend.
    // serial-only: mutates shared queues
    fn push_event(&mut self, at: Time, ev: Event) {
        debug_assert!(at >= self.now);
        match &mut self.back {
            McBack::Seq { events, .. } => events.push(at, ev),
            McBack::Par {
                parts,
                pe_part,
                serial,
                ord,
                cur_part,
                lookahead,
            } => {
                let key = EvKey::flat(at, **ord);
                **ord += 1;
                let target = match &ev {
                    Event::PeRun(pe) | Event::Deliver(pe, _) => Some(*pe),
                    Event::Machine(pe, _) | Event::MachineNow(pe, _) | Event::ParkedWake(pe) => {
                        // Serial-queue events, but still subject to the
                        // lookahead contract when pushed from a Cmd.
                        if let Some(cp) = cur_part {
                            if pe_part[*pe as usize] != *cp {
                                debug_assert!(
                                    at >= self.now + *lookahead,
                                    "cross-partition machine event at {} violates lookahead {} (now {})",
                                    at,
                                    lookahead,
                                    self.now
                                );
                            }
                        }
                        None
                    }
                    Event::Cmd(..) => None,
                    // Node-crash plans force the sequential engine, so
                    // these never reach the parallel backend.
                    Event::NodeLife(..) | Event::FtRecover(_) => {
                        // run_parallel forces the serial engine whenever the
                        // fault plan schedules crashes. panic-ok: see above.
                        unreachable!("crash events in the parallel backend")
                    }
                };
                match target {
                    Some(pe) => {
                        let tp = pe_part[pe as usize];
                        if let Some(cp) = cur_part {
                            if tp != *cp {
                                debug_assert!(
                                    at >= self.now + *lookahead,
                                    "cross-partition delivery at {} violates lookahead {} (now {})",
                                    at,
                                    lookahead,
                                    self.now
                                );
                            }
                        }
                        parts[tp as usize].q.push(key, ev);
                    }
                    None => serial.push(key, ev),
                }
            }
        }
    }

    pub fn num_pes(&self) -> u32 {
        self.cfg.num_pes
    }

    pub fn cores_per_node(&self) -> u32 {
        self.cfg.cores_per_node
    }

    pub fn num_nodes(&self) -> u32 {
        self.cfg.num_nodes()
    }

    pub fn node_of(&self, pe: PeId) -> NodeId {
        pe / self.cfg.cores_per_node
    }

    /// When the PE will next be free (>= now when busy).
    pub fn pe_free_at(&mut self, pe: PeId) -> Time {
        self.pe_state_mut(pe).busy_until
    }

    /// Hand a fully received, decoded-ready message to a PE's scheduler,
    /// effective immediately.
    // serial-only: applies an effect
    pub fn deliver_now(&mut self, pe: PeId, msg: Bytes) {
        self.push_event(self.now, Event::Deliver(pe, msg));
    }

    /// Deliver at a future instant (e.g. after a modeled copy completes).
    // serial-only: applies an effect
    pub fn deliver_at(&mut self, at: Time, pe: PeId, msg: Bytes) {
        self.push_event(at, Event::Deliver(pe, msg));
    }

    /// Schedule a machine-layer event for `pe` at `at` (delivered when the
    /// PE is free — use for progress-engine work like draining mailboxes).
    // serial-only: applies an effect
    pub fn schedule(&mut self, at: Time, pe: PeId, ev: Box<dyn Any + Send>) {
        self.push_event(at, Event::Machine(pe, ev));
    }

    /// Schedule a machine-layer event that fires at `at` even if the PE is
    /// then busy. Use for protocol continuations (e.g. "buffer prepared,
    /// ship the control message") whose CPU cost was already charged —
    /// deferring those would serialize independent transfers behind
    /// unrelated work.
    // serial-only: applies an effect
    pub fn schedule_nodefer(&mut self, at: Time, pe: PeId, ev: Box<dyn Any + Send>) {
        self.push_event(at, Event::MachineNow(pe, ev));
    }

    /// Charge `ns` of protocol-processing time to `pe`, starting no earlier
    /// than now. Extends the PE's busy window and records overhead.
    // serial-only: writes trace + busy windows
    pub fn charge_overhead(&mut self, pe: PeId, ns: Time) {
        if ns == 0 {
            return;
        }
        let now = self.now;
        let st = self.pe_state_mut(pe);
        let start = st.busy_until.max(now);
        st.busy_until = start + ns;
        self.trace.record(pe, start, ns, Kind::Overhead);
    }

    /// Charge `ns` of fault-recovery time to `pe` (retries, CQ resyncs,
    /// registration fallbacks). Same busy-window semantics as
    /// [`MachineCtx::charge_overhead`], accounted separately in the trace.
    // serial-only: writes trace + busy windows
    pub fn charge_recovery(&mut self, pe: PeId, ns: Time) {
        if ns == 0 {
            return;
        }
        let now = self.now;
        let st = self.pe_state_mut(pe);
        let start = st.busy_until.max(now);
        st.busy_until = start + ns;
        self.trace.record(pe, start, ns, Kind::Recovery);
    }

    /// Count a message the machine layer actually put on the wire.
    // serial-only: writes shared stats
    pub fn count_send(&mut self, bytes: u64) {
        self.stats.net_msgs += 1;
        self.stats.net_bytes += bytes;
    }
}

impl ClusterStats {
    /// Accumulate a buffered per-event delta (all counters are sums).
    fn add(&mut self, o: &ClusterStats) {
        self.events += o.events;
        for i in 0..self.event_kinds.len() {
            self.event_kinds[i] += o.event_kinds[i];
        }
        self.handlers_run += o.handlers_run;
        self.msgs_sent += o.msgs_sent;
        self.msgs_delivered += o.msgs_delivered;
        self.bytes_sent += o.bytes_sent;
        self.net_msgs += o.net_msgs;
        self.net_bytes += o.net_bytes;
        self.ft_dead_drops += o.ft_dead_drops;
        self.ft_stale_drops += o.ft_stale_drops;
        self.am_agg_sent += o.am_agg_sent;
        self.am_batches += o.am_batches;
    }
}

/// Shared read-only context needed to execute a PE-local event, usable
/// from worker threads (everything in here is `Sync`).
struct ExecEnv<'a> {
    cfg: &'a ClusterCfg,
    #[allow(clippy::type_complexity)]
    handlers: &'a [Arc<dyn Fn(&mut PeCtx, Envelope) + Send + Sync>],
    charm_reg: &'a CharmRegistry,
    am_reg: &'a crate::am::AmRegistry,
    system_handlers: &'a std::collections::HashSet<u16>,
}

/// Buffered side effects of one event execution: everything that touches
/// state outside the owning partition. Replayed in canonical key order.
#[derive(Default)]
struct ExecOut {
    stats: ClusterStats,
    trace: Vec<TraceOp>,
    cmds: Vec<(EvKey, Event)>,
    stop: bool,
    /// Recycled handler outbox (the worker's counterpart of the
    /// sequential engine's pooled outbox): drained after every handler,
    /// so only the allocation survives between events.
    outbox: Vec<(Time, Event)>,
}

impl ExecOut {
    fn clear(&mut self) {
        self.stats = ClusterStats::default();
        self.trace.clear();
        self.cmds.clear();
        self.stop = false;
        self.outbox.clear();
    }
}

impl mempool::Reset for ExecOut {
    fn reset(&mut self) {
        self.clear();
    }
}

/// One executed event's buffered effects, in partition execution (= key)
/// order. The trace ops live in a per-partition stream (`trace_ops`);
/// `trace_n` is this record's run length in it.
struct FxRec {
    key: EvKey,
    stats: ClusterStats,
    trace_n: u32,
    stop: bool,
}

/// Per-partition state owned by one worker during a parallel window batch.
pub(crate) struct PartData {
    /// This partition's index (= its slot in the driver's `parts` /
    /// frontier arrays).
    idx: u32,
    base_pe: u32,
    pes: Vec<PeState>,
    q: KeyedQueue<Event>,
    /// Global push-ordinal watermark at the start of the current phase:
    /// in-phase keys mint partition-local ordinals `epoch + i`.
    epoch: u64,
    fx: Vec<FxRec>,
    /// Push-origin log for the current phase: `origins[k.ord - epoch]` is
    /// the index (into `fx`) of the event whose execution pushed the
    /// in-phase key `k`. `canon_cmp` uses it to order in-phase keys of
    /// different partitions by their parents.
    origins: Vec<u32>,
    trace_ops: Vec<TraceOp>,
    cmds: Vec<(EvKey, Event)>,
    scratch: ExecOut,
}

/// Execute one PE-local event (`PeRun` or `Deliver`) exactly as the
/// sequential engine's `dispatch`/`pe_run` would, with effects buffered
/// into `out` and pushes keyed by `mk_key(at)` — called once per push, in
/// push order, so the key minter's internal counter reproduces the
/// sequential engine's push sequence.
///
/// Mirrors `Cluster::dispatch` (Deliver arm) and `Cluster::pe_run` — keep
/// the two in sync; the differential tests in `tests/` compare them
/// bit for bit. (The sequential path stays separate so `threads = 1` pays
/// none of the buffering cost.)
#[allow(clippy::too_many_arguments)] // mirrors dispatch()'s full PE context
fn exec_local_event(
    env: &ExecEnv,
    pes: &mut [PeState],
    base_pe: u32,
    q: &mut KeyedQueue<Event>,
    t: Time,
    ev: Event,
    mut mk_key: impl FnMut(Time) -> EvKey,
    out: &mut ExecOut,
) {
    out.clear();
    match ev {
        Event::Deliver(pe, bytes) => {
            out.stats.events += 1;
            out.stats.event_kinds[1] += 1;
            let menv = Envelope::decode(&bytes);
            debug_assert_eq!(menv.dst_pe, pe);
            out.stats.msgs_delivered += 1;
            out.trace.push(TraceOp::CountMsg(pe));
            let st = &mut pes[(pe - base_pe) as usize];
            if !env.system_handlers.contains(&menv.handler.0) {
                st.qd.delivered += 1;
            }
            let seq = st.queue_seq;
            st.queue_seq += 1;
            st.queue.push(std::cmp::Reverse(PrioEnv {
                prio: menv.priority,
                seq,
                env: menv,
            }));
            if !st.run_scheduled {
                st.run_scheduled = true;
                let at = t.max(st.busy_until);
                q.push(mk_key(at), Event::PeRun(pe));
            }
        }
        Event::PeRun(pe) => {
            let sti = (pe - base_pe) as usize;
            if pes[sti].busy_until > t {
                // Busy wakeup: uncounted, mirroring `pe_run` — the event
                // count must not depend on which engine ran the PE.
                let at = pes[sti].busy_until;
                q.push(mk_key(at), Event::PeRun(pe));
                return;
            }
            out.stats.events += 1;
            out.stats.event_kinds[0] += 1;
            let Some(std::cmp::Reverse(PrioEnv { env: menv, .. })) = pes[sti].queue.pop() else {
                pes[sti].run_scheduled = false;
                return;
            };
            let handler = env
                .handlers
                .get(menv.handler.0 as usize)
                .unwrap_or_else(|| panic!("unregistered handler {:?}", menv.handler))
                .clone();

            let mut outbox = std::mem::take(&mut out.outbox);
            let mut stop = false;
            // QD and FT both force the sequential engine; handlers here
            // never touch either.
            let mut no_qd: Option<QdState> = None;
            let mut no_ft: Option<FtCore> = None;
            let (charged_app, charged_ovh) = {
                let st = &mut pes[sti];
                let mut ctx = PeCtx {
                    pe,
                    start: t,
                    charged_app: 0,
                    charged_ovh: 0,
                    cfg: env.cfg,
                    user: &mut st.user,
                    rng: &mut st.rng,
                    charm_pe: &mut st.charm,
                    charm_reg: env.charm_reg,
                    am_pe: &mut st.am,
                    am_reg: env.am_reg,
                    outbox: &mut outbox,
                    stop: &mut stop,
                    next_persistent: &mut st.next_persistent,
                    stats: &mut out.stats,
                    qd_pe: &mut st.qd,
                    qd_global: &mut no_qd,
                    system_handlers: env.system_handlers,
                    ft_global: &mut no_ft,
                    epoch: 0,
                };
                handler(&mut ctx, menv);
                (ctx.charged_app, ctx.charged_ovh)
            };
            out.stats.handlers_run += 1;

            let total = charged_app + charged_ovh + env.cfg.sched_overhead;
            out.trace
                .push(TraceOp::Record(pe, t, charged_app, Kind::Busy));
            out.trace.push(TraceOp::Record(
                pe,
                t + charged_app,
                charged_ovh + env.cfg.sched_overhead,
                Kind::Overhead,
            ));

            for (at, ev) in outbox.drain(..) {
                let key = mk_key(at);
                match &ev {
                    // Handler Delivers are self-send loopback: always this PE.
                    Event::Deliver(..) => q.push(key, ev),
                    Event::Cmd(..) => out.cmds.push((key, ev)),
                    _ => unreachable!("handlers only emit Deliver/Cmd"),
                }
            }
            out.outbox = outbox;
            out.stop = stop;

            let st = &mut pes[sti];
            st.busy_until = t + total;
            if st.queue.is_empty() {
                st.run_scheduled = false;
            } else {
                q.push(mk_key(st.busy_until), Event::PeRun(pe));
            }
        }
        _ => unreachable!("partition queues hold only PeRun/Deliver"),
    }
}

/// Upper bound on events one partition executes per parallel window
/// batch, so the `max_events` safety valve is checked (on the main
/// thread) with bounded overshoot.
const PHASE_CAP: usize = 4096;

/// Shared control state of one parallel window batch. Workers only ever
/// exchange monotone time bounds through it: `halt` shrinks (fetch_min),
/// each partition's frontier grows (one release-store per window) — a
/// stale read is always the *smaller* value, which is conservative, so no
/// ordering decision can race. worker-ok: see above.
struct BatchCtl {
    /// Global early-stop bound (DESIGN.md §10): a worker that executes a
    /// stop or emits a `CreatePersistent` command publishes its timestamp
    /// so every partition halts there.
    halt: AtomicU64,
    /// Per-partition progress frontier: a lower bound on any event the
    /// partition has yet to execute *and* on any cross-partition push its
    /// pending commands may cause (commands execute serially later, and
    /// their deliveries land at least `lookahead` after the command).
    frontiers: Vec<AtomicU64>,
    lookahead: Time,
    /// Max consecutive windows per barrier crossing ([`ClusterCfg::batch_windows`]).
    batch_windows: u32,
}

/// One partition's parallel window batch: run PE-local events in
/// canonical key order while `t` stays below every bound the partition
/// must respect — the serial-class horizon `t_s`, its own first pending
/// command, the global halt, and every *other* partition's published
/// frontier plus the lookahead. After each window it publishes its own
/// new frontier and, if any other frontier moved, starts the next window
/// without a barrier crossing — up to `batch_windows` windows per phase.
/// Stopping early for any reason is always safe: unprocessed events
/// simply stay queued for the next serial phase.
fn phase_run(part: &mut PartData, t_s: Time, env: &ExecEnv, ctl: &BatchCtl) {
    let me = part.idx as usize;
    let epoch = part.epoch;
    // First Cmd this partition emits bounds it: the command executes later
    // (serially, in canonical order) and may extend the issuing PE's busy
    // window, so events at or after its timestamp must wait.
    let mut bound = t_s;
    let mut executed = 0usize;
    let mut scratch = std::mem::take(&mut part.scratch);
    for _window in 0..ctl.batch_windows.max(1) {
        let mut lim = bound.min(ctl.halt.load(Ordering::Relaxed));
        for (i, f) in ctl.frontiers.iter().enumerate() {
            if i != me {
                lim = lim.min(f.load(Ordering::Acquire).saturating_add(ctl.lookahead));
            }
        }
        let mut progressed = false;
        while executed < PHASE_CAP {
            let Some(t) = part.q.peek_time() else { break };
            if t >= lim {
                break;
            }
            let (key, ev) = part.q.pop().expect("peeked");
            let fx_idx = part.fx.len() as u32;
            {
                let PartData {
                    base_pe,
                    pes,
                    q,
                    origins,
                    ..
                } = &mut *part;
                exec_local_event(
                    env,
                    pes,
                    *base_pe,
                    q,
                    t,
                    ev,
                    |at| {
                        let k = EvKey {
                            t: at,
                            ord: epoch + origins.len() as u64,
                        };
                        origins.push(fx_idx);
                        k
                    },
                    &mut scratch,
                );
            }
            for (k, ev) in scratch.cmds.drain(..) {
                bound = bound.min(k.t);
                if matches!(&ev, Event::Cmd(_, Cmd::CreatePersistent { .. })) {
                    // Persistent-channel setup charges the *remote* PE when
                    // it executes; halt every partition at its timestamp so
                    // that charge sees sequential busy state (DESIGN.md §10).
                    ctl.halt.fetch_min(k.t, Ordering::Relaxed);
                }
                part.cmds.push((k, ev));
            }
            if scratch.stop {
                ctl.halt.fetch_min(t, Ordering::Relaxed);
            }
            part.fx.push(FxRec {
                key,
                stats: scratch.stats.clone(),
                trace_n: scratch.trace.len() as u32,
                stop: scratch.stop,
            });
            part.trace_ops.append(&mut scratch.trace);
            progressed = true;
            executed += 1;
        }
        // Publish how far this partition has provably advanced: its next
        // pending event and its first pending command both lower-bound
        // everything it can still cause. Monotone across windows (event
        // times are non-decreasing and new commands carry times at or
        // after the event that emitted them), so a peer acting on the old
        // value is merely conservative.
        let f = part.q.peek_time().unwrap_or(u64::MAX).min(bound);
        ctl.frontiers[me].store(f, Ordering::Release);
        if !progressed || executed >= PHASE_CAP {
            break;
        }
    }
    part.scratch = scratch;
}

/// Compare two phase keys in canonical (sequential push) order. `epoch`
/// is the phase's shared ordinal watermark; `pa`/`pb` name the partition
/// each key lives in (any value is fine for pre-phase keys — their order
/// is decided without touching partition state; [`SER`] marks keys from
/// the serial queue, which never holds in-phase keys).
///
/// Time dominates. At equal times: two pre-phase keys (`ord < epoch`)
/// compare by their global ordinals; a pre-phase key precedes any
/// in-phase key (everything pushed during the phase was pushed after it);
/// two in-phase keys of the same partition compare by local ordinal
/// (partition execution order is canonical order); two in-phase keys of
/// different partitions are ordered by their *parents* — the events whose
/// execution pushed them, recorded in the partitions' `origins` logs —
/// because the sequential engine would have numbered their pushes in
/// parent execution order. Parent chains ground in pre-phase keys, so the
/// recursion terminates.
fn canon_cmp(
    parts: &[PartData],
    epoch: u64,
    pa: usize,
    ka: EvKey,
    pb: usize,
    kb: EvKey,
) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match ka.t.cmp(&kb.t) {
        Ordering::Equal => {}
        o => return o,
    }
    match (ka.ord < epoch, kb.ord < epoch) {
        (true, true) => ka.ord.cmp(&kb.ord),
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => {
            if pa == pb {
                return ka.ord.cmp(&kb.ord);
            }
            let fa = parts[pa].origins[(ka.ord - epoch) as usize] as usize;
            let fb = parts[pb].origins[(kb.ord - epoch) as usize] as usize;
            let pka = parts[pa].fx[fa].key;
            let pkb = parts[pb].fx[fb].key;
            // Distinct parents (they live in different partitions), so the
            // recursive comparison decides; the ordinal tiebreak is for
            // form only.
            canon_cmp(parts, epoch, pa, pka, pb, pkb).then(ka.ord.cmp(&kb.ord))
        }
    }
}

/// Partition marker for serial-queue keys in [`canon_cmp`]/[`ckey_cmp`]:
/// the serial queue only ever holds pre-phase (flat) keys, whose order
/// never consults partition state.
const SER: usize = usize::MAX;

/// A classified key during the stop drain ([`ParDriver::finish_stop`]):
/// `phase` keys were minted before or during the interrupted phase and
/// compare by [`canon_cmp`]; fresh keys (`phase == false`) are flat
/// ordinals minted *by the drain itself* from the driver's global counter
/// — numerically overlapping the in-phase range, so the class must be
/// tracked structurally.
#[derive(Clone, Copy)]
struct CKey {
    phase: bool,
    part: usize,
    k: EvKey,
}

/// Canonical order over classified keys: within a class, the class's own
/// order; across classes at equal times, phase keys first (everything the
/// drain pushes was pushed after every pre-existing event at that time —
/// the same root-before-descendant rule the sequential engine's push
/// counter encodes).
fn ckey_cmp(parts: &[PartData], epoch: u64, a: CKey, b: CKey) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.phase, b.phase) {
        (true, true) => canon_cmp(parts, epoch, a.part, a.k, b.part, b.k),
        (false, false) => a.k.cmp(&b.k),
        (true, false) => a.k.t.cmp(&b.k.t).then(Ordering::Less),
        (false, true) => a.k.t.cmp(&b.k.t).then(Ordering::Greater),
    }
}

/// Main-thread half of the parallel driver: harvests window output,
/// executes the canonical serial frontier (machine layer, commands, ties),
/// and decides the next window.
struct ParDriver<'a> {
    cfg: &'a ClusterCfg,
    #[allow(clippy::type_complexity)]
    handlers: &'a [Arc<dyn Fn(&mut PeCtx, Envelope) + Send + Sync>],
    charm_reg: &'a CharmRegistry,
    am_reg: &'a crate::am::AmRegistry,
    system_handlers: &'a std::collections::HashSet<u16>,
    layer: &'a mut Option<Box<dyn MachineLayer>>,
    trace: &'a mut Trace,
    stats: &'a mut ClusterStats,
    pe_part: &'a [u32],
    serial: KeyedQueue<Event>,
    ord: u64,
    now: Time,
    stopped: bool,
    lookahead: Time,
    ctl: &'a BatchCtl,
    scratch: ExecOut,
    /// Events still pending when a stop found inside a window ended the
    /// run, in canonical order (`finish_stop` fills this; the queues are
    /// empty afterwards). `run_parallel` pushes them back on the
    /// sequential queue at teardown.
    leftovers: Vec<(Time, Event)>,
}

impl ParDriver<'_> {
    fn pe_mut<'p>(&self, parts: &'p mut [PartData], pe: PeId) -> &'p mut PeState {
        let p = &mut parts[self.pe_part[pe as usize] as usize];
        let base = p.base_pe;
        &mut p.pes[(pe - base) as usize]
    }

    /// The serial phase. Returns `Some(p_end)` to run a parallel window
    /// with that bound, `None` when the run is complete.
    fn step(&mut self, parts: &mut [PartData]) -> Option<Time> {
        // ---- harvest the previous window batch ----
        if parts.iter().any(|p| !p.fx.is_empty()) {
            let epoch = parts.first().map_or(0, |p| p.epoch);
            // Canonical-min stop across partitions. Within a partition the
            // fx stream is in canonical order, so its first stop record is
            // its earliest; cross-partition ties need the full comparison.
            let mut stop: Option<(usize, EvKey)> = None;
            for (i, p) in parts.iter().enumerate() {
                if let Some(f) = p.fx.iter().find(|f| f.stop) {
                    stop = match stop {
                        Some((bi, bk))
                            if canon_cmp(parts, epoch, bi, bk, i, f.key)
                                != std::cmp::Ordering::Greater =>
                        {
                            Some((bi, bk))
                        }
                        _ => Some((i, f.key)),
                    };
                }
            }
            if let Some((pstar, kstar)) = stop {
                self.finish_stop(parts, pstar, kstar);
                return None;
            }
            self.replay_fx(parts);
            self.flatten(parts);
        }

        // ---- canonical serial frontier ----
        loop {
            if self.stats.events >= self.cfg.max_events {
                panic!(
                    "simulation exceeded max_events={} at t={}",
                    self.cfg.max_events, self.now
                );
            }
            let t_s = self.serial.peek_time().unwrap_or(u64::MAX);
            let t_l = parts
                .iter()
                .filter_map(|p| p.q.peek_time())
                .min()
                .unwrap_or(u64::MAX);
            if t_s == u64::MAX && t_l == u64::MAX {
                return None; // drained
            }
            if t_l < t_s {
                let p_end = t_s.min(t_l.saturating_add(self.lookahead));
                let mut ready = 0usize;
                let mut queued = 0usize;
                for p in parts.iter() {
                    if p.q.peek_time().is_some_and(|t| t < p_end) {
                        ready += 1;
                        // Queue length is an upper bound on the events this
                        // partition can execute in the batch — cheap, and
                        // good enough to decide whether waking the pool can
                        // possibly pay for the barrier crossing.
                        queued += p.q.len();
                    }
                }
                if ready >= 2 && queued >= self.cfg.handoff_min_events as usize {
                    // Hand off: at least two partitions have work strictly
                    // inside the first window. Workers bound themselves by
                    // the serial horizon and each other's frontiers
                    // (seeded here with the queue heads — exactly the
                    // `t_l` this p_end was computed from), batching up to
                    // `batch_windows` windows before the next barrier.
                    self.ctl.halt.store(u64::MAX, Ordering::Relaxed);
                    for (i, p) in parts.iter_mut().enumerate() {
                        p.epoch = self.ord;
                        self.ctl.frontiers[i]
                            .store(p.q.peek_time().unwrap_or(u64::MAX), Ordering::Relaxed);
                    }
                    return Some(t_s);
                }
                // Single-partition or under-threshold window: run the
                // canonical min inline (cheaper than a barrier round-trip
                // for a handful of events).
                let pi = self.min_part(parts).expect("partition head exists");
                let (key, ev) = parts[pi].q.pop().expect("peeked");
                // `now` is the furthest virtual time reached (harvested
                // window effects may already sit past a pending command's
                // timestamp, so it is a running max, not a monotone clock).
                self.now = self.now.max(key.t);
                self.exec_inline(&mut parts[pi], key.t, ev);
            } else {
                // Serial head is at or before every partition head; the
                // canonical min is decided by full key comparison (time
                // ties between a layer event and a PE event are real).
                let part_min = self.min_part(parts);
                let serial_first = match (self.serial.peek_key(), part_min) {
                    (Some(sk), Some(pi)) => sk < parts[pi].q.peek_key().expect("head"),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => unreachable!("checked above"),
                };
                if serial_first {
                    let (key, ev) = self.serial.pop().expect("peeked");
                    self.now = self.now.max(key.t);
                    self.exec_serial(parts, key.t, ev);
                } else {
                    let pi = part_min.expect("partition head exists");
                    let (key, ev) = parts[pi].q.pop().expect("peeked");
                    self.now = self.now.max(key.t);
                    self.exec_inline(&mut parts[pi], key.t, ev);
                }
            }
            if self.stopped {
                return None;
            }
        }
    }

    /// Index of the partition holding the smallest queue head key.
    fn min_part(&self, parts: &[PartData]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, p) in parts.iter().enumerate() {
            if let Some(k) = p.q.peek_key() {
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        if k < parts[b].q.peek_key().expect("head") {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        best
    }

    /// Execute a PE-local event on the main thread with immediate effect
    /// application and `Flat` push ordinals — exactly the sequential
    /// semantics.
    fn exec_inline(&mut self, part: &mut PartData, t: Time, ev: Event) {
        let env = ExecEnv {
            cfg: self.cfg,
            handlers: self.handlers,
            charm_reg: self.charm_reg,
            am_reg: self.am_reg,
            system_handlers: self.system_handlers,
        };
        let mut ord = self.ord;
        let mut scratch = std::mem::take(&mut self.scratch);
        {
            let PartData {
                base_pe, pes, q, ..
            } = &mut *part;
            exec_local_event(
                &env,
                pes,
                *base_pe,
                q,
                t,
                ev,
                |at| {
                    let k = EvKey::flat(at, ord);
                    ord += 1;
                    k
                },
                &mut scratch,
            );
        }
        self.ord = ord;
        self.stats.add(&scratch.stats);
        for op in &scratch.trace {
            self.trace.apply(op);
        }
        for (k, ev) in scratch.cmds.drain(..) {
            self.serial.push(k, ev);
        }
        if scratch.stop {
            self.stopped = true;
        }
        self.scratch = scratch;
    }

    /// Execute a serial-class event (machine layer, command, parked wake)
    /// — the parallel-mode mirror of `Cluster::dispatch`'s layer arms.
    fn exec_serial(&mut self, parts: &mut [PartData], t: Time, ev: Event) {
        self.stats.events += 1;
        self.stats.event_kinds[match &ev {
            Event::PeRun(_) => 0,
            Event::Deliver(..) => 1,
            Event::Machine(..) | Event::ParkedWake(_) => 2,
            Event::MachineNow(..) => 3,
            Event::Cmd(..) => 4,
            Event::NodeLife(..) | Event::FtRecover(_) => 2,
        }] += 1;
        match ev {
            Event::Machine(pe, mev) => {
                let st = self.pe_mut(parts, pe);
                if st.busy_until > t {
                    st.parked.push_back(mev);
                    if !st.parked_wake {
                        st.parked_wake = true;
                        let at = st.busy_until;
                        let k = EvKey::flat(at, self.ord);
                        self.ord += 1;
                        self.serial.push(k, Event::ParkedWake(pe));
                    }
                    return;
                }
                self.with_layer(parts, t, None, |layer, ctx| layer.on_event(ctx, pe, mev));
            }
            Event::MachineNow(pe, mev) => {
                self.with_layer(parts, t, None, |layer, ctx| layer.on_event(ctx, pe, mev));
            }
            Event::ParkedWake(pe) => {
                self.pe_mut(parts, pe).parked_wake = false;
                loop {
                    let st = self.pe_mut(parts, pe);
                    if st.parked.is_empty() {
                        break;
                    }
                    if st.busy_until > t {
                        if !st.parked_wake {
                            st.parked_wake = true;
                            let at = st.busy_until;
                            let k = EvKey::flat(at, self.ord);
                            self.ord += 1;
                            self.serial.push(k, Event::ParkedWake(pe));
                        }
                        break;
                    }
                    let mev = st.parked.pop_front().expect("non-empty");
                    self.with_layer(parts, t, None, |layer, ctx| layer.on_event(ctx, pe, mev));
                }
            }
            Event::Cmd(pe, cmd) => {
                let cur = Some(self.pe_part[pe as usize]);
                self.with_layer(parts, t, cur, |layer, ctx| match cmd {
                    Cmd::Send { dst, msg } => layer.sync_send(ctx, pe, dst, msg),
                    Cmd::CreatePersistent {
                        dst,
                        max_bytes,
                        handle,
                    } => layer.create_persistent(ctx, pe, dst, max_bytes, handle),
                    Cmd::SendPersistent { handle, dst, msg } => {
                        layer.send_persistent(ctx, handle, pe, dst, msg)
                    }
                });
            }
            Event::PeRun(_) | Event::Deliver(..) => {
                unreachable!("PE-local events live in partition queues")
            }
            Event::NodeLife(..) | Event::FtRecover(_) => {
                unreachable!("node-crash plans force the sequential engine")
            }
        }
    }

    fn with_layer(
        &mut self,
        parts: &mut [PartData],
        t: Time,
        cur_part: Option<u32>,
        f: impl FnOnce(&mut dyn MachineLayer, &mut MachineCtx),
    ) {
        // panic-ok: reentrancy guard — with_layer never nests
        let mut layer = self.layer.take().expect("machine layer reentrancy");
        {
            let mut ctx = MachineCtx {
                now: t,
                cfg: self.cfg,
                back: McBack::Par {
                    parts,
                    pe_part: self.pe_part,
                    serial: &mut self.serial,
                    ord: &mut self.ord,
                    cur_part,
                    lookahead: self.lookahead,
                },
                trace: &mut *self.trace,
                stats: &mut *self.stats,
            };
            f(layer.as_mut(), &mut ctx);
        }
        *self.layer = Some(layer);
    }

    /// Apply buffered window effects. Every destination is either
    /// per-partition-order sensitive at most per PE (the trace: per-PE
    /// accumulators, per-PE pending segments, and a log that consumers
    /// stable-sort by `(pe, start)`) or commutative (stats sums, the `now`
    /// running max), so replaying each partition's stream sequentially is
    /// observation-equivalent to the canonical k-way merge — without the
    /// per-record comparisons. (The one global-order consumer, a streaming
    /// trace sink, forces the sequential engine in `run_parallel`.)
    ///
    /// Leaves `fx`/`origins` in place: `flatten` still needs them to order
    /// surviving in-phase keys.
    fn replay_fx(&mut self, parts: &mut [PartData]) {
        for p in parts.iter() {
            for rec in &p.fx {
                self.stats.add(&rec.stats);
            }
            for op in &p.trace_ops {
                self.trace.apply(op);
            }
            if let Some(rec) = p.fx.last() {
                // Partition streams are time-sorted: the last record holds
                // the partition's furthest virtual time.
                self.now = self.now.max(rec.key.t);
            }
        }
    }

    /// Re-key every pending event (including buffered commands) with fresh
    /// flat ordinals in canonical order, so in-phase keys — meaningless
    /// without this phase's `origins`/`fx` logs — never outlive their
    /// phase. Clears the phase logs afterwards.
    fn flatten(&mut self, parts: &mut [PartData]) {
        let epoch = parts.first().map_or(0, |p| p.epoch);
        let mut all: Vec<(usize, EvKey, Event)> = Vec::new();
        for (k, ev) in self.serial.drain_sorted() {
            all.push((SER, k, ev));
        }
        for (i, p) in parts.iter_mut().enumerate() {
            for (k, ev) in p.q.drain_sorted() {
                all.push((i, k, ev));
            }
            for (k, ev) in p.cmds.drain(..) {
                all.push((i, k, ev));
            }
        }
        all.sort_by(|a, b| canon_cmp(parts, epoch, a.0, a.1, b.0, b.1).then_with(|| a.0.cmp(&b.0)));
        for (_, k, ev) in all {
            let nk = EvKey::flat(k.t, self.ord);
            self.ord += 1;
            match &ev {
                Event::PeRun(pe) | Event::Deliver(pe, _) => {
                    parts[self.pe_part[*pe as usize] as usize].q.push(nk, ev)
                }
                _ => self.serial.push(nk, ev),
            }
        }
        for p in parts.iter_mut() {
            p.fx.clear();
            p.origins.clear();
            p.trace_ops.clear();
        }
    }

    /// A window batch discovered a stop; `kstar` (in partition `pstar`) is
    /// its canonical key. Events canonically after it are dead (the
    /// sequential engine never reaches them — their buffered effects are
    /// discarded, and unexecuted ones become post-run leftovers only if
    /// the sequential engine would also have left them queued); events
    /// before it that other partitions had not yet processed (windows may
    /// end early on Cmd bounds, frontiers or the event cap) are executed
    /// here, interleaved with the buffered effect replay in one canonical
    /// key-ordered pass.
    fn finish_stop(&mut self, parts: &mut [PartData], pstar: usize, kstar: EvKey) {
        use std::cmp::Ordering as O;
        let epoch = parts.first().map_or(0, |p| p.epoch);
        // Unexecuted phase work (partition queues + buffered commands):
        // keep what lies canonically below the stop, in canonical order.
        // Draining the queues up front also means that from here on the
        // partition heaps only ever hold *fresh* flat keys pushed by the
        // drain itself, whose plain heap order is exact.
        let mut pending: Vec<(usize, EvKey, Event)> = Vec::new();
        for (i, p) in parts.iter_mut().enumerate() {
            for (k, ev) in p.q.drain_sorted() {
                pending.push((i, k, ev));
            }
            for (k, ev) in p.cmds.drain(..) {
                pending.push((i, k, ev));
            }
        }
        pending.retain(|(pi, k, _)| canon_cmp(parts, epoch, *pi, *k, pstar, kstar) == O::Less);
        pending.sort_by(|a, b| {
            canon_cmp(parts, epoch, a.0, a.1, b.0, b.1).then_with(|| a.0.cmp(&b.0))
        });
        let mut pending = pending.into_iter().peekable();

        enum Pick {
            Fx(usize),
            Pend,
            Serial,
            PartQ(usize),
        }
        let kstar_ck = CKey {
            phase: true,
            part: pstar,
            k: kstar,
        };
        let n = parts.len();
        let mut fi = vec![0usize; n];
        let mut ti = vec![0usize; n];
        let mut early = false;
        loop {
            // Discard effect records canonically past the stop (executed
            // too far; the partition state they mutated is unobservable —
            // the run ends at the stop). Streams are canonically sorted,
            // so these form a suffix.
            for i in 0..n {
                while fi[i] < parts[i].fx.len() {
                    let k = parts[i].fx[fi[i]].key;
                    if canon_cmp(parts, epoch, i, k, pstar, kstar) == O::Greater {
                        ti[i] += parts[i].fx[fi[i]].trace_n as usize;
                        fi[i] += 1;
                    } else {
                        break;
                    }
                }
            }
            // Canonical-min candidate across the four sources.
            let mut best: Option<(CKey, Pick)> = None;
            for i in 0..n {
                if fi[i] < parts[i].fx.len() {
                    let c = CKey {
                        phase: true,
                        part: i,
                        k: parts[i].fx[fi[i]].key,
                    };
                    if best
                        .as_ref()
                        .is_none_or(|(b, _)| ckey_cmp(parts, epoch, c, *b) == O::Less)
                    {
                        best = Some((c, Pick::Fx(i)));
                    }
                }
            }
            if let Some((pi, k, _)) = pending.peek() {
                let c = CKey {
                    phase: true,
                    part: *pi,
                    k: *k,
                };
                if best
                    .as_ref()
                    .is_none_or(|(b, _)| ckey_cmp(parts, epoch, c, *b) == O::Less)
                {
                    best = Some((c, Pick::Pend));
                }
            }
            if let Some(k) = self.serial.peek_key() {
                let c = CKey {
                    phase: k.ord < epoch,
                    part: SER,
                    k: *k,
                };
                if best
                    .as_ref()
                    .is_none_or(|(b, _)| ckey_cmp(parts, epoch, c, *b) == O::Less)
                {
                    best = Some((c, Pick::Serial));
                }
            }
            for i in 0..n {
                if let Some(k) = parts[i].q.peek_key() {
                    let c = CKey {
                        phase: false,
                        part: i,
                        k: *k,
                    };
                    if best
                        .as_ref()
                        .is_none_or(|(b, _)| ckey_cmp(parts, epoch, c, *b) == O::Less)
                    {
                        best = Some((c, Pick::PartQ(i)));
                    }
                }
            }
            let Some((ck, pick)) = best else { break };
            if ckey_cmp(parts, epoch, ck, kstar_ck) == O::Greater {
                // Nothing before the stop remains (while the stop's own
                // effect record is unapplied it bounds every pick, so this
                // cannot skip it). What's left stays queued as leftovers.
                break;
            }
            match pick {
                Pick::Fx(b) => {
                    let rec = &parts[b].fx[fi[b]];
                    self.now = self.now.max(rec.key.t);
                    self.stats.add(&rec.stats);
                    for k in 0..rec.trace_n as usize {
                        self.trace.apply(&parts[b].trace_ops[ti[b] + k]);
                    }
                    ti[b] += rec.trace_n as usize;
                    let stop_here = rec.stop;
                    fi[b] += 1;
                    if stop_here {
                        break; // kstar itself: the run ends here.
                    }
                }
                Pick::Pend => {
                    let (_, k, ev) = pending.next().expect("peeked");
                    self.now = self.now.max(k.t);
                    match &ev {
                        Event::PeRun(pe) | Event::Deliver(pe, _) => {
                            let pi = self.pe_part[*pe as usize] as usize;
                            self.exec_inline(&mut parts[pi], k.t, ev);
                        }
                        _ => self.exec_serial(parts, k.t, ev),
                    }
                }
                Pick::Serial => {
                    let (k, ev) = self.serial.pop().expect("peeked");
                    self.now = self.now.max(k.t);
                    self.exec_serial(parts, k.t, ev);
                }
                Pick::PartQ(i) => {
                    let (k, ev) = parts[i].q.pop().expect("peeked");
                    self.now = self.now.max(k.t);
                    self.exec_inline(&mut parts[i], k.t, ev);
                }
            }
            if self.stopped {
                // An earlier event also stopped: it wins outright.
                early = true;
                break;
            }
        }
        if !early {
            self.now = self.now.max(kstar.t);
            self.stopped = true;
        }
        // Everything still queued mirrors what the sequential engine
        // leaves behind on an early stop; hand it to the teardown in
        // canonical order (the keys die with this phase's logs).
        let mut left: Vec<(CKey, Event)> = Vec::new();
        for (pi, k, ev) in pending {
            left.push((
                CKey {
                    phase: true,
                    part: pi,
                    k,
                },
                ev,
            ));
        }
        for (k, ev) in self.serial.drain_sorted() {
            left.push((
                CKey {
                    phase: k.ord < epoch,
                    part: SER,
                    k,
                },
                ev,
            ));
        }
        for (i, p) in parts.iter_mut().enumerate() {
            for (k, ev) in p.q.drain_sorted() {
                left.push((
                    CKey {
                        phase: false,
                        part: i,
                        k,
                    },
                    ev,
                ));
            }
        }
        left.sort_by(|a, b| ckey_cmp(parts, epoch, a.0, b.0).then_with(|| a.0.part.cmp(&b.0.part)));
        self.leftovers = left.into_iter().map(|(c, ev)| (c.k.t, ev)).collect();
        for p in parts.iter_mut() {
            p.fx.clear();
            p.origins.clear();
            p.trace_ops.clear();
        }
    }
}

/// What an application handler sees: the Converse/Charm API.
pub struct PeCtx<'a> {
    pe: PeId,
    start: Time,
    charged_app: Time,
    pub(crate) charged_ovh: Time,
    pub(crate) cfg: &'a ClusterCfg,
    user: &'a mut Box<dyn Any + Send>,
    rng: &'a mut DetRng,
    pub(crate) charm_pe: &'a mut CharmPe,
    pub(crate) charm_reg: &'a CharmRegistry,
    /// Typed-AM per-PE state (coalescing buffers + recyclers — am.rs).
    pub(crate) am_pe: &'a mut crate::am::AmPe,
    pub(crate) am_reg: &'a crate::am::AmRegistry,
    pub(crate) outbox: &'a mut Vec<(Time, Event)>,
    stop: &'a mut bool,
    next_persistent: &'a mut u64,
    pub(crate) stats: &'a mut ClusterStats,
    pub(crate) qd_pe: &'a mut QdPe,
    qd_global: &'a mut Option<QdState>,
    system_handlers: &'a std::collections::HashSet<u16>,
    /// FT subsystem state (None when FT is off — FT forces the sequential
    /// engine, so parallel execution always sees None here).
    ft_global: &'a mut Option<FtCore>,
    /// Membership epoch stamped on every send from this handler.
    epoch: u32,
}

impl PeCtx<'_> {
    pub fn pe(&self) -> PeId {
        self.pe
    }

    pub fn num_pes(&self) -> u32 {
        self.cfg.num_pes
    }

    pub fn node(&self) -> NodeId {
        self.pe / self.cfg.cores_per_node
    }

    pub fn cores_per_node(&self) -> u32 {
        self.cfg.cores_per_node
    }

    /// Current PE-local virtual time (start of handler + charged work).
    pub fn now(&self) -> Time {
        self.start + self.charged_app + self.charged_ovh
    }

    /// Account for `ns` of application computation.
    pub fn charge(&mut self, ns: Time) {
        self.charged_app += ns;
    }

    /// Per-PE deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Typed access to this PE's user state.
    pub fn user<T: 'static>(&mut self) -> &mut T {
        self.user.downcast_mut().expect("user state type mismatch")
    }

    /// Asynchronous send: the message leaves at the current PE-local time.
    /// Self-sends short-circuit the machine layer (Converse loopback).
    pub fn send(&mut self, dst: PeId, handler: HandlerId, payload: Bytes) {
        self.charged_ovh += self.cfg.send_overhead;
        if !self.system_handlers.contains(&handler.0) {
            self.qd_pe.sent += 1;
        }
        let at = self.now();
        let env = Envelope::new(self.pe, dst, handler, payload).with_epoch(self.epoch);
        let bytes = env.encode();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        if dst == self.pe {
            self.outbox.push((at, Event::Deliver(dst, bytes)));
        } else {
            self.outbox
                .push((at, Event::Cmd(self.pe, Cmd::Send { dst, msg: bytes })));
        }
    }

    /// Like [`PeCtx::send`] with an explicit scheduling priority: smaller
    /// values are executed first at the destination (Charm++'s prioritized
    /// messages). Network transit is unaffected — priority orders the
    /// destination's scheduler queue.
    pub fn send_prio(&mut self, dst: PeId, handler: HandlerId, payload: Bytes, priority: u16) {
        self.charged_ovh += self.cfg.send_overhead;
        if !self.system_handlers.contains(&handler.0) {
            self.qd_pe.sent += 1;
        }
        let at = self.now();
        let env = Envelope::new(self.pe, dst, handler, payload)
            .with_priority(priority)
            .with_epoch(self.epoch);
        let bytes = env.encode();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        if dst == self.pe {
            self.outbox.push((at, Event::Deliver(dst, bytes)));
        } else {
            self.outbox
                .push((at, Event::Cmd(self.pe, Cmd::Send { dst, msg: bytes })));
        }
    }

    /// Deferred send (timer): like [`PeCtx::send`] but leaving after
    /// `delay` ns of additional virtual time.
    pub fn send_after(&mut self, delay: Time, dst: PeId, handler: HandlerId, payload: Bytes) {
        self.send_after_prio(delay, dst, handler, payload, crate::msg::DEFAULT_PRIO)
    }

    /// [`PeCtx::send_after`] with an explicit scheduling priority. The FT
    /// heartbeat chains use priority 0: a timer that queues behind a
    /// saturated PE's application backlog drifts by the backlog depth,
    /// which would turn scheduler pressure into false failure suspicions.
    pub fn send_after_prio(
        &mut self,
        delay: Time,
        dst: PeId,
        handler: HandlerId,
        payload: Bytes,
        priority: u16,
    ) {
        if !self.system_handlers.contains(&handler.0) {
            self.qd_pe.sent += 1;
        }
        let at = self.now() + delay;
        let env = Envelope::new(self.pe, dst, handler, payload)
            .with_priority(priority)
            .with_epoch(self.epoch);
        let bytes = env.encode();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        if dst == self.pe {
            self.outbox.push((at, Event::Deliver(dst, bytes)));
        } else {
            self.outbox
                .push((at, Event::Cmd(self.pe, Cmd::Send { dst, msg: bytes })));
        }
    }

    /// `LrtsCreatePersistent`: set up a persistent channel to `dst` able to
    /// carry up to `max_bytes` messages. Returns immediately; the machine
    /// layer binds the handle when the command reaches it (sends issued
    /// after this call on this PE are ordered behind the creation).
    pub fn create_persistent(&mut self, dst: PeId, max_bytes: u64) -> PersistentHandle {
        // Handles are per-PE namespaced so the value does not depend on the
        // global interleaving of create calls (identical in run and
        // run_parallel).
        let handle = PersistentHandle(((self.pe as u64) << 32) | *self.next_persistent);
        *self.next_persistent += 1;
        let at = self.now();
        self.outbox.push((
            at,
            Event::Cmd(
                self.pe,
                Cmd::CreatePersistent {
                    dst,
                    max_bytes,
                    handle,
                },
            ),
        ));
        handle
    }

    /// `LrtsSendPersistentMsg`.
    pub fn send_persistent(
        &mut self,
        handle: PersistentHandle,
        dst: PeId,
        h: HandlerId,
        payload: Bytes,
    ) {
        self.charged_ovh += self.cfg.send_overhead;
        if !self.system_handlers.contains(&h.0) {
            self.qd_pe.sent += 1;
        }
        let at = self.now();
        let env = Envelope::new(self.pe, dst, h, payload).with_epoch(self.epoch);
        let bytes = env.encode();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        self.outbox.push((
            at,
            Event::Cmd(
                self.pe,
                Cmd::SendPersistent {
                    handle,
                    dst,
                    msg: bytes,
                },
            ),
        ));
    }

    /// Halt the whole simulation after this handler returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// This PE's quiescence counters `(sent, delivered)`, excluding system
    /// traffic.
    pub fn qd_counters(&self) -> (u64, u64) {
        (self.qd_pe.sent, self.qd_pe.delivered)
    }

    /// The global QD coordinator state (panics when QD is not installed;
    /// only the QD handlers call this).
    pub fn qd_state(&mut self) -> &mut QdState {
        self.qd_global
            .as_mut()
            .expect("quiescence detection not installed")
    }

    /// The fault-tolerance core state (panics when FT is not enabled; only
    /// the FT system handlers call this).
    pub(crate) fn ft_state(&mut self) -> &mut FtCore {
        self.ft_global
            .as_mut()
            .expect("fault tolerance not enabled")
    }

    /// The current membership epoch (0 when fault tolerance is off).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Request a checkpoint if the configured cadence has elapsed since the
    /// last one. Apps call this from a quiescent point (e.g. a reduction
    /// client); the snapshot itself is taken by the driver between events,
    /// after this handler returns. Returns whether a checkpoint was queued.
    /// No-op (false) when fault tolerance is off, so apps can call it
    /// unconditionally.
    pub fn ft_maybe_checkpoint(&mut self) -> bool {
        let now = self.now();
        let Some(ft) = self.ft_global.as_mut() else {
            return false;
        };
        if now < ft.last_ckpt.saturating_add(ft.cfg.ckpt_period) {
            return false;
        }
        ft.last_ckpt = now;
        ft.pending.push(crate::ft::FtAction::Checkpoint);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealLayer;
    use crate::msg::wire;

    fn cluster(pes: u32) -> Cluster {
        Cluster::new(ClusterCfg::new(pes, 4), Box::new(IdealLayer::new(1000)))
    }

    #[test]
    fn ping_pong_round_trip_times() {
        let mut c = cluster(2);
        // Bounce between PE 0 and PE 1, decrementing; stop at 0.
        let h = c.register_handler(|ctx, env| {
            let n = wire::unpack_u64(&env.payload, 0);
            if n == 0 {
                ctx.stop();
            } else {
                ctx.send(1 - ctx.pe(), env.handler, wire::pack_u64s(&[n - 1]));
            }
        });
        c.inject(0, 0, h, wire::pack_u64s(&[4]));
        let r = c.run();
        assert!(r.stopped_early);
        // 4 network traversals at 1000ns each plus overheads.
        assert!(r.end_time >= 4_000, "end {}", r.end_time);
        assert_eq!(r.stats.msgs_delivered, 5); // inject + 4 hops
        assert_eq!(r.stats.handlers_run, 5);
    }

    #[test]
    fn self_send_skips_machine_layer() {
        let mut c = cluster(1);
        let h = c.register_handler(|ctx, env| {
            let n = wire::unpack_u64(&env.payload, 0);
            if n > 0 {
                ctx.send(ctx.pe(), env.handler, wire::pack_u64s(&[n - 1]));
            }
        });
        c.inject(0, 0, h, wire::pack_u64s(&[3]));
        let r = c.run();
        assert_eq!(r.stats.handlers_run, 4);
        // No network latency: should finish in a few hundred ns of overhead.
        assert!(r.end_time < 3_000, "self sends must not touch the network");
    }

    #[test]
    fn charge_advances_virtual_time() {
        let mut c = cluster(1);
        let h = c.register_handler(|ctx, _| {
            assert_eq!(ctx.now(), 0);
            ctx.charge(5_000);
            assert_eq!(ctx.now(), 5_000);
        });
        c.inject(0, 0, h, Bytes::new());
        c.run();
        assert_eq!(c.trace().total_busy(), 5_000);
    }

    #[test]
    fn busy_pe_serializes_handlers() {
        let mut c = cluster(2);
        let h = c.register_handler(|ctx, _| ctx.charge(10_000));
        // Two messages land at the same PE at t=0.
        c.inject(0, 1, h, Bytes::new());
        c.inject(0, 1, h, Bytes::new());
        c.run();
        // Second handler cannot start before the first's 10us finishes.
        assert!(
            c.trace().end_time() >= 20_000,
            "end {}",
            c.trace().end_time()
        );
        assert_eq!(c.trace().total_busy(), 20_000);
    }

    #[test]
    fn user_state_round_trips() {
        let mut c = cluster(3);
        c.init_user(|pe| pe as u64 * 100);
        let h = c.register_handler(|ctx, _| {
            *ctx.user::<u64>() += 1;
        });
        for pe in 0..3 {
            c.inject(0, pe, h, Bytes::new());
        }
        c.run();
        assert_eq!(*c.user::<u64>(0), 1);
        assert_eq!(*c.user::<u64>(2), 201);
    }

    #[test]
    fn send_after_delays_delivery() {
        let mut c = cluster(1);
        let h2 = c.register_handler(|ctx, _| ctx.stop());
        let h1 = c.register_handler(move |ctx, _| {
            ctx.send_after(50_000, ctx.pe(), h2, Bytes::new());
        });
        c.inject(0, 0, h1, Bytes::new());
        let r = c.run();
        assert!(r.end_time >= 50_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let mut c = cluster(4);
            let h = c.register_handler(|ctx, env| {
                let n = wire::unpack_u64(&env.payload, 0);
                if n > 0 {
                    let dst = ctx.rng().below(4) as u32;
                    ctx.send(dst, env.handler, wire::pack_u64s(&[n - 1]));
                }
            });
            c.inject(0, 0, h, wire::pack_u64s(&[64]));
            c.run().end_time
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "unregistered handler")]
    fn unknown_handler_panics() {
        let mut c = cluster(1);
        c.inject(0, 0, HandlerId(40), Bytes::new());
        c.run();
    }

    #[test]
    fn priorities_order_the_scheduler_queue() {
        let mut c = cluster(1);
        c.init_user(|_| Vec::<u16>::new());
        let record = c.register_handler(|ctx, env| {
            let p = env.priority;
            ctx.user::<Vec<u16>>().push(p);
        });
        let kick = c.register_handler(move |ctx, _| {
            // Self-sends with a spread of priorities, issued in one burst:
            // a busy charge ensures they all queue before any runs.
            ctx.charge(50_000);
            ctx.send_prio(0, record, Bytes::new(), 900);
            ctx.send_prio(0, record, Bytes::new(), 5);
            ctx.send_prio(0, record, Bytes::new(), 100);
            ctx.send_prio(0, record, Bytes::new(), 5); // FIFO within 5
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        assert_eq!(c.user::<Vec<u16>>(0), &vec![5, 5, 100, 900]);
    }

    /// Random fan-out traffic over 4 nodes, run at a given thread count.
    /// Returns everything the parallel engine must reproduce bit for bit.
    fn fanout_run(threads: u32, stop_at: Option<u64>) -> (RunReport, Time, Time, u64, String) {
        let mut cfg = ClusterCfg::new(16, 4);
        cfg.threads = threads;
        let mut c = Cluster::new(cfg, Box::new(IdealLayer::new(1000)));
        c.enable_trace_log();
        let h = c.register_handler(move |ctx, env| {
            let n = wire::unpack_u64(&env.payload, 0);
            ctx.charge(300 + (n % 7) * 40);
            if stop_at == Some(n) {
                ctx.stop();
                return;
            }
            if n > 0 {
                let dst = ctx.rng().below(16) as u32;
                ctx.send(dst, env.handler, wire::pack_u64s(&[n - 1]));
                if n.is_multiple_of(3) {
                    let dst2 = ctx.rng().below(16) as u32;
                    ctx.send(dst2, env.handler, wire::pack_u64s(&[n / 2]));
                }
            }
        });
        for pe in 0..16 {
            c.inject(0, pe, h, wire::pack_u64s(&[24 + pe as u64]));
        }
        let r = c.run();
        (
            r,
            c.trace().total_busy(),
            c.trace().total_overhead(),
            c.trace().total_msgs(),
            c.trace().export_log(),
        )
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = fanout_run(1, None);
        for threads in [2, 4, 8] {
            let par = fanout_run(threads, None);
            assert_eq!(seq.0.end_time, par.0.end_time, "threads={threads}");
            assert_eq!(seq.0.stats, par.0.stats, "threads={threads}");
            assert_eq!(seq.1, par.1, "busy, threads={threads}");
            assert_eq!(seq.2, par.2, "overhead, threads={threads}");
            assert_eq!(seq.3, par.3, "msgs, threads={threads}");
            assert_eq!(seq.4, par.4, "trace log, threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_sequential_with_stop() {
        let seq = fanout_run(1, Some(5));
        assert!(seq.0.stopped_early);
        for threads in [2, 4] {
            let par = fanout_run(threads, Some(5));
            assert_eq!(seq.0.end_time, par.0.end_time, "threads={threads}");
            assert_eq!(seq.0.stats, par.0.stats, "threads={threads}");
            assert_eq!(seq.4, par.4, "trace log, threads={threads}");
        }
    }

    #[test]
    fn trace_records_overhead() {
        let mut c = cluster(2);
        let h = c.register_handler(|ctx, env| {
            if ctx.pe() == 0 {
                ctx.send(1, env.handler, Bytes::new());
            }
        });
        c.inject(0, 0, h, Bytes::new());
        c.run();
        assert!(c.trace().total_overhead() > 0);
        assert_eq!(c.stats().msgs_sent, 1);
    }
}
