//! The sequential discrete-event driver binding Converse schedulers,
//! a machine layer, and the simulated fabric into one runnable job.
//!
//! Execution model (DESIGN.md §3): every PE owns a Converse scheduler — a
//! FIFO of delivered envelopes. Handlers are real Rust closures executed at
//! their virtual start time; they account for computation with
//! [`PeCtx::charge`] and their sends are timestamped at the PE-local
//! virtual time at which they were issued. A PE processes one message at a
//! time (`busy_until`); machine-layer progress for a PE is deferred while
//! that PE is busy, which is exactly how a non-SMP Charm++ process only
//! advances the network between handler executions — the mechanism behind
//! the paper's Fig. 10 and Fig. 12 observations.

use crate::charm::{CharmPe, CharmRegistry};
use crate::lrts::{MachineLayer, PersistentHandle};
use crate::msg::{Envelope, HandlerId, PeId};
use crate::qd::{QdPe, QdState};
use crate::trace::{Kind, Trace};
use bytes::Bytes;
use gemini_net::NodeId;
use sim_core::{DetRng, EventQueue, Time};
use std::any::Any;
use std::collections::VecDeque;
use std::rc::Rc;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterCfg {
    pub num_pes: u32,
    pub cores_per_node: u32,
    /// Converse scheduler cost per executed handler (dequeue + dispatch).
    pub sched_overhead: Time,
    /// Converse-level cost of issuing one send (envelope setup), excluding
    /// everything the machine layer charges.
    pub send_overhead: Time,
    /// Timeline bucket width for Fig.-12-style profiles (None = totals only).
    pub trace_bucket: Option<Time>,
    /// Safety valve for runaway simulations.
    pub max_events: u64,
    /// Seed for all per-PE deterministic RNGs.
    pub seed: u64,
    /// Chaos knob: the fault plan active in the machine layer's fabric (the
    /// inert default injects nothing). Kept here so drivers and reports can
    /// see at the cluster level whether a run was a chaos run.
    pub fault: gemini_net::FaultPlan,
}

impl ClusterCfg {
    pub fn new(num_pes: u32, cores_per_node: u32) -> Self {
        ClusterCfg {
            num_pes,
            cores_per_node,
            sched_overhead: 200,
            send_overhead: 100,
            trace_bucket: None,
            max_events: 2_000_000_000,
            seed: 0xC0FFEE,
            fault: gemini_net::FaultPlan::default(),
        }
    }

    pub fn num_nodes(&self) -> u32 {
        self.num_pes.div_ceil(self.cores_per_node)
    }
}

/// Commands from application handlers to the machine layer, executed at
/// the PE-local virtual time they were issued (this keeps all fabric calls
/// globally time-ordered).
pub enum Cmd {
    Send {
        dst: PeId,
        msg: Bytes,
    },
    CreatePersistent {
        dst: PeId,
        max_bytes: u64,
        handle: PersistentHandle,
    },
    SendPersistent {
        handle: PersistentHandle,
        dst: PeId,
        msg: Bytes,
    },
}

/// Simulation events.
pub enum Event {
    /// Let the PE's Converse scheduler run one message.
    PeRun(PeId),
    /// Hand an encoded envelope to a PE's scheduler queue.
    Deliver(PeId, Bytes),
    /// Machine-layer-specific event, processed when the PE is free.
    Machine(PeId, Box<dyn Any>),
    /// Machine-layer event processed at its exact time even if the PE is
    /// busy (protocol continuations whose CPU cost was already charged).
    MachineNow(PeId, Box<dyn Any>),
    /// Drain a PE's parked machine events now that it may be free.
    ParkedWake(PeId),
    /// Application command issued from a handler on `PeId`.
    Cmd(PeId, Cmd),
}

pub(crate) struct PeState {
    /// Prioritized Converse scheduler queue: (priority, seq) ordering,
    /// FIFO within a priority (Charm++'s prioritized execution).
    queue: std::collections::BinaryHeap<std::cmp::Reverse<PrioEnv>>,
    queue_seq: u64,
    busy_until: Time,
    run_scheduled: bool,
    /// Machine events deferred while this PE was busy, drained by a single
    /// ParkedWake event (re-queueing each one individually is quadratic
    /// under load).
    parked: VecDeque<Box<dyn Any>>,
    parked_wake: bool,
    user: Box<dyn Any>,
    rng: DetRng,
    pub(crate) charm: CharmPe,
    qd: QdPe,
}

/// Queue entry ordered by (priority, arrival sequence).
pub(crate) struct PrioEnv {
    prio: u16,
    seq: u64,
    env: Envelope,
}

impl PartialEq for PrioEnv {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl Eq for PrioEnv {}
impl PartialOrd for PrioEnv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioEnv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.seq).cmp(&(other.prio, other.seq))
    }
}

/// Aggregate run statistics.
#[derive(Debug, Default, Clone)]
pub struct ClusterStats {
    pub events: u64,
    /// Event-type breakdown: [PeRun, Deliver, Machine, MachineNow, Cmd].
    pub event_kinds: [u64; 5],
    pub handlers_run: u64,
    pub msgs_sent: u64,
    pub msgs_delivered: u64,
    pub bytes_sent: u64,
    /// Messages / bytes that actually crossed the machine layer (excludes
    /// Converse self-send loopback).
    pub net_msgs: u64,
    pub net_bytes: u64,
}

/// Result of [`Cluster::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time of the last processed event.
    pub end_time: Time,
    pub stats: ClusterStats,
    pub stopped_early: bool,
}

/// A complete simulated job.
pub struct Cluster {
    pub cfg: ClusterCfg,
    now: Time,
    events: EventQueue<Event>,
    pub(crate) pes: Vec<PeState>,
    layer: Option<Box<dyn MachineLayer>>,
    #[allow(clippy::type_complexity)]
    handlers: Vec<Rc<dyn Fn(&mut PeCtx, Envelope)>>,
    pub(crate) charm: CharmRegistry,
    trace: Trace,
    stats: ClusterStats,
    next_persistent: u64,
    stopped: bool,
    /// Handlers whose traffic is excluded from quiescence counting (QD's
    /// own control messages and the QD client notification).
    system_handlers: std::collections::HashSet<u16>,
    qd: Option<QdState>,
}

impl Cluster {
    pub fn new(cfg: ClusterCfg, layer: Box<dyn MachineLayer>) -> Self {
        let trace = Trace::new(cfg.num_pes, cfg.trace_bucket);
        let pes = (0..cfg.num_pes)
            .map(|pe| PeState {
                queue: std::collections::BinaryHeap::new(),
                queue_seq: 0,
                busy_until: 0,
                run_scheduled: false,
                parked: VecDeque::new(),
                parked_wake: false,
                user: Box::new(()),
                rng: DetRng::derive(cfg.seed, pe as u64),
                charm: CharmPe::default(),
                qd: QdPe::default(),
            })
            .collect();
        let mut c = Cluster {
            cfg,
            now: 0,
            events: EventQueue::new(),
            pes,
            layer: Some(layer),
            handlers: Vec::new(),
            charm: CharmRegistry::default(),
            trace,
            stats: ClusterStats::default(),
            next_persistent: 0,
            stopped: false,
            system_handlers: std::collections::HashSet::new(),
            qd: None,
        };
        // Handler 0 is reserved for the Charm dispatch (arrays, broadcast,
        // reductions — see charm.rs).
        let h = c.register_handler(crate::charm::dispatch);
        debug_assert_eq!(h, crate::charm::CHARM_HANDLER);
        // Give the machine layer its LrtsInit call at t=0.
        let mut layer = c.layer.take().expect("layer");
        {
            let mut ctx = MachineCtx {
                now: 0,
                cfg: &c.cfg,
                pes: &mut c.pes,
                events: &mut c.events,
                trace: &mut c.trace,
                stats: &mut c.stats,
            };
            layer.init(&mut ctx);
        }
        c.layer = Some(layer);
        c
    }

    /// Register a Converse handler; returns its id.
    pub fn register_handler(&mut self, f: impl Fn(&mut PeCtx, Envelope) + 'static) -> HandlerId {
        self.handlers.push(Rc::new(f));
        HandlerId(self.handlers.len() as u16 - 1)
    }

    /// Install per-PE user state.
    pub fn init_user<T: 'static>(&mut self, mut f: impl FnMut(PeId) -> T) {
        for pe in 0..self.cfg.num_pes {
            self.pes[pe as usize].user = Box::new(f(pe));
        }
    }

    /// Read back per-PE user state after a run.
    pub fn user<T: 'static>(&self, pe: PeId) -> &T {
        self.pes[pe as usize]
            .user
            .downcast_ref()
            .expect("user state type mismatch")
    }

    pub fn user_mut<T: 'static>(&mut self, pe: PeId) -> &mut T {
        self.pes[pe as usize]
            .user
            .downcast_mut()
            .expect("user state type mismatch")
    }

    /// Install quiescence detection state (see [`crate::qd::register`]).
    pub(crate) fn install_qd(&mut self, st: QdState, system: &[HandlerId]) {
        self.qd = Some(st);
        for h in system {
            self.system_handlers.insert(h.0);
        }
    }

    /// Seed the job with an initial message (like a mainchare entry).
    pub fn inject(&mut self, at: Time, dst: PeId, handler: HandlerId, payload: Bytes) {
        let env = Envelope::new(dst, dst, handler, payload);
        // Balance the quiescence ledger: an injection is an external send.
        if !self.system_handlers.contains(&handler.0) {
            self.pes[dst as usize].qd.sent += 1;
        }
        self.events.push(at, Event::Deliver(dst, env.encode()));
    }

    /// Direct access to the machine layer (e.g. to read its stats after a
    /// run).
    pub fn layer_mut<T: 'static>(&mut self) -> &mut T {
        self.layer
            .as_mut()
            .expect("layer")
            .as_any()
            .downcast_mut()
            .expect("layer type mismatch")
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enable the per-PE Projections-style segment log (see
    /// [`Trace::export_log`]); call before `run`.
    pub fn enable_trace_log(&mut self) {
        self.trace.enable_log();
    }

    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn node_of(&self, pe: PeId) -> NodeId {
        pe / self.cfg.cores_per_node
    }

    /// Run until the event queue drains, a handler calls [`PeCtx::stop`],
    /// or `max_events` is hit.
    pub fn run(&mut self) -> RunReport {
        while !self.stopped {
            if self.stats.events >= self.cfg.max_events {
                panic!(
                    "simulation exceeded max_events={} at t={}",
                    self.cfg.max_events, self.now
                );
            }
            let Some((t, ev)) = self.events.pop() else {
                break;
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.stats.events += 1;
            self.stats.event_kinds[match &ev {
                Event::PeRun(_) => 0,
                Event::Deliver(..) => 1,
                Event::Machine(..) | Event::ParkedWake(_) => 2,
                Event::MachineNow(..) => 3,
                Event::Cmd(..) => 4,
            }] += 1;
            self.dispatch(t, ev);
        }
        RunReport {
            end_time: self.now,
            stats: self.stats.clone(),
            stopped_early: self.stopped,
        }
    }

    fn dispatch(&mut self, t: Time, ev: Event) {
        match ev {
            Event::PeRun(pe) => self.pe_run(t, pe),
            Event::Deliver(pe, bytes) => {
                let env = Envelope::decode(&bytes);
                debug_assert_eq!(env.dst_pe, pe);
                self.stats.msgs_delivered += 1;
                self.trace.count_msg(pe);
                let st = &mut self.pes[pe as usize];
                if !self.system_handlers.contains(&env.handler.0) {
                    st.qd.delivered += 1;
                }
                let seq = st.queue_seq;
                st.queue_seq += 1;
                st.queue.push(std::cmp::Reverse(PrioEnv {
                    prio: env.priority,
                    seq,
                    env,
                }));
                if !st.run_scheduled {
                    st.run_scheduled = true;
                    let at = t.max(st.busy_until);
                    self.events.push(at, Event::PeRun(pe));
                }
            }
            Event::Machine(pe, mev) => {
                let st = &mut self.pes[pe as usize];
                if st.busy_until > t {
                    // Progress only happens when the PE is free: park the
                    // event and arm a single wake at the busy horizon.
                    st.parked.push_back(mev);
                    if !st.parked_wake {
                        st.parked_wake = true;
                        let at = st.busy_until;
                        self.events.push(at, Event::ParkedWake(pe));
                    }
                    return;
                }
                self.with_layer(t, |layer, ctx| layer.on_event(ctx, pe, mev));
            }
            Event::MachineNow(pe, mev) => {
                self.with_layer(t, |layer, ctx| layer.on_event(ctx, pe, mev));
            }
            Event::ParkedWake(pe) => {
                self.pes[pe as usize].parked_wake = false;
                loop {
                    let st = &mut self.pes[pe as usize];
                    if st.parked.is_empty() {
                        break;
                    }
                    if st.busy_until > t {
                        if !st.parked_wake {
                            st.parked_wake = true;
                            let at = st.busy_until;
                            self.events.push(at, Event::ParkedWake(pe));
                        }
                        break;
                    }
                    let mev = st.parked.pop_front().unwrap();
                    self.with_layer(t, |layer, ctx| layer.on_event(ctx, pe, mev));
                }
            }
            Event::Cmd(pe, cmd) => {
                self.with_layer(t, |layer, ctx| match cmd {
                    Cmd::Send { dst, msg } => layer.sync_send(ctx, pe, dst, msg),
                    Cmd::CreatePersistent {
                        dst,
                        max_bytes,
                        handle,
                    } => layer.create_persistent(ctx, pe, dst, max_bytes, handle),
                    Cmd::SendPersistent { handle, dst, msg } => {
                        layer.send_persistent(ctx, handle, pe, dst, msg)
                    }
                });
            }
        }
    }

    fn with_layer(&mut self, t: Time, f: impl FnOnce(&mut dyn MachineLayer, &mut MachineCtx)) {
        let mut layer = self.layer.take().expect("machine layer reentrancy");
        {
            let mut ctx = MachineCtx {
                now: t,
                cfg: &self.cfg,
                pes: &mut self.pes,
                events: &mut self.events,
                trace: &mut self.trace,
                stats: &mut self.stats,
            };
            f(layer.as_mut(), &mut ctx);
        }
        self.layer = Some(layer);
    }

    fn pe_run(&mut self, t: Time, pe: PeId) {
        let st = &mut self.pes[pe as usize];
        if st.busy_until > t {
            // Still finishing earlier work (overhead charges can extend it).
            self.events.push(st.busy_until, Event::PeRun(pe));
            return;
        }
        let Some(std::cmp::Reverse(PrioEnv { env, .. })) = st.queue.pop() else {
            st.run_scheduled = false;
            return;
        };
        let handler = self
            .handlers
            .get(env.handler.0 as usize)
            .unwrap_or_else(|| panic!("unregistered handler {:?}", env.handler))
            .clone();

        let mut outbox: Vec<(Time, Event)> = Vec::new();
        let mut stop = false;
        let (charged_app, charged_ovh) = {
            let st = &mut self.pes[pe as usize];
            let mut ctx = PeCtx {
                pe,
                start: t,
                charged_app: 0,
                charged_ovh: 0,
                cfg: &self.cfg,
                user: &mut st.user,
                rng: &mut st.rng,
                charm_pe: &mut st.charm,
                charm_reg: &self.charm,
                outbox: &mut outbox,
                stop: &mut stop,
                next_persistent: &mut self.next_persistent,
                stats: &mut self.stats,
                qd_pe: &mut st.qd,
                qd_global: &mut self.qd,
                system_handlers: &self.system_handlers,
            };
            handler(&mut ctx, env);
            (ctx.charged_app, ctx.charged_ovh)
        };
        self.stats.handlers_run += 1;

        let total = charged_app + charged_ovh + self.cfg.sched_overhead;
        self.trace.record(pe, t, charged_app, Kind::Busy);
        self.trace.record(
            pe,
            t + charged_app,
            charged_ovh + self.cfg.sched_overhead,
            Kind::Overhead,
        );

        for (at, ev) in outbox {
            self.events.push(at, ev);
        }
        if stop {
            self.stopped = true;
        }

        let st = &mut self.pes[pe as usize];
        st.busy_until = t + total;
        if st.queue.is_empty() {
            st.run_scheduled = false;
        } else {
            self.events.push(st.busy_until, Event::PeRun(pe));
        }
    }
}

/// What a machine layer sees of the cluster.
pub struct MachineCtx<'a> {
    now: Time,
    cfg: &'a ClusterCfg,
    pes: &'a mut Vec<PeState>,
    events: &'a mut EventQueue<Event>,
    trace: &'a mut Trace,
    stats: &'a mut ClusterStats,
}

impl MachineCtx<'_> {
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn num_pes(&self) -> u32 {
        self.cfg.num_pes
    }

    pub fn cores_per_node(&self) -> u32 {
        self.cfg.cores_per_node
    }

    pub fn num_nodes(&self) -> u32 {
        self.cfg.num_nodes()
    }

    pub fn node_of(&self, pe: PeId) -> NodeId {
        pe / self.cfg.cores_per_node
    }

    /// When the PE will next be free (>= now when busy).
    pub fn pe_free_at(&self, pe: PeId) -> Time {
        self.pes[pe as usize].busy_until
    }

    /// Hand a fully received, decoded-ready message to a PE's scheduler,
    /// effective immediately.
    pub fn deliver_now(&mut self, pe: PeId, msg: Bytes) {
        self.events.push(self.now, Event::Deliver(pe, msg));
    }

    /// Deliver at a future instant (e.g. after a modeled copy completes).
    pub fn deliver_at(&mut self, at: Time, pe: PeId, msg: Bytes) {
        debug_assert!(at >= self.now);
        self.events.push(at, Event::Deliver(pe, msg));
    }

    /// Schedule a machine-layer event for `pe` at `at` (delivered when the
    /// PE is free — use for progress-engine work like draining mailboxes).
    pub fn schedule(&mut self, at: Time, pe: PeId, ev: Box<dyn Any>) {
        debug_assert!(at >= self.now);
        self.events.push(at, Event::Machine(pe, ev));
    }

    /// Schedule a machine-layer event that fires at `at` even if the PE is
    /// then busy. Use for protocol continuations (e.g. "buffer prepared,
    /// ship the control message") whose CPU cost was already charged —
    /// deferring those would serialize independent transfers behind
    /// unrelated work.
    pub fn schedule_nodefer(&mut self, at: Time, pe: PeId, ev: Box<dyn Any>) {
        debug_assert!(at >= self.now);
        self.events.push(at, Event::MachineNow(pe, ev));
    }

    /// Charge `ns` of protocol-processing time to `pe`, starting no earlier
    /// than now. Extends the PE's busy window and records overhead.
    pub fn charge_overhead(&mut self, pe: PeId, ns: Time) {
        if ns == 0 {
            return;
        }
        let st = &mut self.pes[pe as usize];
        let start = st.busy_until.max(self.now);
        st.busy_until = start + ns;
        self.trace.record(pe, start, ns, Kind::Overhead);
    }

    /// Charge `ns` of fault-recovery time to `pe` (retries, CQ resyncs,
    /// registration fallbacks). Same busy-window semantics as
    /// [`MachineCtx::charge_overhead`], accounted separately in the trace.
    pub fn charge_recovery(&mut self, pe: PeId, ns: Time) {
        if ns == 0 {
            return;
        }
        let st = &mut self.pes[pe as usize];
        let start = st.busy_until.max(self.now);
        st.busy_until = start + ns;
        self.trace.record(pe, start, ns, Kind::Recovery);
    }

    /// Count a message the machine layer actually put on the wire.
    pub fn count_send(&mut self, bytes: u64) {
        self.stats.net_msgs += 1;
        self.stats.net_bytes += bytes;
    }
}

/// What an application handler sees: the Converse/Charm API.
pub struct PeCtx<'a> {
    pe: PeId,
    start: Time,
    charged_app: Time,
    charged_ovh: Time,
    cfg: &'a ClusterCfg,
    user: &'a mut Box<dyn Any>,
    rng: &'a mut DetRng,
    pub(crate) charm_pe: &'a mut CharmPe,
    pub(crate) charm_reg: &'a CharmRegistry,
    outbox: &'a mut Vec<(Time, Event)>,
    stop: &'a mut bool,
    next_persistent: &'a mut u64,
    stats: &'a mut ClusterStats,
    qd_pe: &'a mut QdPe,
    qd_global: &'a mut Option<QdState>,
    system_handlers: &'a std::collections::HashSet<u16>,
}

impl PeCtx<'_> {
    pub fn pe(&self) -> PeId {
        self.pe
    }

    pub fn num_pes(&self) -> u32 {
        self.cfg.num_pes
    }

    pub fn node(&self) -> NodeId {
        self.pe / self.cfg.cores_per_node
    }

    pub fn cores_per_node(&self) -> u32 {
        self.cfg.cores_per_node
    }

    /// Current PE-local virtual time (start of handler + charged work).
    pub fn now(&self) -> Time {
        self.start + self.charged_app + self.charged_ovh
    }

    /// Account for `ns` of application computation.
    pub fn charge(&mut self, ns: Time) {
        self.charged_app += ns;
    }

    /// Per-PE deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Typed access to this PE's user state.
    pub fn user<T: 'static>(&mut self) -> &mut T {
        self.user.downcast_mut().expect("user state type mismatch")
    }

    /// Asynchronous send: the message leaves at the current PE-local time.
    /// Self-sends short-circuit the machine layer (Converse loopback).
    pub fn send(&mut self, dst: PeId, handler: HandlerId, payload: Bytes) {
        self.charged_ovh += self.cfg.send_overhead;
        if !self.system_handlers.contains(&handler.0) {
            self.qd_pe.sent += 1;
        }
        let at = self.now();
        let env = Envelope::new(self.pe, dst, handler, payload);
        let bytes = env.encode();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        if dst == self.pe {
            self.outbox.push((at, Event::Deliver(dst, bytes)));
        } else {
            self.outbox
                .push((at, Event::Cmd(self.pe, Cmd::Send { dst, msg: bytes })));
        }
    }

    /// Like [`PeCtx::send`] with an explicit scheduling priority: smaller
    /// values are executed first at the destination (Charm++'s prioritized
    /// messages). Network transit is unaffected — priority orders the
    /// destination's scheduler queue.
    pub fn send_prio(&mut self, dst: PeId, handler: HandlerId, payload: Bytes, priority: u16) {
        self.charged_ovh += self.cfg.send_overhead;
        if !self.system_handlers.contains(&handler.0) {
            self.qd_pe.sent += 1;
        }
        let at = self.now();
        let env = Envelope::new(self.pe, dst, handler, payload).with_priority(priority);
        let bytes = env.encode();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        if dst == self.pe {
            self.outbox.push((at, Event::Deliver(dst, bytes)));
        } else {
            self.outbox
                .push((at, Event::Cmd(self.pe, Cmd::Send { dst, msg: bytes })));
        }
    }

    /// Deferred send (timer): like [`PeCtx::send`] but leaving after
    /// `delay` ns of additional virtual time.
    pub fn send_after(&mut self, delay: Time, dst: PeId, handler: HandlerId, payload: Bytes) {
        if !self.system_handlers.contains(&handler.0) {
            self.qd_pe.sent += 1;
        }
        let at = self.now() + delay;
        let env = Envelope::new(self.pe, dst, handler, payload);
        let bytes = env.encode();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        if dst == self.pe {
            self.outbox.push((at, Event::Deliver(dst, bytes)));
        } else {
            self.outbox
                .push((at, Event::Cmd(self.pe, Cmd::Send { dst, msg: bytes })));
        }
    }

    /// `LrtsCreatePersistent`: set up a persistent channel to `dst` able to
    /// carry up to `max_bytes` messages. Returns immediately; the machine
    /// layer binds the handle when the command reaches it (sends issued
    /// after this call on this PE are ordered behind the creation).
    pub fn create_persistent(&mut self, dst: PeId, max_bytes: u64) -> PersistentHandle {
        let handle = PersistentHandle(*self.next_persistent);
        *self.next_persistent += 1;
        let at = self.now();
        self.outbox.push((
            at,
            Event::Cmd(
                self.pe,
                Cmd::CreatePersistent {
                    dst,
                    max_bytes,
                    handle,
                },
            ),
        ));
        handle
    }

    /// `LrtsSendPersistentMsg`.
    pub fn send_persistent(
        &mut self,
        handle: PersistentHandle,
        dst: PeId,
        h: HandlerId,
        payload: Bytes,
    ) {
        self.charged_ovh += self.cfg.send_overhead;
        if !self.system_handlers.contains(&h.0) {
            self.qd_pe.sent += 1;
        }
        let at = self.now();
        let env = Envelope::new(self.pe, dst, h, payload);
        let bytes = env.encode();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        self.outbox.push((
            at,
            Event::Cmd(
                self.pe,
                Cmd::SendPersistent {
                    handle,
                    dst,
                    msg: bytes,
                },
            ),
        ));
    }

    /// Halt the whole simulation after this handler returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// This PE's quiescence counters `(sent, delivered)`, excluding system
    /// traffic.
    pub fn qd_counters(&self) -> (u64, u64) {
        (self.qd_pe.sent, self.qd_pe.delivered)
    }

    /// The global QD coordinator state (panics when QD is not installed;
    /// only the QD handlers call this).
    pub fn qd_state(&mut self) -> &mut QdState {
        self.qd_global
            .as_mut()
            .expect("quiescence detection not installed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealLayer;
    use crate::msg::wire;

    fn cluster(pes: u32) -> Cluster {
        Cluster::new(ClusterCfg::new(pes, 4), Box::new(IdealLayer::new(1000)))
    }

    #[test]
    fn ping_pong_round_trip_times() {
        let mut c = cluster(2);
        // Bounce between PE 0 and PE 1, decrementing; stop at 0.
        let h = c.register_handler(|ctx, env| {
            let n = wire::unpack_u64(&env.payload, 0);
            if n == 0 {
                ctx.stop();
            } else {
                ctx.send(1 - ctx.pe(), env.handler, wire::pack_u64s(&[n - 1]));
            }
        });
        c.inject(0, 0, h, wire::pack_u64s(&[4]));
        let r = c.run();
        assert!(r.stopped_early);
        // 4 network traversals at 1000ns each plus overheads.
        assert!(r.end_time >= 4_000, "end {}", r.end_time);
        assert_eq!(r.stats.msgs_delivered, 5); // inject + 4 hops
        assert_eq!(r.stats.handlers_run, 5);
    }

    #[test]
    fn self_send_skips_machine_layer() {
        let mut c = cluster(1);
        let h = c.register_handler(|ctx, env| {
            let n = wire::unpack_u64(&env.payload, 0);
            if n > 0 {
                ctx.send(ctx.pe(), env.handler, wire::pack_u64s(&[n - 1]));
            }
        });
        c.inject(0, 0, h, wire::pack_u64s(&[3]));
        let r = c.run();
        assert_eq!(r.stats.handlers_run, 4);
        // No network latency: should finish in a few hundred ns of overhead.
        assert!(r.end_time < 3_000, "self sends must not touch the network");
    }

    #[test]
    fn charge_advances_virtual_time() {
        let mut c = cluster(1);
        let h = c.register_handler(|ctx, _| {
            assert_eq!(ctx.now(), 0);
            ctx.charge(5_000);
            assert_eq!(ctx.now(), 5_000);
        });
        c.inject(0, 0, h, Bytes::new());
        c.run();
        assert_eq!(c.trace().total_busy(), 5_000);
    }

    #[test]
    fn busy_pe_serializes_handlers() {
        let mut c = cluster(2);
        let h = c.register_handler(|ctx, _| ctx.charge(10_000));
        // Two messages land at the same PE at t=0.
        c.inject(0, 1, h, Bytes::new());
        c.inject(0, 1, h, Bytes::new());
        c.run();
        // Second handler cannot start before the first's 10us finishes.
        assert!(
            c.trace().end_time() >= 20_000,
            "end {}",
            c.trace().end_time()
        );
        assert_eq!(c.trace().total_busy(), 20_000);
    }

    #[test]
    fn user_state_round_trips() {
        let mut c = cluster(3);
        c.init_user(|pe| pe as u64 * 100);
        let h = c.register_handler(|ctx, _| {
            *ctx.user::<u64>() += 1;
        });
        for pe in 0..3 {
            c.inject(0, pe, h, Bytes::new());
        }
        c.run();
        assert_eq!(*c.user::<u64>(0), 1);
        assert_eq!(*c.user::<u64>(2), 201);
    }

    #[test]
    fn send_after_delays_delivery() {
        let mut c = cluster(1);
        let h2 = c.register_handler(|ctx, _| ctx.stop());
        let h1 = c.register_handler(move |ctx, _| {
            ctx.send_after(50_000, ctx.pe(), h2, Bytes::new());
        });
        c.inject(0, 0, h1, Bytes::new());
        let r = c.run();
        assert!(r.end_time >= 50_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let mut c = cluster(4);
            let h = c.register_handler(|ctx, env| {
                let n = wire::unpack_u64(&env.payload, 0);
                if n > 0 {
                    let dst = ctx.rng().below(4) as u32;
                    ctx.send(dst, env.handler, wire::pack_u64s(&[n - 1]));
                }
            });
            c.inject(0, 0, h, wire::pack_u64s(&[64]));
            c.run().end_time
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "unregistered handler")]
    fn unknown_handler_panics() {
        let mut c = cluster(1);
        c.inject(0, 0, HandlerId(40), Bytes::new());
        c.run();
    }

    #[test]
    fn priorities_order_the_scheduler_queue() {
        let mut c = cluster(1);
        c.init_user(|_| Vec::<u16>::new());
        let record = c.register_handler(|ctx, env| {
            let p = env.priority;
            ctx.user::<Vec<u16>>().push(p);
        });
        let kick = c.register_handler(move |ctx, _| {
            // Self-sends with a spread of priorities, issued in one burst:
            // a busy charge ensures they all queue before any runs.
            ctx.charge(50_000);
            ctx.send_prio(0, record, Bytes::new(), 900);
            ctx.send_prio(0, record, Bytes::new(), 5);
            ctx.send_prio(0, record, Bytes::new(), 100);
            ctx.send_prio(0, record, Bytes::new(), 5); // FIFO within 5
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        assert_eq!(c.user::<Vec<u16>>(0), &vec![5, 5, 100, 900]);
    }

    #[test]
    fn trace_records_overhead() {
        let mut c = cluster(2);
        let h = c.register_handler(|ctx, env| {
            if ctx.pe() == 0 {
                ctx.send(1, env.handler, Bytes::new());
            }
        });
        c.inject(0, 0, h, Bytes::new());
        c.run();
        assert!(c.trace().total_overhead() > 0);
        assert_eq!(c.stats().msgs_sent, 1);
    }
}
