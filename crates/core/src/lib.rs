//! `charm-rt`: an asynchronous message-driven runtime system in Rust,
//! reproducing the Charm++/Converse stack of the paper (§III).
//!
//! Layering, top to bottom (paper Fig. 3):
//!
//! * [`charm`] — chare arrays, entry methods, broadcast, reductions;
//! * [`ssse`] — the state-space search engine used by N-Queens;
//! * [`cluster`] — the Converse scheduler per PE plus the discrete-event
//!   driver that binds everything to virtual time;
//! * [`lrts`] — the Lower-level RunTime System interface a machine layer
//!   implements (`LrtsInit` / `LrtsSyncSend` / `LrtsNetworkEngine` /
//!   persistent messages);
//! * [`ideal`] — a perfect-network machine layer for tests and ablations.
//!
//! Machine layers for the simulated Gemini (`lrts-ugni`) and the simulated
//! MPI (`lrts-mpi`) live in sibling crates.
//!
//! # Quickstart
//!
//! Typed active messages ([`am`]): register a handler once per message
//! *type* and send typed values — no handler enums, no byte packing.
//!
//! ```
//! use charm_rt::prelude::*;
//! use bytes::Bytes;
//! use std::sync::{Arc, OnceLock};
//!
//! let mut c = Cluster::new(ClusterCfg::new(4, 2), Box::new(IdealLayer::new(1_000)));
//! let hop_cell: Arc<OnceLock<AmId>> = Arc::new(OnceLock::new());
//! let cell = hop_cell.clone();
//! let hop = c.register_am::<u64>(move |ctx, _src, count| {
//!     if ctx.pe() + 1 < ctx.num_pes() {
//!         ctx.am_send(ctx.pe() + 1, *cell.get().unwrap(), count + 1);
//!     } else {
//!         assert_eq!(count, 3);
//!         ctx.stop();
//!     }
//! });
//! hop_cell.set(hop).unwrap();
//! c.inject(0, 0, hop.handler(), Bytes::from(vec![0u8; 8]));
//! let report = c.run();
//! assert!(report.stopped_early);
//! ```

pub mod am;
pub mod charm;
pub mod cluster;
pub mod ft;
pub mod ideal;
pub mod lrts;
pub mod msg;
pub mod pe_table;
pub mod qd;
pub mod ssse;
pub mod trace;

/// The commonly used names, for `use charm_rt::prelude::*`.
pub mod prelude {
    pub use crate::am::{AmConfig, AmData, AmId};
    pub use crate::charm::{ArrayId, EntryId, RedOp, CHARM_HANDLER};
    pub use crate::cluster::{
        default_batch_windows, default_handoff_min_events, default_threads,
        set_default_batch_windows, set_default_handoff_min_events, set_default_threads,
        set_default_threads_forced, take_sync_overhead_ns, Cluster, ClusterCfg, ClusterStats,
        MachineCtx, PeCtx, RunReport,
    };
    pub use crate::ft::{Checkpoint, FtConfig, FtReport};
    pub use crate::ideal::IdealLayer;
    pub use crate::lrts::{MachineLayer, PersistentHandle};
    pub use crate::msg::{wire, Envelope, HandlerId, PeId};
    pub use crate::qd::Qd;
    pub use crate::ssse::{Ssse, SsseStats};
    pub use crate::trace::{Kind, Trace};
}

pub use prelude::*;
