//! `mpi-sim`: an MPI point-to-point subset implemented **on the simulated
//! uGNI**, standing in for Cray MPI (MPICH2 Nemesis over uGNI [17]) as the
//! paper's baseline.
//!
//! The structural behaviors the paper attributes to MPI are all here:
//!
//! * **Eager protocol** for small/medium messages: the sender copies into
//!   MPI-internal pre-registered buffers (one memcpy), ships via SMSG or an
//!   RDMA PUT into the receiver's eager slots, and the receiver copies out
//!   into the user buffer at match time (second memcpy).
//! * **Rendezvous protocol** (>= [`MpiConfig::rndv_threshold`]): RTS / GET /
//!   zero copy, with a **uDREG registration cache** — reusing the *same*
//!   user buffer hits the cache, fresh buffers pay `GNI_MemRegister` every
//!   time. This is the difference between the two "pure MPI" curves in the
//!   paper's Fig. 9(a).
//! * **In-order matching** with an unexpected-message queue, tag and
//!   source matching, and `MPI_Iprobe` semantics: probing costs CPU, and a
//!   matched large message must be drained with a **blocking receive** that
//!   occupies the core until the data lands (the effect behind Fig. 10).
//! * **Intra-node**: double-copy shared memory for small messages, an
//!   XPMEM-style single-copy path (with extra synchronization cost) for
//!   large ones.
//!
//! The type is driven in virtual time: every operation takes `now` and
//! returns CPU cost plus wake hints; there are no threads.

use bytes::Bytes;
use gemini_net::{Addr, FaultKind, GeminiParams, NodeId, RdmaOp, RegCache};
use sim_core::Time;
use std::collections::{HashMap, VecDeque};
use ugni::{CqEvent, CqHandle, EpHandle, Gni, GniError, PostDescriptor, SmsgSendOk};

// With the `verify` feature every uGNI call goes through the CheckedGni
// contract verifier (identical signatures; derefs to Gni for reads).
#[cfg(not(feature = "verify"))]
use ugni::Gni as LGni;
#[cfg(feature = "verify")]
use ugni_verify::CheckedGni as LGni;

/// Initial blocking-retry backoff after a fabric transaction error (the
/// library spins, so this is virtual CPU time), doubled per attempt.
const RETRY_BACKOFF0: Time = 1_000;
/// Backoff cap: keeps the retry cadence bounded under long outages.
const RETRY_BACKOFF_MAX: Time = 65_536;

pub type Rank = u32;
pub type Tag = i32;

const TAG_EAGER: u8 = 10;
const TAG_PUT_NOTIFY: u8 = 11;
const TAG_RTS: u8 = 12;
const TAG_DONE: u8 = 13;

/// Configuration of the MPI model.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    pub params: GeminiParams,
    /// Eager/rendezvous switch (Cray MPI default order of magnitude: 8 KiB).
    pub rndv_threshold: u64,
    /// Per-call library overhead (argument checking, request bookkeeping).
    pub call_overhead: Time,
    /// uDREG cache capacity (registrations kept per rank).
    pub udreg_capacity: usize,
    /// uDREG lookup cost per rendezvous operation.
    pub udreg_lookup: Time,
    /// Intra-node: below this, double-copy shm; at/above, XPMEM single copy.
    pub xpmem_threshold: u64,
    /// Extra synchronization cost of an XPMEM single-copy transfer.
    pub xpmem_sync: Time,
    /// Shared-memory notice latency (receiver polling period).
    pub shm_notice: Time,
    /// Per-entry cost of scanning the unexpected-message queue (MPICH
    /// keeps it as a linear list; under fine-grain message storms this is
    /// the paper's "prolonged MPI_Iprobe").
    pub match_scan_per_entry: Time,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            params: GeminiParams::hopper(),
            rndv_threshold: 8192,
            call_overhead: 120,
            udreg_capacity: 64,
            udreg_lookup: 60,
            xpmem_threshold: 16 * 1024,
            xpmem_sync: 3_000,
            shm_notice: 400,
            match_scan_per_entry: 90,
        }
    }
}

/// An unexpected (or arrived-but-unmatched) message header.
#[derive(Debug, Clone)]
enum Unexp {
    /// Fully arrived eager data; receive = copy out.
    Eager { src: Rank, tag: Tag, data: Bytes },
    /// Intra-node message (double-copy shm or XPMEM single copy — the
    /// sender-side cost difference was charged at send time; the receiver
    /// pays exactly one copy either way).
    Shm { src: Rank, tag: Tag, data: Bytes },
    /// Rendezvous ready-to-send: data still on the sender.
    Rts {
        src: Rank,
        tag: Tag,
        bytes: u64,
        xid: u64,
        handle: gemini_net::MemHandle,
        addr: Addr,
    },
}

impl Unexp {
    fn src_tag(&self) -> (Rank, Tag) {
        match self {
            Unexp::Eager { src, tag, .. }
            | Unexp::Shm { src, tag, .. }
            | Unexp::Rts { src, tag, .. } => (*src, *tag),
        }
    }

    fn len(&self) -> u64 {
        match self {
            Unexp::Eager { data, .. } | Unexp::Shm { data, .. } => data.len() as u64,
            Unexp::Rts { bytes, .. } => *bytes,
        }
    }
}

/// Result of a probe: message metadata without consuming it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeHit {
    pub src: Rank,
    pub tag: Tag,
    pub bytes: u64,
    /// True when receiving this message will block the core for a
    /// rendezvous transfer (the paper's Fig. 10 mechanism).
    pub is_rendezvous: bool,
}

/// Result of a receive.
#[derive(Debug, Clone)]
pub struct RecvOutcome {
    pub data: Bytes,
    /// When the receive completes; the calling core is busy from the call
    /// until then (for eager this is just the copy; for rendezvous it spans
    /// the whole GET).
    pub done_at: Time,
    pub src: Rank,
    pub tag: Tag,
}

/// CPU + wake side effects of an operation, for the embedding layer to
/// turn into events.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    /// CPU the calling rank burned.
    pub cpu: Time,
    /// (rank, time): schedule a progress poll there.
    pub wakes: Vec<(Rank, Time)>,
}

#[derive(Debug, Default, Clone)]
pub struct MpiStats {
    pub eager_msgs: u64,
    pub rndv_msgs: u64,
    pub shm_msgs: u64,
    pub udreg_hits: u64,
    pub udreg_misses: u64,
    pub blocking_recv_ns: Time,
    /// Transfers re-driven after a fabric transaction error.
    pub send_retries: u64,
    /// CQ overrun recoveries performed.
    pub cq_resyncs: u64,
}

/// The per-job MPI instance.
pub struct MpiSim {
    cfg: MpiConfig,
    gni: LGni,
    cores_per_node: u32,
    cqs: Vec<CqHandle>,
    eps: HashMap<(Rank, Rank), EpHandle>,
    /// uDREG per rank.
    udreg: Vec<RegCache>,
    /// Matched-order delivery queue per rank, with the time each entry
    /// becomes visible (messages must not be matchable before arrival).
    unexpected: Vec<VecDeque<(Time, Unexp)>>,
    /// Pre-registered internal eager buffers (one per rank).
    eager_addr: Vec<Addr>,
    eager_handle: Vec<gemini_net::MemHandle>,
    /// In-flight eager-PUT payloads keyed by xid.
    put_data: HashMap<u64, (Rank, Tag, Bytes)>,
    next_xid: u64,
    pub stats: MpiStats,
}

impl MpiSim {
    /// Bring up MPI across `ranks` ranks, `cores_per_node` per node.
    pub fn new(cfg: MpiConfig, ranks: u32, cores_per_node: u32) -> Self {
        let nodes = ranks.div_ceil(cores_per_node);
        let mut gni = LGni::new(cfg.params.clone(), nodes);
        let mut cqs = Vec::new();
        let mut eager_addr = Vec::new();
        let mut eager_handle = Vec::new();
        for r in 0..ranks {
            cqs.push(gni.cq_create());
            let node = r / cores_per_node;
            let a = gni.alloc_addr(node).expect("node within job");
            // 8 MiB of internal pre-registered buffering per rank.
            // Transient NIC descriptor exhaustion (chaos plans) is retried;
            // a bounded number of attempts keeps a pathological plan from
            // hanging startup.
            let (h, _) = (0..64)
                .find_map(|_| gni.mem_register(node, a, 8 << 20).ok())
                .expect("eager buffer registration: NIC resources exhausted");
            eager_addr.push(a);
            eager_handle.push(h);
        }
        MpiSim {
            udreg: (0..ranks)
                .map(|_| RegCache::new(cfg.udreg_capacity, cfg.udreg_lookup))
                .collect(),
            unexpected: (0..ranks).map(|_| VecDeque::new()).collect(),
            eps: HashMap::new(),
            put_data: HashMap::new(),
            next_xid: 0,
            stats: MpiStats::default(),
            cfg,
            gni,
            cores_per_node,
            cqs,
            eager_addr,
            eager_handle,
        }
    }

    pub fn gni(&self) -> &Gni {
        &self.gni
    }

    /// Contract-verifier findings for the underlying uGNI instance.
    /// `Some` only when built with the `verify` feature.
    #[cfg(feature = "verify")]
    pub fn contract_report(&self) -> Option<ugni_verify::ContractReport> {
        Some(self.gni.report())
    }

    #[cfg(not(feature = "verify"))]
    pub fn contract_report(&self) -> Option<ugni_verify::ContractReport> {
        None
    }

    pub fn config(&self) -> &MpiConfig {
        &self.cfg
    }

    pub fn node_of(&self, rank: Rank) -> NodeId {
        rank / self.cores_per_node
    }

    fn ep(&mut self, src: Rank, dst: Rank) -> EpHandle {
        if let Some(&ep) = self.eps.get(&(src, dst)) {
            return ep;
        }
        let cq = self.cqs[src as usize];
        let (sn, dn) = (self.node_of(src), self.node_of(dst));
        let ep = self
            .gni
            .ep_create_inst(sn, src, dn, dst, cq)
            .expect("ep bind: CQ and nodes fixed at init");
        self.eps.insert((src, dst), ep);
        ep
    }

    /// Send an SMSG, absorbing credit exhaustion and fabric transaction
    /// errors by blocking and resending with capped exponential backoff
    /// (Cray MPI semantics: the library spins in the send call). Returns
    /// the successful send and the virtual time the call returns at.
    fn smsg_send_blocking(
        &mut self,
        mut at: Time,
        ep: EpHandle,
        tag: u8,
        data: Bytes,
    ) -> (SmsgSendOk, Time) {
        let mut backoff = RETRY_BACKOFF0;
        loop {
            match self.gni.smsg_send_w_tag(at, ep, tag, data.clone()) {
                Ok(ok) => return (ok, at + ok.cpu),
                Err(GniError::NoCredits { retry_at }) => at = at.max(retry_at),
                Err(GniError::TransactionError { cpu, error_at, .. }) => {
                    // The failure is observable at error_at; resend after a
                    // backoff. A corrupted completion already delivered the
                    // payload — the duplicate is discarded at drain time.
                    self.stats.send_retries += 1;
                    at = error_at.max(at + cpu) + backoff;
                    backoff = (backoff * 2).min(RETRY_BACKOFF_MAX);
                }
                Err(e) => panic!("SMSG send failed unrecoverably: {e:?}"),
            }
        }
    }

    /// Reap the completion for `user_id` from `cq`, polling from `at`.
    /// Recovers CQ overruns in place (audit + resync) and discards stale
    /// completions from earlier eagerly-drained posts. `Ok` carries the
    /// consume time and any GET payload; `Err` reports a failed post and
    /// when the failure became observable.
    fn reap_post(
        &mut self,
        cq: CqHandle,
        user_id: u64,
        mut at: Time,
    ) -> Result<(Time, Option<Bytes>), (FaultKind, Time)> {
        loop {
            match self.gni.cq_get_event(cq, at) {
                Ok(CqEvent::PostDone {
                    user_id: id, data, ..
                }) if id == user_id => {
                    return Ok((at, data));
                }
                Ok(CqEvent::PostError {
                    user_id: id, kind, ..
                }) if id == user_id => {
                    return Err((kind, at));
                }
                // Stale completion (or error already handled by a retry).
                Ok(_) => continue,
                Err(GniError::CqOverrun) => match self.gni.cq_resync(cq, at) {
                    Ok((cost, _)) => {
                        self.stats.cq_resyncs += 1;
                        at += cost;
                    }
                    // Resync refused (stale CQ handle): surface as a failed
                    // post so the caller's retry path runs — recovery code
                    // degrades rather than aborting.
                    Err(_) => return Err((FaultKind::Dropped, at)),
                },
                Err(GniError::NotDone) => match self.gni.cq_next_ready(cq) {
                    Some(t) if t > at => at = t,
                    // The completion for `user_id` is always pushed (queued
                    // or into the overrun-lost set), so an empty CQ here is
                    // a protocol bug, not a fabric fault. panic-ok: see above.
                    _ => panic!("completion for post {user_id} vanished"),
                },
                // panic-ok: poll errors other than NotDone are protocol bugs
                Err(e) => panic!("CQ poll failed: {e:?}"),
            }
        }
    }

    /// `MPI_Isend` (the send-side request always completes locally in this
    /// model; rendezvous data is held until the receiver pulls it).
    /// `buf` identifies the application buffer for uDREG purposes — pass
    /// the same `Addr` to model a reused buffer, a fresh one otherwise.
    pub fn isend(
        &mut self,
        now: Time,
        src: Rank,
        dst: Rank,
        tag: Tag,
        data: Bytes,
        buf: Addr,
    ) -> Effects {
        let mut fx = Effects {
            cpu: self.cfg.call_overhead,
            wakes: Vec::new(),
        };
        let bytes = data.len() as u64;
        let p = self.cfg.params.clone();

        // Intra-node path.
        if self.node_of(src) == self.node_of(dst) && src != dst {
            self.stats.shm_msgs += 1;
            let single = bytes >= self.cfg.xpmem_threshold;
            let (send_cost, visible) = if single {
                // XPMEM: map + hand off, no sender copy, extra sync.
                (
                    self.cfg.xpmem_sync,
                    now + self.cfg.xpmem_sync + self.cfg.shm_notice,
                )
            } else {
                let c = p.memcpy_cost(bytes);
                (c, now + c + self.cfg.shm_notice)
            };
            fx.cpu += send_cost;
            self.unexpected[dst as usize].push_back((visible, Unexp::Shm { src, tag, data }));
            fx.wakes.push((dst, visible));
            return fx;
        }

        let smsg_limit = self.gni.smsg_limit() as u64;
        if bytes + 16 <= smsg_limit {
            // Small eager: copy into the internal buffer, one SMSG. The
            // blocking send absorbs credit exhaustion and fabric faults.
            self.stats.eager_msgs += 1;
            fx.cpu += p.memcpy_cost(bytes);
            let ep = self.ep(src, dst);
            let (ok, end) = self.smsg_send_blocking(now + fx.cpu, ep, TAG_EAGER, data.clone());
            fx.cpu = end - now;
            self.unexpected[dst as usize]
                .push_back((ok.deliver_at, Unexp::Eager { src, tag, data }));
            fx.wakes.push((dst, ok.deliver_at));
            return fx;
        }

        if bytes < self.cfg.rndv_threshold {
            // Medium eager: copy into internal registered buffer, PUT into
            // the receiver's eager slots, tiny notify SMSG.
            self.stats.eager_msgs += 1;
            fx.cpu += p.memcpy_cost(bytes);
            let xid = self.next_xid;
            self.next_xid += 1;
            let src_node = self.node_of(src);
            self.gni
                .mem_write(src_node, self.eager_addr[src as usize], data.clone());
            let ep = self.ep(src, dst);
            let desc = PostDescriptor {
                op: RdmaOp::Put,
                local_mem: self.eager_handle[src as usize],
                local_addr: self.eager_addr[src as usize],
                remote_mem: self.eager_handle[dst as usize],
                remote_addr: self.eager_addr[dst as usize],
                bytes,
                data: Some(data.clone()),
                user_id: xid,
            };
            // Post the PUT; a failed transaction is re-posted after its
            // error surfaces on the CQ, with capped exponential backoff.
            let cq = self.cqs[src as usize];
            let mut attempt_at = now + fx.cpu;
            let mut backoff = RETRY_BACKOFF0;
            let ok = loop {
                let posted = if bytes <= 4096 {
                    self.gni.post_fma(attempt_at, ep, desc.clone())
                } else {
                    self.gni.post_rdma(attempt_at, ep, desc.clone())
                }
                .expect("eager PUT rejected");
                // Drain our own CQ entry eagerly (send request completion).
                match self.reap_post(cq, xid, posted.local_cq_at) {
                    Ok(_) => break posted,
                    Err((_kind, err_at)) => {
                        self.stats.send_retries += 1;
                        attempt_at = err_at.max(attempt_at + posted.cpu) + backoff;
                        backoff = (backoff * 2).min(RETRY_BACKOFF_MAX);
                    }
                }
            };
            fx.cpu = (attempt_at - now) + ok.cpu;
            self.put_data.insert(xid, (src, tag, data.clone()));
            let visible_guess = ok.data_at.max(now + fx.cpu);
            self.unexpected[dst as usize]
                .push_back((visible_guess, Unexp::Eager { src, tag, data }));
            // Notify once the data is visible.
            let mut hdr = Vec::with_capacity(9);
            hdr.push(TAG_PUT_NOTIFY);
            hdr.extend_from_slice(&xid.to_be_bytes());
            let notify_at = ok.data_at.max(now + fx.cpu);
            let (n, _) = self.smsg_send_blocking(notify_at, ep, TAG_PUT_NOTIFY, Bytes::from(hdr));
            // The receiver learns of the message via the notify.
            if let Some(back) = self.unexpected[dst as usize].back_mut() {
                back.0 = back.0.max(n.deliver_at);
            }
            fx.wakes.push((dst, n.deliver_at));
            return fx;
        }

        // Rendezvous: register the user buffer (uDREG) and send RTS.
        self.stats.rndv_msgs += 1;
        let src_node = self.node_of(src);
        let (handle, reg_cost) = {
            let cache = &mut self.udreg[src as usize];
            let table = self.gni.fabric_mut().reg_table(src_node);
            let before = cache.hits;
            let r = cache.acquire(&p, table, buf, bytes);
            if cache.hits > before {
                self.stats.udreg_hits += 1;
            } else {
                self.stats.udreg_misses += 1;
            }
            r
        };
        fx.cpu += reg_cost;
        self.gni.mem_write(src_node, buf, data);
        let xid = self.next_xid;
        self.next_xid += 1;
        let mut hdr = Vec::with_capacity(33);
        hdr.push(TAG_RTS);
        hdr.extend_from_slice(&xid.to_be_bytes());
        hdr.extend_from_slice(&bytes.to_be_bytes());
        hdr.extend_from_slice(&handle.0.to_be_bytes());
        hdr.extend_from_slice(&buf.0.to_be_bytes());
        let ep = self.ep(src, dst);
        let (ok, end) = self.smsg_send_blocking(now + fx.cpu, ep, TAG_RTS, Bytes::from(hdr));
        fx.cpu = end - now;
        self.unexpected[dst as usize].push_back((
            ok.deliver_at,
            Unexp::Rts {
                src,
                tag,
                bytes,
                xid,
                handle,
                addr: buf,
            },
        ));
        fx.wakes.push((dst, ok.deliver_at));
        fx
    }

    /// Drain NIC-level arrivals for `rank`. Headers were enqueued at send
    /// time (callers must only probe at/after the corresponding wake), so
    /// this consumes mailbox entries and returns the CPU spent.
    pub fn progress(&mut self, now: Time, rank: Rank) -> Time {
        let node = self.node_of(rank);
        let mut cpu = 0;
        while let Ok(rx) = self.gni.smsg_get_next_w_tag(node, rank, now + cpu) {
            cpu += rx.cpu;
        }
        cpu
    }

    /// Is a message from `src`/`tag` (wildcards allowed) matchable at
    /// `now`? Models `MPI_Iprobe`: costs CPU whether or not it hits.
    pub fn iprobe(
        &mut self,
        now: Time,
        rank: Rank,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> (Option<ProbeHit>, Time) {
        let mut cpu = self.cfg.call_overhead + self.progress(now, rank);
        let hit = self.match_unexpected(now, rank, src, tag).map(|i| {
            let u = &self.unexpected[rank as usize][i].1;
            let (s, t) = u.src_tag();
            ProbeHit {
                src: s,
                tag: t,
                bytes: u.len(),
                is_rendezvous: matches!(u, Unexp::Rts { .. }),
            }
        });
        // Linear scan of the unexpected queue, up to the match (or its
        // full length on a miss).
        let scanned = match hit {
            Some(_) => self
                .match_unexpected(now, rank, src, tag)
                .map(|i| i + 1)
                .unwrap_or(0),
            None => self.unexpected[rank as usize].len(),
        };
        cpu += 40 + scanned as Time * self.cfg.match_scan_per_entry;
        (hit, cpu)
    }

    fn match_unexpected(
        &self,
        now: Time,
        rank: Rank,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> Option<usize> {
        self.unexpected[rank as usize].iter().position(|(vis, u)| {
            if *vis > now {
                return false;
            }
            let (s, t) = u.src_tag();
            src.is_none_or(|x| x == s) && tag.is_none_or(|x| x == t)
        })
    }

    /// Earliest not-yet-visible message for `rank` (for re-arming polls).
    pub fn next_visible(&self, now: Time, rank: Rank) -> Option<Time> {
        self.unexpected[rank as usize]
            .iter()
            .map(|(vis, _)| *vis)
            .filter(|&v| v > now)
            .min()
    }

    /// Blocking `MPI_Recv` of a message already visible to `iprobe`.
    /// `recv_buf` identifies the destination application buffer (uDREG).
    /// The calling core is busy from `now` to `done_at`.
    pub fn recv(
        &mut self,
        now: Time,
        rank: Rank,
        src: Option<Rank>,
        tag: Option<Tag>,
        recv_buf: Addr,
    ) -> Option<RecvOutcome> {
        let idx = self.match_unexpected(now, rank, src, tag)?;
        let (_, u) = self.unexpected[rank as usize].remove(idx).unwrap();
        let p = self.cfg.params.clone();
        // Matching re-scans the unexpected list up to the hit.
        let base = now + self.cfg.call_overhead + (idx as Time + 1) * self.cfg.match_scan_per_entry;
        match u {
            Unexp::Eager { src, tag, data } | Unexp::Shm { src, tag, data } => {
                // Copy out of MPI internal (or shared) memory into the user
                // buffer.
                let done = base + p.memcpy_cost(data.len() as u64);
                Some(RecvOutcome {
                    data,
                    done_at: done,
                    src,
                    tag,
                })
            }
            Unexp::Rts {
                src,
                tag,
                bytes,
                xid,
                handle,
                addr,
            } => {
                // Register the landing buffer, post the GET, block to done.
                let node = self.node_of(rank);
                let (rh, reg_cost) = {
                    let cache = &mut self.udreg[rank as usize];
                    let table = self.gni.fabric_mut().reg_table(node);
                    let before = cache.hits;
                    let r = cache.acquire(&p, table, recv_buf, bytes);
                    if cache.hits > before {
                        self.stats.udreg_hits += 1;
                    } else {
                        self.stats.udreg_misses += 1;
                    }
                    r
                };
                let t0 = base + reg_cost;
                let ep = self.ep(rank, src);
                let desc = PostDescriptor {
                    op: RdmaOp::Get,
                    local_mem: rh,
                    local_addr: recv_buf,
                    remote_mem: handle,
                    remote_addr: addr,
                    bytes,
                    data: None,
                    user_id: xid,
                };
                // Blocking: spin on the CQ until done, re-posting the GET
                // if the fabric fails it (zero-copy pull is idempotent).
                let cqh = self.cqs[rank as usize];
                let mut attempt_at = t0;
                let mut backoff = RETRY_BACKOFF0;
                let (ok, data) = loop {
                    let posted = self
                        .gni
                        .post_rdma(attempt_at, ep, desc.clone())
                        .expect("rendezvous GET rejected");
                    match self.reap_post(cqh, xid, posted.local_cq_at) {
                        Ok((_, d)) => break (posted, d.expect("rendezvous GET without data")),
                        Err((_kind, err_at)) => {
                            self.stats.send_retries += 1;
                            attempt_at = err_at.max(attempt_at + posted.cpu) + backoff;
                            backoff = (backoff * 2).min(RETRY_BACKOFF_MAX);
                        }
                    }
                };
                // DONE message lets the sender's request complete.
                let mut hdr = Vec::with_capacity(9);
                hdr.push(TAG_DONE);
                hdr.extend_from_slice(&xid.to_be_bytes());
                let ep_back = self.ep(rank, src);
                let _ =
                    self.smsg_send_blocking(ok.local_cq_at, ep_back, TAG_DONE, Bytes::from(hdr));
                let done = ok.local_cq_at + self.cfg.call_overhead;
                self.stats.blocking_recv_ns += done.saturating_sub(now);
                Some(RecvOutcome {
                    data,
                    done_at: done,
                    src,
                    tag,
                })
            }
        }
    }

    /// Pending unmatched messages for `rank` (diagnostics).
    pub fn unexpected_len(&self, rank: Rank) -> usize {
        self.unexpected[rank as usize].len()
    }

    /// A fresh application-buffer identity on `rank`'s node.
    pub fn fresh_buf(&mut self, rank: Rank) -> Addr {
        let node = self.node_of(rank);
        self.gni.alloc_addr(node).expect("node within job")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpi(ranks: u32, cores: u32) -> MpiSim {
        MpiSim::new(MpiConfig::default(), ranks, cores)
    }

    #[test]
    fn small_eager_round_trip() {
        let mut m = mpi(2, 1);
        let buf = m.fresh_buf(0);
        let fx = m.isend(0, 0, 1, 7, Bytes::from_static(b"hello"), buf);
        assert!(fx.cpu > 0);
        let (_, arrive) = fx.wakes[0];
        let (hit, _) = m.iprobe(arrive, 1, None, None);
        let hit = hit.expect("message not probed");
        assert_eq!(hit.src, 0);
        assert_eq!(hit.tag, 7);
        assert!(!hit.is_rendezvous);
        let rbuf = m.fresh_buf(1);
        let out = m.recv(arrive, 1, Some(0), Some(7), rbuf).unwrap();
        assert_eq!(&out.data[..], b"hello");
        assert!(out.done_at > arrive);
        assert_eq!(m.stats.eager_msgs, 1);
    }

    #[test]
    fn medium_eager_uses_put() {
        let mut m = mpi(2, 1);
        let buf = m.fresh_buf(0);
        let data = Bytes::from(vec![3u8; 4000]);
        let fx = m.isend(0, 0, 1, 1, data.clone(), buf);
        let (_, arrive) = fx.wakes[0];
        let rbuf = m.fresh_buf(1);
        let out = m.recv(arrive, 1, None, None, rbuf).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(m.stats.eager_msgs, 1);
        assert_eq!(m.stats.rndv_msgs, 0);
        assert!(m.gni().fabric().stats.rdma_bytes >= 4000);
    }

    #[test]
    fn large_uses_rendezvous_and_blocks() {
        let mut m = mpi(2, 1);
        let buf = m.fresh_buf(0);
        let data = Bytes::from(vec![9u8; 65536]);
        let fx = m.isend(0, 0, 1, 5, data.clone(), buf);
        let (_, arrive) = fx.wakes[0];
        let (hit, _) = m.iprobe(arrive, 1, None, None);
        assert!(hit.unwrap().is_rendezvous);
        let rbuf = m.fresh_buf(1);
        let out = m.recv(arrive, 1, Some(0), Some(5), rbuf).unwrap();
        assert_eq!(out.data, data);
        assert!(
            out.done_at > arrive + 10_000,
            "recv window {}",
            out.done_at - arrive
        );
        assert_eq!(m.stats.rndv_msgs, 1);
        assert!(m.stats.blocking_recv_ns > 0);
    }

    #[test]
    fn same_buffer_hits_udreg_cache() {
        let mut m = mpi(2, 1);
        let sbuf = m.fresh_buf(0);
        let rbuf = m.fresh_buf(1);
        let data = Bytes::from(vec![1u8; 32768]);
        let mut t = 0;
        let mut first_cpu = 0;
        let mut later_cpu = 0;
        for i in 0..5 {
            let fx = m.isend(t, 0, 1, 0, data.clone(), sbuf);
            if i == 0 {
                first_cpu = fx.cpu;
            } else {
                later_cpu = fx.cpu;
            }
            let (_, arrive) = fx.wakes[0];
            let out = m.recv(arrive, 1, None, None, rbuf).unwrap();
            t = out.done_at + 1000;
        }
        assert!(m.stats.udreg_hits >= 8, "hits {}", m.stats.udreg_hits);
        assert!(
            later_cpu + 1000 < first_cpu,
            "cached send {later_cpu} not cheaper than first {first_cpu}"
        );
    }

    #[test]
    fn fresh_buffers_miss_udreg_cache() {
        let mut m = mpi(2, 1);
        let data = Bytes::from(vec![1u8; 32768]);
        let mut t = 0;
        for _ in 0..5 {
            let sbuf = m.fresh_buf(0);
            let rbuf = m.fresh_buf(1);
            let fx = m.isend(t, 0, 1, 0, data.clone(), sbuf);
            let (_, arrive) = fx.wakes[0];
            let out = m.recv(arrive, 1, None, None, rbuf).unwrap();
            t = out.done_at + 1000;
        }
        assert_eq!(m.stats.udreg_hits, 0);
        assert_eq!(m.stats.udreg_misses, 10);
    }

    #[test]
    fn tag_and_source_matching() {
        let mut m = mpi(3, 1);
        let b0 = m.fresh_buf(0);
        let b2 = m.fresh_buf(2);
        let f1 = m.isend(0, 0, 1, 100, Bytes::from_static(b"a"), b0);
        let f2 = m.isend(0, 2, 1, 200, Bytes::from_static(b"b"), b2);
        let t = f1.wakes[0].1.max(f2.wakes[0].1);
        let rbuf = m.fresh_buf(1);
        let out = m.recv(t, 1, None, Some(200), rbuf).unwrap();
        assert_eq!(&out.data[..], b"b");
        assert_eq!(out.src, 2);
        let out = m.recv(t, 1, Some(0), None, rbuf).unwrap();
        assert_eq!(&out.data[..], b"a");
        assert!(m.recv(t, 1, None, None, rbuf).is_none());
    }

    #[test]
    fn in_order_delivery_per_pair() {
        let mut m = mpi(2, 1);
        let mut last = 0;
        for i in 0..5u8 {
            let b = m.fresh_buf(0);
            let fx = m.isend(i as Time * 10, 0, 1, 0, Bytes::from(vec![i]), b);
            last = last.max(fx.wakes[0].1);
        }
        let rbuf = m.fresh_buf(1);
        for i in 0..5u8 {
            let out = m.recv(last, 1, None, None, rbuf).unwrap();
            assert_eq!(out.data[0], i, "order violated");
        }
    }

    #[test]
    fn messages_match_in_arrival_order() {
        // MPICH fills its unexpected queue at *arrival*: a later-sent
        // message that lands earlier (different protocol class) may match
        // first, but same-class messages never overtake each other.
        let mut m = mpi(2, 1);
        let b1 = m.fresh_buf(0);
        let fx1 = m.isend(0, 0, 1, 0, Bytes::from(vec![1u8; 16]), b1);
        let b2 = m.fresh_buf(0);
        let fx2 = m.isend(100, 0, 1, 0, Bytes::from(vec![2u8; 16]), b2);
        let t = fx1.wakes[0].1.max(fx2.wakes[0].1);
        let rb = m.fresh_buf(1);
        let a = m.recv(t, 1, None, None, rb).unwrap();
        let b = m.recv(t, 1, None, None, rb).unwrap();
        assert_eq!(a.data[0], 1, "same-class messages must not overtake");
        assert_eq!(b.data[0], 2);
    }

    #[test]
    fn invisible_messages_do_not_match_early() {
        let mut m = mpi(2, 1);
        let b1 = m.fresh_buf(0);
        let fx = m.isend(0, 0, 1, 0, Bytes::from_static(b"later"), b1);
        let arrive = fx.wakes[0].1;
        let rb = m.fresh_buf(1);
        // Before arrival: nothing matchable.
        assert!(m.recv(arrive - 1, 1, None, None, rb).is_none());
        let (hit, _) = m.iprobe(arrive - 1, 1, None, None);
        assert!(hit.is_none(), "probe must not see in-flight data");
        assert!(m.recv(arrive, 1, None, None, rb).is_some());
    }

    #[test]
    fn intranode_small_is_fast_double_copy() {
        let mut m = mpi(2, 2); // same node
        let b = m.fresh_buf(0);
        let fx = m.isend(0, 0, 1, 0, Bytes::from(vec![0u8; 1024]), b);
        let (_, visible) = fx.wakes[0];
        assert!(visible < 5_000, "shm visibility {visible}ns too slow");
        let rbuf = m.fresh_buf(1);
        let out = m.recv(visible, 1, None, None, rbuf).unwrap();
        assert_eq!(out.data.len(), 1024);
        assert_eq!(m.stats.shm_msgs, 1);
        // Never touched the NIC.
        assert_eq!(m.gni().fabric().stats.smsg_sends, 0);
    }

    #[test]
    fn intranode_large_pays_xpmem_sync() {
        let mut m = mpi(2, 2);
        let b = m.fresh_buf(0);
        let fx = m.isend(0, 0, 1, 0, Bytes::from(vec![0u8; 262_144]), b);
        // Single copy: sender pays sync, not a 256K memcpy.
        assert!(fx.cpu < MpiConfig::default().params.memcpy_cost(262_144));
        assert!(fx.cpu >= MpiConfig::default().xpmem_sync);
    }

    #[test]
    fn probe_miss_costs_cpu() {
        let mut m = mpi(2, 1);
        let (hit, cpu) = m.iprobe(100, 1, None, None);
        assert!(hit.is_none());
        assert!(cpu > 0, "Iprobe must cost CPU even on a miss");
    }

    #[test]
    fn self_send_not_supported_via_shm_branch() {
        // rank -> same rank goes through the network path (callers are
        // expected to loop back above MPI); just ensure no panic and
        // delivery works.
        let mut m = mpi(2, 2);
        let b = m.fresh_buf(0);
        let fx = m.isend(0, 0, 0, 0, Bytes::from_static(b"z"), b);
        let rbuf = m.fresh_buf(0);
        let t = fx.wakes.first().map(|w| w.1).unwrap_or(10_000);
        let out = m.recv(t.max(10_000), 0, None, None, rbuf);
        assert!(out.is_some());
    }
}
