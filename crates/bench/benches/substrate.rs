//! Criterion benches of the simulator's hot substrate paths: the event
//! queue, the memory pool, torus routing, and raw fabric operations.
//! These measure the *simulator's* real wall-clock performance (the
//! figure-level results are virtual-time and live in `src/bin/`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gemini_net::{Fabric, GeminiParams, Mechanism, RdmaOp, RegTable, Torus};
use mempool::MemPool;
use sim_core::EventQueue;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                q.push((i * 7919) % 4096, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_mempool(c: &mut Criterion) {
    let params = GeminiParams::hopper();
    c.bench_function("mempool_alloc_free_steady", |b| {
        let mut reg = RegTable::new();
        let mut pool = MemPool::new(1 << 40);
        // Warm the size class.
        let (blk, _) = pool.alloc(&params, &mut reg, 16 * 1024);
        pool.free(&params, &mut reg, blk);
        b.iter(|| {
            let (blk, cost) = pool.alloc(&params, &mut reg, 16 * 1024);
            let f = pool.free(&params, &mut reg, blk);
            black_box(cost + f)
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let t = Torus::new((17, 8, 24));
    c.bench_function("torus_route_far_pair", |b| {
        b.iter(|| black_box(t.route(black_box(0), black_box(3263))))
    });
    c.bench_function("torus_hops_sweep_256", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for n in 0..256 {
                acc += t.hops(0, n);
            }
            black_box(acc)
        })
    });
}

fn bench_fabric(c: &mut Criterion) {
    c.bench_function("fabric_smsg_send", |b| {
        let mut f = Fabric::new(GeminiParams::test_small(), 8);
        let mut t = 0;
        b.iter(|| {
            t += 10_000;
            black_box(f.smsg_send(t, 0, 1, (0, 1), 64).unwrap())
        })
    });
    c.bench_function("fabric_rdma_bte_get", |b| {
        let mut f = Fabric::new(GeminiParams::test_small(), 8);
        let mut t = 0;
        b.iter(|| {
            t += 100_000;
            black_box(f.rdma(t, 1, 0, 65_536, Mechanism::Bte, RdmaOp::Get))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =
    bench_event_queue,
    bench_mempool,
    bench_routing,
    bench_fabric
);
criterion_main!(benches);
