//! Criterion benches of full protocol round trips through the runtime:
//! how fast the *simulator* executes a small/large message exchange and
//! an ablation of GET- vs PUT-based rendezvous cost in virtual time.

use bytes::Bytes;
use charm_apps::pingpong::charm_one_way;
use charm_apps::LayerKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gemini_net::{GeminiParams, RdmaOp};
use ugni::{Gni, PostDescriptor};

fn bench_charm_pingpong(c: &mut Criterion) {
    c.bench_function("sim_charm_pingpong_small_x10", |b| {
        b.iter(|| black_box(charm_one_way(&LayerKind::ugni(), 1, 64, 10, false)))
    });
    c.bench_function("sim_charm_pingpong_64k_x10", |b| {
        b.iter(|| black_box(charm_one_way(&LayerKind::ugni(), 1, 65_536, 10, false)))
    });
    c.bench_function("sim_charm_pingpong_mpi_64k_x10", |b| {
        b.iter(|| black_box(charm_one_way(&LayerKind::mpi(), 1, 65_536, 10, false)))
    });
}

/// Ablation (DESIGN.md §5.1): GET-based rendezvous (the paper's choice)
/// vs PUT-based, as raw virtual-time latencies. GET saves one rendezvous
/// message; PUT pays an extra control round trip before data can move.
fn bench_get_vs_put_rendezvous(c: &mut Criterion) {
    fn rendezvous(op: RdmaOp, bytes: u64) -> u64 {
        let mut g = Gni::new(GeminiParams::hopper(), 2);
        let cq = g.cq_create();
        let data = Bytes::from(vec![0u8; bytes as usize]);
        // Control message first (INIT for GET; rendezvous+CTS for PUT is
        // one extra smsg, per the paper's argument in §III-C).
        let ep01 = g.ep_create(0, 1, cq).expect("ep");
        let mut t = 0;
        let ctrl_hops = match op {
            RdmaOp::Get => 1,
            RdmaOp::Put => 2,
        };
        for _ in 0..ctrl_hops {
            let ok = g
                .smsg_send_w_tag(t, ep01, 1, Bytes::from_static(b"ctl"))
                .unwrap();
            t = ok.deliver_at;
        }
        let (init, remote) = match op {
            RdmaOp::Get => (1u32, 0u32),
            RdmaOp::Put => (0, 1),
        };
        let ep = g.ep_create(init, remote, cq).expect("ep");
        let la = g.alloc_addr(init).expect("alloc");
        let (lh, _) = g.mem_register(init, la, bytes).expect("register");
        let ra = g.alloc_addr(remote).expect("alloc");
        let (rh, _) = g.mem_register(remote, ra, bytes).expect("register");
        g.mem_write(remote, ra, data.clone());
        g.mem_write(init, la, data.clone());
        let ok = g
            .post_rdma(
                t,
                ep,
                PostDescriptor {
                    op,
                    local_mem: lh,
                    local_addr: la,
                    remote_mem: rh,
                    remote_addr: ra,
                    bytes,
                    data: Some(data),
                    user_id: 0,
                },
            )
            .unwrap();
        ok.data_at
    }

    c.bench_function("rendezvous_get_virtual_64k", |b| {
        b.iter(|| black_box(rendezvous(RdmaOp::Get, 65_536)))
    });
    c.bench_function("rendezvous_put_virtual_64k", |b| {
        b.iter(|| black_box(rendezvous(RdmaOp::Put, 65_536)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_charm_pingpong, bench_get_vs_put_rendezvous);
criterion_main!(benches);
