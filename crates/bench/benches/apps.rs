//! Criterion benches of whole-application simulations: events-per-second
//! throughput of the DES when running the paper's workloads at small
//! scale.

use charm_apps::minimd::{run_minimd, MdConfig};
use charm_apps::nqueens::{run_nqueens, NqConfig, WorkMode};
use charm_apps::LayerKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_nqueens(c: &mut Criterion) {
    let cfg = NqConfig {
        n: 10,
        threshold: 3,
        mode: WorkMode::Exact { ns_per_node: 120 },
        seed: 1,
    };
    c.bench_function("sim_nqueens_10_exact_16pe", |b| {
        b.iter(|| black_box(run_nqueens(&LayerKind::ugni(), 16, 4, &cfg).solutions))
    });
    let modeled = NqConfig {
        n: 13,
        threshold: 4,
        mode: WorkMode::Modeled {
            total_seq_ns: 1_000_000_000,
            alpha: 1.2,
        },
        seed: 1,
    };
    c.bench_function("sim_nqueens_13_modeled_64pe", |b| {
        b.iter(|| black_box(run_nqueens(&LayerKind::ugni(), 64, 16, &modeled).time_ns))
    });
}

fn bench_minimd(c: &mut Criterion) {
    let cfg = MdConfig {
        atoms: 8_000,
        steps: 2,
        ns_per_atom: 21_233,
        patches: None,
        pme_bytes: 2_048,
        lb_at_step: None,
        imbalance: 0.3,
        seed: 2,
    };
    c.bench_function("sim_minimd_8k_atoms_24pe", |b| {
        b.iter(|| black_box(run_minimd(&LayerKind::ugni(), 24, 8, &cfg).ms_per_step))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_nqueens, bench_minimd);
criterion_main!(benches);
