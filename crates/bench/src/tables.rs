//! Table I (N-Queens best configurations) and Table II (ApoA1 strong
//! scaling) from the paper's evaluation.

use crate::Effort;
use charm_apps::common::LayerKind;
use charm_apps::minimd::{run_minimd, MdConfig, System};
use charm_apps::nqueens::{self, NqConfig, WorkMode};

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub queens: u32,
    pub cores_ugni: u32,
    pub cores_mpi: u32,
    pub time_ugni_s: f64,
    pub time_mpi_s: f64,
}

/// Table I: best core counts from the paper, times measured here.
/// "for the same N-Queens problem, uGNI-based Charm++ scales to more
/// cores with much less time."
pub fn table1(e: &Effort) -> Vec<Table1Row> {
    // (N, paper's best cores for uGNI, for MPI).
    let rows: Vec<(u32, u32, u32)> = if e.full_scale {
        vec![
            (14, 256, 48),
            (15, 480, 120),
            (16, 1536, 384),
            (17, 3840, 1536),
            (18, 7680, 3840),
            (19, 15360, 7680),
        ]
    } else {
        vec![(14, 64, 24), (15, 128, 48)]
    };
    // Threshold 7 for the fine-grain uGNI runs, 6 for MPI (the paper's
    // optima); smaller in quick mode to keep CI cheap.
    let (thr_u, thr_m) = if e.full_scale { (5, 4) } else { (4, 3) };
    rows.into_iter()
        .map(|(n, cu, cm)| {
            let seq = nqueens::calibrated_seq_ns(n);
            let mk = |threshold| NqConfig {
                n,
                threshold,
                mode: WorkMode::Modeled {
                    total_seq_ns: seq,
                    alpha: 1.2,
                },
                seed: n as u64,
            };
            let ru = nqueens::run_nqueens(&LayerKind::ugni(), cu, 24.min(cu), &mk(thr_u));
            let rm = nqueens::run_nqueens(&LayerKind::mpi(), cm, 24.min(cm), &mk(thr_m));
            Table1Row {
                queens: n,
                cores_ugni: cu,
                cores_mpi: cm,
                time_ugni_s: sim_core::time::to_secs(ru.time_ns),
                time_mpi_s: sim_core::time::to_secs(rm.time_ns),
            }
        })
        .collect()
}

pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "## Table I: best configurations for N-Queens\n\
         Queens  cores(uGNI)  cores(MPI)  time(s,uGNI)  time(s,MPI)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6}  {:>11}  {:>10}  {:>12.3}  {:>11.3}\n",
            r.queens, r.cores_ugni, r.cores_mpi, r.time_ugni_s, r.time_mpi_s
        ));
    }
    out
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub cores: u32,
    pub ms_mpi: f64,
    pub ms_ugni: f64,
}

/// Table II: ApoA1 ms/step strong scaling.
pub fn table2(e: &Effort) -> Vec<Table2Row> {
    let cores: Vec<u32> = if e.full_scale {
        vec![2, 12, 48, 120, 240, 480, 1920, 3840]
    } else {
        vec![2, 12, 48]
    };
    cores
        .into_iter()
        .map(|c| {
            let cfg = MdConfig::for_system(System::Apoa1, e.md_steps);
            let cpn = 24.min(c);
            let ru = run_minimd(&LayerKind::ugni(), c, cpn, &cfg);
            let rm = run_minimd(&LayerKind::mpi(), c, cpn, &cfg);
            Table2Row {
                cores: c,
                ms_mpi: rm.ms_per_step,
                ms_ugni: ru.ms_per_step,
            }
        })
        .collect()
}

pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "## Table II: ApoA1 time (ms/step)\n\
         cores   MPI-based   uGNI-based\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5}  {:>10.2}  {:>11.2}\n",
            r.cores, r.ms_mpi, r.ms_ugni
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_shape() {
        let rows = table1(&Effort::quick());
        for r in &rows {
            // uGNI runs on more cores in less time.
            assert!(r.cores_ugni > r.cores_mpi);
            assert!(
                r.time_ugni_s < r.time_mpi_s,
                "N={}: uGNI {:.4}s !< MPI {:.4}s",
                r.queens,
                r.time_ugni_s,
                r.time_mpi_s
            );
        }
        assert!(render_table1(&rows).contains("Table I"));
    }

    #[test]
    fn table2_quick_shape() {
        let rows = table2(&Effort::quick());
        // Strong scaling: time decreases with cores for both runtimes.
        for w in rows.windows(2) {
            assert!(w[1].ms_ugni < w[0].ms_ugni);
            assert!(w[1].ms_mpi < w[0].ms_mpi);
        }
        // uGNI at least as fast everywhere.
        for r in &rows {
            assert!(r.ms_ugni <= r.ms_mpi * 1.02, "cores {}", r.cores);
        }
        assert!(render_table2(&rows).contains("Table II"));
    }
}
