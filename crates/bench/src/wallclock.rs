//! Wall-clock benchmark harness: how fast does the *simulator* run?
//!
//! Every other harness in this crate reports virtual time — the quantity
//! the paper is about. This one reports host time: events/sec and
//! ns/event over a fixed suite of workloads (ping-pong sweeps, Jacobi2D,
//! kNeighbor, streaming bandwidth, on both machine layers), so engine
//! optimizations are measurable and regressions visible. The suite's
//! *virtual* end times are pinned: an engine change that moves wall-clock
//! is expected, one that moves virtual time is a bug, and the harness
//! fails loudly on it (`cargo run --release -p charm-bench --bin
//! wallclock`, `--quick` in CI).
//!
//! Results are written to `BENCH_wallclock.json` at the repo root so the
//! perf trajectory is machine-readable PR over PR.

use crate::Effort;
use charm_apps::jacobi2d::{run_jacobi, JacobiConfig};
use charm_apps::kneighbor::{kneighbor_fine_report, kneighbor_report};
use charm_apps::pingpong::{charm_bandwidth_report, charm_one_way_report};
use charm_apps::LayerKind;
use std::time::Instant;

/// Aggregate events/sec of the pre-PR engine on this suite (single global
/// `BinaryHeap` event queue, copy-on-freeze `Bytes`, unbuffered trace
/// charges), measured on the same host right before the fast-path work
/// landed. The speedup reported in `BENCH_wallclock.json` is against this
/// number; refresh it only when the suite itself changes.
pub const BASELINE_EVENTS_PER_SEC_FULL: f64 = 1_484_000.0;
/// `--quick` variant of [`BASELINE_EVENTS_PER_SEC_FULL`].
pub const BASELINE_EVENTS_PER_SEC_QUICK: f64 = 1_584_000.0;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct WallRun {
    pub name: &'static str,
    pub layer: &'static str,
    /// Simulator events processed (identical on every repetition).
    pub events: u64,
    /// Deterministic fingerprint of the run: the sum of the virtual end
    /// times of every simulation the workload executes, in ns.
    pub virtual_end_ns: u64,
    /// Expected `virtual_end_ns`, pinned from the seed engine. The
    /// harness fails when they differ.
    pub pinned_end_ns: Option<u64>,
    /// Best-of-repetitions host time, ns.
    pub wall_ns: u64,
    /// Host ns the parallel engine spent blocked at barriers (spinning or
    /// parked) during the best repetition; 0 for the sequential engine.
    pub sync_overhead_ns: u64,
}

impl WallRun {
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 * 1e9 / self.wall_ns.max(1) as f64
    }

    pub fn ns_per_event(&self) -> f64 {
        self.wall_ns as f64 / self.events.max(1) as f64
    }
}

/// Whole-suite result.
#[derive(Debug, Clone)]
pub struct WallSuite {
    pub quick: bool,
    /// Worker threads the simulator ran with (1 = sequential engine).
    pub threads: u32,
    pub runs: Vec<WallRun>,
}

impl WallSuite {
    pub fn total_events(&self) -> u64 {
        self.runs.iter().map(|r| r.events).sum()
    }

    pub fn total_wall_ns(&self) -> u64 {
        self.runs.iter().map(|r| r.wall_ns).sum()
    }

    /// Aggregate barrier-wait time across the suite (best reps).
    pub fn total_sync_overhead_ns(&self) -> u64 {
        self.runs.iter().map(|r| r.sync_overhead_ns).sum()
    }

    pub fn events_per_sec(&self) -> f64 {
        self.total_events() as f64 * 1e9 / self.total_wall_ns().max(1) as f64
    }

    pub fn baseline_events_per_sec(&self) -> f64 {
        if self.quick {
            BASELINE_EVENTS_PER_SEC_QUICK
        } else {
            BASELINE_EVENTS_PER_SEC_FULL
        }
    }

    pub fn speedup_vs_baseline(&self) -> f64 {
        self.events_per_sec() / self.baseline_events_per_sec()
    }

    /// Workloads whose virtual fingerprint drifted from the pin.
    pub fn drifted(&self) -> Vec<&WallRun> {
        self.runs
            .iter()
            .filter(|r| r.pinned_end_ns.is_some_and(|p| p != r.virtual_end_ns))
            .collect()
    }

    /// Render the human-readable report table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Wallclock suite ({})\n{:<22}{:>20}{:>12}{:>16}{:>14}{:>12}\n",
            if self.quick { "quick" } else { "full" },
            "workload",
            "layer",
            "events",
            "virtual_end_ns",
            "events/sec",
            "ns/event",
        ));
        for r in &self.runs {
            out.push_str(&format!(
                "{:<22}{:>20}{:>12}{:>16}{:>14.0}{:>12.1}\n",
                r.name,
                r.layer,
                r.events,
                r.virtual_end_ns,
                r.events_per_sec(),
                r.ns_per_event(),
            ));
        }
        out.push_str(&format!(
            "total: {} events in {:.3}s -> {:.0} events/sec ({:.2}x vs pre-fast-path baseline {:.0})\n",
            self.total_events(),
            self.total_wall_ns() as f64 / 1e9,
            self.events_per_sec(),
            self.speedup_vs_baseline(),
            self.baseline_events_per_sec(),
        ));
        if self.threads > 1 {
            out.push_str(&format!(
                "sync overhead: {:.3}s blocked at barriers ({:.1}% of wall)\n",
                self.total_sync_overhead_ns() as f64 / 1e9,
                100.0 * self.total_sync_overhead_ns() as f64 / self.total_wall_ns().max(1) as f64,
            ));
        }
        out
    }

    /// The aggregation figure's two legs (`kneighbor_fine` off/on), when
    /// this suite ran them.
    pub fn aggregation_legs(&self) -> Option<(&WallRun, &WallRun)> {
        let find = |layer: &str| {
            self.runs
                .iter()
                .find(|r| r.name == "kneighbor_fine" && r.layer == layer)
        };
        Some((find("agg_off")?, find("agg_on")?))
    }

    /// The `aggregation` figure gate (ISSUE 10): both legs run the exact
    /// same application-level AM traffic, so the host events/s ratio on
    /// that traffic *is* the wall-time ratio — require >= 1.5x — and the
    /// aggregated leg must also finish earlier in virtual time. Returns a
    /// failure message, or None when the gate holds (or the figure wasn't
    /// run).
    pub fn aggregation_gate(&self) -> Option<String> {
        let (off, on) = self.aggregation_legs()?;
        let ratio = off.wall_ns as f64 / on.wall_ns.max(1) as f64;
        if ratio < 1.5 {
            return Some(format!(
                "aggregation figure: {ratio:.2}x host speedup on fine-grained \
                 kneighbor, need >= 1.5x (off {} ns, on {} ns)",
                off.wall_ns, on.wall_ns
            ));
        }
        if on.virtual_end_ns >= off.virtual_end_ns {
            return Some(format!(
                "aggregation figure: no virtual-time win (off {} ns, on {} ns)",
                off.virtual_end_ns, on.virtual_end_ns
            ));
        }
        None
    }

    /// Keyed history row for the aggregation figure, appended alongside
    /// the wallclock rows in `BENCH_wallclock.json`.
    pub fn aggregation_history_record(&self, rev: &str) -> Option<String> {
        let (off, on) = self.aggregation_legs()?;
        Some(format!(
            "{{\"suite\": \"aggregation\", \"quick\": {}, \"threads\": {}, \
             \"rev\": \"{}\", \"off_wall_ns\": {}, \"on_wall_ns\": {}, \
             \"host_speedup\": {:.2}, \"off_virtual_ns\": {}, \
             \"on_virtual_ns\": {}}}",
            self.quick,
            self.threads,
            rev,
            off.wall_ns,
            on.wall_ns,
            off.wall_ns as f64 / on.wall_ns.max(1) as f64,
            off.virtual_end_ns,
            on.virtual_end_ns,
        ))
    }

    /// One appendable history record: the keyed row
    /// `(suite, quick, threads, rev)` → throughput, kept across runs so
    /// `BENCH_wallclock.json` records the perf trajectory PR over PR and
    /// thread-count over thread-count.
    pub fn history_record(&self, rev: &str) -> String {
        format!(
            "{{\"suite\": \"wallclock\", \"quick\": {}, \"threads\": {}, \
             \"rev\": \"{}\", \"total_events\": {}, \"total_wall_ns\": {}, \
             \"events_per_sec\": {:.1}, \"sync_overhead_ns\": {}}}",
            self.quick,
            self.threads,
            rev,
            self.total_events(),
            self.total_wall_ns(),
            self.events_per_sec(),
            self.total_sync_overhead_ns(),
        )
    }

    /// Machine-readable `BENCH_wallclock.json` contents: the latest run in
    /// full, plus the accumulated `history` rows (pass the rows parsed
    /// from the previous file via [`extract_history`], plus any new ones).
    pub fn to_json_with_history(&self, history: &[String]) -> String {
        let mut out = self.to_json();
        let tail = out.rfind("]\n}").expect("workloads array present");
        out.truncate(tail + 1); // keep the "]", drop "\n}"
        out.push_str(",\n  \"history\": [\n");
        for (i, h) in history.iter().enumerate() {
            out.push_str("    ");
            out.push_str(h);
            out.push_str(if i + 1 == history.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Machine-readable `BENCH_wallclock.json` contents.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"suite\": \"wallclock\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        out.push_str(&format!("  \"total_wall_ns\": {},\n", self.total_wall_ns()));
        out.push_str(&format!(
            "  \"events_per_sec\": {:.1},\n",
            self.events_per_sec()
        ));
        out.push_str(&format!(
            "  \"baseline_events_per_sec\": {:.1},\n",
            self.baseline_events_per_sec()
        ));
        out.push_str(&format!(
            "  \"speedup_vs_baseline\": {:.3},\n",
            self.speedup_vs_baseline()
        ));
        out.push_str(&format!(
            "  \"sync_overhead_ns\": {},\n",
            self.total_sync_overhead_ns()
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"layer\": \"{}\", \"events\": {}, \
                 \"virtual_end_ns\": {}, \"pinned_end_ns\": {}, \"wall_ns\": {}, \
                 \"events_per_sec\": {:.1}, \"ns_per_event\": {:.2}, \
                 \"sync_overhead_ns\": {}}}{}\n",
                r.name,
                r.layer,
                r.events,
                r.virtual_end_ns,
                r.pinned_end_ns
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "null".into()),
                r.wall_ns,
                r.events_per_sec(),
                r.ns_per_event(),
                r.sync_overhead_ns,
                if i + 1 == self.runs.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Pinned virtual fingerprints, recorded once from the seed engine
/// (pre-fast-path) and required to hold bit-for-bit ever since. Keyed by
/// `(workload, layer, quick)`.
const PINS: &[(&str, &str, bool, u64)] = &[
    // The canonical inert-plan pins (tests/tests/chaos.rs) ride along so
    // the harness cross-checks the same numbers CI pins elsewhere.
    ("jacobi2d_seed", "ugni", false, 242_228),
    ("jacobi2d_seed", "mpi", false, 314_200),
    ("jacobi2d_seed", "ugni", true, 242_228),
    ("jacobi2d_seed", "mpi", true, 314_200),
    // Same seed shape behind an inert `FaultPlan::none()`: the chaos and
    // crash machinery must be free when the plan never fires, so these
    // pin to the exact plain-run numbers above.
    ("jacobi2d_inert", "ugni", false, 242_228),
    ("jacobi2d_inert", "mpi", false, 314_200),
    ("jacobi2d_inert", "ugni", true, 242_228),
    ("jacobi2d_inert", "mpi", true, 314_200),
    ("pingpong_sweep", "ugni", false, 30_337_820),
    ("pingpong_sweep", "mpi", false, 66_978_602),
    ("pingpong_sweep", "ugni", true, 4_078_160),
    ("pingpong_sweep", "mpi", true, 8_425_202),
    ("bandwidth", "ugni", false, 7_453_718),
    ("bandwidth", "mpi", false, 21_534_320),
    ("bandwidth", "ugni", true, 1_061_378),
    ("bandwidth", "mpi", true, 2_350_590),
    ("jacobi2d", "ugni", false, 1_123_628),
    ("jacobi2d", "mpi", false, 2_362_820),
    ("jacobi2d", "ugni", true, 331_092),
    ("jacobi2d", "mpi", true, 563_660),
    ("kneighbor", "ugni", false, 1_959_503),
    ("kneighbor", "mpi", false, 4_166_345),
    ("kneighbor", "ugni", true, 213_561),
    ("kneighbor", "mpi", true, 375_853),
    // The aggregation figure (ISSUE 10): fine-grained kNeighbor with
    // destination batching off/on. Pinned when the figure landed; the
    // off leg is the typed-AM direct path, the on leg exercises the
    // coalescing engine end to end.
    ("kneighbor_fine", "agg_off", false, 4_860_170),
    ("kneighbor_fine", "agg_on", false, 843_180),
    ("kneighbor_fine", "agg_off", true, 578_570),
    ("kneighbor_fine", "agg_on", true, 231_355),
];

fn pin_for(name: &str, layer: &str, quick: bool) -> Option<u64> {
    PINS.iter()
        .find(|(n, l, q, _)| *n == name && *l == layer && *q == quick)
        .map(|(_, _, _, v)| *v)
}

/// Repetitions per workload; wall time is the best of these, which is
/// the standard way to strip scheduler noise from a deterministic
/// computation.
const REPS: u32 = 3;

fn measure(
    name: &'static str,
    layer_tag: &'static str,
    quick: bool,
    mut body: impl FnMut() -> (u64, u64),
) -> WallRun {
    let mut best_wall = u64::MAX;
    let mut best_sync = 0;
    let mut events = 0;
    let mut virtual_end = 0;
    for rep in 0..REPS {
        // Drain any overhead accumulated outside this workload so the
        // meter reads exactly this repetition's barrier waits.
        let _ = charm_rt::prelude::take_sync_overhead_ns();
        let t0 = Instant::now();
        let (ev, vend) = body();
        let wall = t0.elapsed().as_nanos() as u64;
        let sync = charm_rt::prelude::take_sync_overhead_ns();
        if wall < best_wall {
            best_wall = wall;
            best_sync = sync;
        }
        if rep == 0 {
            events = ev;
            virtual_end = vend;
        } else {
            assert_eq!(
                (ev, vend),
                (events, virtual_end),
                "{name}/{layer_tag}: nondeterministic repetition"
            );
        }
    }
    WallRun {
        name,
        layer: layer_tag,
        events,
        virtual_end_ns: virtual_end,
        pinned_end_ns: pin_for(name, layer_tag, quick),
        wall_ns: best_wall,
        sync_overhead_ns: best_sync,
    }
}

fn layers() -> [(&'static str, LayerKind); 2] {
    [("ugni", LayerKind::ugni()), ("mpi", LayerKind::mpi())]
}

/// Pull the accumulated `history` rows out of a previously written
/// `BENCH_wallclock.json`, one JSON object per entry. Tolerates the
/// pre-history file layout (returns empty).
pub fn extract_history(json: &str) -> Vec<String> {
    let Some(start) = json.find("\"history\": [") else {
        return Vec::new();
    };
    let body = &json[start + "\"history\": [".len()..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    body[..end]
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

/// Run the whole suite sequentially. `Effort::quick()` selects the
/// reduced CI shape.
pub fn wallclock_suite(e: &Effort) -> WallSuite {
    wallclock_suite_threads(e, 1)
}

/// Run the whole suite with the simulator in `threads`-way conservative
/// parallel mode (1 = the sequential engine). Virtual fingerprints are
/// pinned identically for every thread count — the parallel engine is
/// bit-exact, so a drift at `threads > 1` is a determinism bug, not a
/// perf artifact.
pub fn wallclock_suite_threads(e: &Effort, threads: u32) -> WallSuite {
    // Forced: the point of the sweep is to measure the parallel engine's
    // overhead even when the host has fewer cores than `threads` — the
    // auto-cap would silently fall back to the sequential engine.
    charm_rt::prelude::set_default_threads_forced(threads);
    let suite = wallclock_suite_inner(e, threads);
    charm_rt::prelude::set_default_threads_forced(1);
    suite
}

fn wallclock_suite_inner(e: &Effort, threads: u32) -> WallSuite {
    let quick = !e.full_scale;
    let mut runs = Vec::new();

    // Ping-pong sweep: sizes straddling the eager/rendezvous switch plus
    // one persistent-channel run.
    let (sizes, pp_iters): (&[usize], u64) = if quick {
        (&[64, 65536], 60)
    } else {
        (&[64, 4096, 65536], 400)
    };
    for (tag, layer) in layers() {
        runs.push(measure("pingpong_sweep", tag, quick, || {
            let mut events = 0;
            let mut vend = 0;
            for &b in sizes {
                let (_, _, rep) = charm_one_way_report(&layer, 1, b, pp_iters, false);
                events += rep.stats.events;
                vend += rep.end_time;
            }
            let (_, _, rep) = charm_one_way_report(&layer, 1, 65536, pp_iters, true);
            events += rep.stats.events;
            vend += rep.end_time;
            (events, vend)
        }));
    }

    // Streaming bandwidth: windowed rendezvous traffic, the workload with
    // the highest event fan-out per virtual ns.
    let (bw_window, bw_rounds) = if quick { (8, 10) } else { (16, 40) };
    for (tag, layer) in layers() {
        runs.push(measure("bandwidth", tag, quick, || {
            let (_, rep) = charm_bandwidth_report(&layer, 65536, bw_window, bw_rounds);
            (rep.stats.events, rep.end_time)
        }));
    }

    // Jacobi2D at the canonical seed shape: pinned to the same end times
    // the chaos suite asserts (242228 ns uGNI / 314200 ns MPI).
    let seed_cfg = JacobiConfig {
        n: 20,
        blocks: 4,
        iters: 10,
    };
    for (tag, layer) in layers() {
        runs.push(measure("jacobi2d_seed", tag, quick, || {
            let r = run_jacobi(&layer, 8, 4, &seed_cfg);
            (r.events, r.time_ns)
        }));
    }

    // The seed shape again, gated behind an inert fault plan: keyed proof
    // that the fault-injection fast path costs nothing when no window is
    // live — same pins as the plain runs, bit for bit.
    for (tag, layer) in layers() {
        let gated = layer.with_fault(gemini_net::FaultPlan::none());
        runs.push(measure("jacobi2d_inert", tag, quick, || {
            let r = run_jacobi(&gated, 8, 4, &seed_cfg);
            (r.events, r.time_ns)
        }));
    }

    // Jacobi2D at measurement scale.
    let jac_cfg = if quick {
        JacobiConfig {
            n: 32,
            blocks: 4,
            iters: 20,
        }
    } else {
        JacobiConfig {
            n: 48,
            blocks: 8,
            iters: 40,
        }
    };
    for (tag, layer) in layers() {
        runs.push(measure("jacobi2d", tag, quick, || {
            let r = run_jacobi(&layer, 16, 4, &jac_cfg);
            (r.events, r.time_ns)
        }));
    }

    // kNeighbor: the synthetic all-neighbor exchange (Fig. 10 shape).
    let (kn_cores, kn_k, kn_bytes, kn_iters) = if quick {
        (8, 2, 1024, 15)
    } else {
        (16, 3, 4096, 60)
    };
    for (tag, layer) in layers() {
        runs.push(measure("kneighbor", tag, quick, || {
            let (_, rep) = kneighbor_report(&layer, kn_cores, 4, kn_k, kn_bytes, kn_iters);
            (rep.stats.events, rep.end_time)
        }));
    }

    // The aggregation figure (ISSUE 10): fine-grained kNeighbor — many
    // 16-byte AMs per neighbor per iteration, the shape where SMSG's fixed
    // per-message cost dominates — with destination batching off and on.
    // Both legs move the identical application-level AM traffic on uGNI,
    // so the wall-time ratio is the app-level events/s win.
    let (fg_cores, fg_k, fg_msgs, fg_iters) = if quick {
        (8, 2, 8, 10)
    } else {
        (16, 3, 16, 30)
    };
    let ugni = LayerKind::ugni();
    for (tag, aggregate) in [("agg_off", false), ("agg_on", true)] {
        runs.push(measure("kneighbor_fine", tag, quick, || {
            let (_, rep) =
                kneighbor_fine_report(&ugni, fg_cores, 4, fg_k, fg_msgs, fg_iters, aggregate);
            (rep.stats.events, rep.end_time)
        }));
    }

    WallSuite {
        quick,
        threads,
        runs,
    }
}
