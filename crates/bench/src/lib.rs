//! `charm-bench`: the harness that regenerates every table and figure of
//! the paper's evaluation (§V). Each `fig*`/`table*` function returns the
//! same rows/series the paper reports; the binaries under `src/bin/` print
//! them, and `src/bin/all.rs` regenerates everything in one run.
//!
//! Absolute numbers come from the calibrated simulator (DESIGN.md §3) —
//! the claim being reproduced is the *shape*: who wins, by what factor,
//! where the crossovers fall.

pub mod figures;
pub mod scale;
pub mod tables;
pub mod wallclock;

pub use figures::*;
pub use tables::*;
pub use wallclock::{wallclock_suite, wallclock_suite_threads, WallRun, WallSuite};

/// Default iteration counts, tuned so every figure regenerates in seconds
/// in release mode while still averaging over steady-state behaviour.
#[derive(Debug, Clone)]
pub struct Effort {
    pub pingpong_iters: u64,
    pub md_steps: u32,
    /// Scale factor on the largest core counts (1 = paper scale).
    pub full_scale: bool,
}

impl Default for Effort {
    fn default() -> Self {
        Effort {
            pingpong_iters: 50,
            md_steps: 3,
            full_scale: true,
        }
    }
}

impl Effort {
    /// Reduced effort for integration tests / debug builds.
    pub fn quick() -> Self {
        Effort {
            pingpong_iters: 12,
            md_steps: 2,
            full_scale: false,
        }
    }
}
