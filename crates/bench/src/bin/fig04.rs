//! Regenerates the paper's Fig. 04 series. See DESIGN.md §4.
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::fig04(&e).render());
}
