//! Regenerates the paper's Table I (N-Queens best configurations).
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::render_table1(&charm_bench::table1(&e)));
}
