//! Regenerates the paper's Fig. 09b series. See DESIGN.md §4.
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::fig09b(&e).render());
}
