//! Regenerates the paper's Fig. 10 series. See DESIGN.md §4.
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::fig10(&e).render());
}
