//! Chaos sweep: pingpong completion latency and recovery-overhead share
//! vs fabric drop probability. See DESIGN.md §7.
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::fault_sweep(&e).render());
}
