//! Regenerates the paper's Fig. 09c series. See DESIGN.md §4.
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::fig09c(&e).render());
}
