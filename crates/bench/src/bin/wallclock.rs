//! `cargo run --release -p charm-bench --bin wallclock [-- --quick]`
//!
//! Runs the wall-clock suite (see `charm_bench::wallclock`), prints the
//! events/sec table, writes `BENCH_wallclock.json` at the repo root, and
//! exits nonzero if any workload's *virtual* end time drifted from its
//! pinned value — engine fast-path work must never move virtual time, at
//! any thread count.
//!
//! Flags:
//! * `--quick` — CI shape;
//! * `--threads N[,M,...]` — run the suite once per listed worker-thread
//!   count (1 = sequential engine; default `1`), appending one history
//!   row per count;
//! * `--rev REV` — git revision recorded in the appended history rows
//!   (default: `unknown`);
//! * `--gate-overhead X` — require the threads=2 sweep's total wall time
//!   to stay within `X`× of the threads=1 sweep (both must be listed in
//!   `--threads`); exits nonzero past the factor. This is the CI guard
//!   that parallel-engine sync overhead stays bounded even on hosts with
//!   fewer cores than workers;
//! * `--no-write` — skip the JSON;
//! * `--print-pins` — emit the PINS table rows measured by this build.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_write = args.iter().any(|a| a == "--no-write");
    let print_pins = args.iter().any(|a| a == "--print-pins");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let rev = flag_value("--rev").unwrap_or_else(|| "unknown".into());
    let gate_overhead: Option<f64> = flag_value("--gate-overhead")
        .map(|s| s.parse().expect("--gate-overhead takes a factor, e.g. 2.0"));
    let threads: Vec<u32> = flag_value("--threads")
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2,4,8"))
                .collect()
        })
        .unwrap_or_else(|| vec![1]);
    let e = if quick {
        charm_bench::Effort::quick()
    } else {
        charm_bench::Effort::default()
    };

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_wallclock.json");
    let mut history = std::fs::read_to_string(&path)
        .map(|old| charm_bench::wallclock::extract_history(&old))
        .unwrap_or_default();

    let mut last: Option<charm_bench::WallSuite> = None;
    let mut walls: Vec<(u32, u64)> = Vec::new();
    let mut drift = false;
    for &t in &threads {
        let suite = charm_bench::wallclock::wallclock_suite_threads(&e, t);
        println!("-- threads = {t} --");
        print!("{}", suite.render());
        for r in suite.drifted() {
            eprintln!(
                "VIRTUAL-TIME DRIFT (threads={t}): {}/{} ended at {} ns, pinned {} ns",
                r.name,
                r.layer,
                r.virtual_end_ns,
                r.pinned_end_ns.unwrap()
            );
            drift = true;
        }
        walls.push((t, suite.total_wall_ns()));
        history.push(suite.history_record(&rev));
        if let Some(row) = suite.aggregation_history_record(&rev) {
            history.push(row);
        }
        last = Some(suite);
    }
    let suite = last.expect("at least one thread count");

    // Aggregation figure gate (ISSUE 10): >= 1.5x host events/s on the
    // fine-grained AM traffic plus a virtual-time win, checked on the
    // last sweep's rows.
    let agg_fail = suite.aggregation_gate();
    if let Some((off, on)) = suite.aggregation_legs() {
        println!(
            "aggregation figure: host speedup {:.2}x (wall {} -> {} ns), \
             virtual {} -> {} ns",
            off.wall_ns as f64 / on.wall_ns.max(1) as f64,
            off.wall_ns,
            on.wall_ns,
            off.virtual_end_ns,
            on.virtual_end_ns,
        );
    }
    if let Some(msg) = &agg_fail {
        eprintln!("wallclock: {msg}");
    }

    let mut over_gate = false;
    if let Some(factor) = gate_overhead {
        let wall_at = |n: u32| walls.iter().find(|(t, _)| *t == n).map(|(_, w)| *w);
        match (wall_at(1), wall_at(2)) {
            (Some(w1), Some(w2)) => {
                let ratio = w2 as f64 / w1.max(1) as f64;
                println!(
                    "overhead gate: threads=2 wall is {ratio:.2}x threads=1 (limit {factor:.2}x)"
                );
                if ratio > factor {
                    eprintln!(
                        "wallclock: parallel sync overhead past the gate \
                         ({ratio:.2}x > {factor:.2}x)"
                    );
                    over_gate = true;
                }
            }
            _ => {
                eprintln!("wallclock: --gate-overhead needs both 1 and 2 in --threads");
                over_gate = true;
            }
        }
    }

    if print_pins {
        println!("\n// measured PINS rows for this build:");
        for r in &suite.runs {
            println!(
                "    (\"{}\", \"{}\", {}, {}),",
                r.name, r.layer, suite.quick, r.virtual_end_ns
            );
        }
    }

    if !no_write {
        std::fs::write(&path, suite.to_json_with_history(&history))
            .expect("write BENCH_wallclock.json");
        println!("wrote {}", path.display());
    }

    if drift {
        eprintln!("wallclock: engine changed virtual time; this is a correctness bug");
        return ExitCode::FAILURE;
    }
    if over_gate || agg_fail.is_some() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
