//! `cargo run --release -p charm-bench --bin wallclock [-- --quick]`
//!
//! Runs the wall-clock suite (see `charm_bench::wallclock`), prints the
//! events/sec table, writes `BENCH_wallclock.json` at the repo root, and
//! exits nonzero if any workload's *virtual* end time drifted from its
//! pinned value — engine fast-path work must never move virtual time.
//!
//! Flags: `--quick` (CI shape), `--no-write` (skip the JSON),
//! `--print-pins` (emit the PINS table rows measured by this build).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_write = args.iter().any(|a| a == "--no-write");
    let print_pins = args.iter().any(|a| a == "--print-pins");
    let e = if quick {
        charm_bench::Effort::quick()
    } else {
        charm_bench::Effort::default()
    };

    let suite = charm_bench::wallclock_suite(&e);
    print!("{}", suite.render());

    if print_pins {
        println!("\n// measured PINS rows for this build:");
        for r in &suite.runs {
            println!(
                "    (\"{}\", \"{}\", {}, {}),",
                r.name, r.layer, suite.quick, r.virtual_end_ns
            );
        }
    }

    if !no_write {
        // crates/bench -> repo root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let path = root.join("BENCH_wallclock.json");
        std::fs::write(&path, suite.to_json()).expect("write BENCH_wallclock.json");
        println!("wrote {}", path.display());
    }

    let drifted = suite.drifted();
    if !drifted.is_empty() {
        for r in drifted {
            eprintln!(
                "VIRTUAL-TIME DRIFT: {}/{} ended at {} ns, pinned {} ns",
                r.name,
                r.layer,
                r.virtual_end_ns,
                r.pinned_end_ns.unwrap()
            );
        }
        eprintln!("wallclock: engine changed virtual time; this is a correctness bug");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
