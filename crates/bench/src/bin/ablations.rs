//! Ablation studies for the design choices DESIGN.md §5 calls out, beyond
//! the paper's own figures:
//!
//! * SMSG vs MSGQ (performance vs mailbox memory, paper §II-B);
//! * SMP mode vs classic non-SMP (paper §VII future work);
//! * GET- vs PUT-based rendezvous (paper §III-C's design argument).

use charm_apps::kneighbor::kneighbor_iteration_time;
use charm_apps::pingpong::charm_one_way;
use charm_apps::LayerKind;
use gemini_net::GeminiParams;
use lrts_ugni::{SmallPath, UgniConfig};

fn main() {
    let p = GeminiParams::hopper();

    println!("## Ablation: SMSG vs MSGQ (small-message facility, paper §II-B)");
    println!("{:>8}  {:>14}  {:>14}", "bytes", "SMSG us", "MSGQ us");
    for bytes in [8usize, 64, 256, 1024] {
        let smsg = charm_one_way(&LayerKind::ugni(), 1, bytes, 40, false) / 1000.0;
        let msgq = charm_one_way(
            &LayerKind::Ugni(UgniConfig::optimized().with_small_path(SmallPath::Msgq)),
            1,
            bytes,
            40,
            false,
        ) / 1000.0;
        println!("{bytes:>8}  {smsg:>14.3}  {msgq:>14.3}");
    }
    println!("\nper-node mailbox memory (KiB):");
    println!(
        "{:>8}  {:>14}  {:>14}",
        "nodes", "SMSG (per-peer)", "MSGQ (shared)"
    );
    for nodes in [16u32, 128, 1024, 8192] {
        println!(
            "{:>8}  {:>14}  {:>14}",
            nodes,
            p.smsg_mailbox_bytes(nodes) / 1024,
            p.msgq_mailbox_bytes(nodes) / 1024
        );
    }

    println!("\n## Ablation: SMP mode (comm thread per node, paper §VII)");
    println!(
        "{:>8}  {:>16}  {:>16}",
        "bytes", "classic us/iter", "SMP us/iter"
    );
    for bytes in [4096usize, 65_536, 262_144] {
        let classic = kneighbor_iteration_time(&LayerKind::ugni(), 6, 2, 1, bytes, 8) / 1000.0;
        let smp = kneighbor_iteration_time(
            &LayerKind::Ugni(UgniConfig::optimized().with_smp(true)),
            6,
            2,
            1,
            bytes,
            8,
        ) / 1000.0;
        println!("{bytes:>8}  {classic:>16.3}  {smp:>16.3}");
    }

    println!("\n## Ablation: GET- vs PUT-based rendezvous (paper §III-C)");
    println!("(see `cargo bench -p charm-bench --bench protocols` for the");
    println!(" virtual-time comparison: PUT pays one extra control message)");
}
