//! Regenerates every table and figure in one run, printing
//! EXPERIMENTS.md-ready markdown. `--quick` runs the reduced-scale
//! variant used in CI.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let e = if quick {
        charm_bench::Effort::quick()
    } else {
        charm_bench::Effort::default()
    };
    println!(
        "# Reproduction run ({})\n",
        if quick { "quick" } else { "full scale" }
    );
    println!("{}", charm_bench::fig01(&e).render());
    println!("{}", charm_bench::fig04(&e).render());
    println!("{}", charm_bench::fig06(&e).render());
    println!("{}", charm_bench::fig08a(&e).render());
    println!("{}", charm_bench::fig08b(&e).render());
    println!("{}", charm_bench::fig08c(&e).render());
    println!("{}", charm_bench::fig09a(&e).render());
    println!("{}", charm_bench::fig09b(&e).render());
    println!("{}", charm_bench::fig09c(&e).render());
    println!("{}", charm_bench::fig10(&e).render());
    println!("{}", charm_bench::fig11(&e).render());
    println!("{}", charm_bench::fig12(&e));
    println!("{}", charm_bench::fig13(&e).render());
    println!("{}", charm_bench::render_table1(&charm_bench::table1(&e)));
    println!("{}", charm_bench::render_table2(&charm_bench::table2(&e)));
    println!("{}", charm_bench::fault_sweep(&e).render());
}
