//! Regenerates every table and figure in one run, printing
//! EXPERIMENTS.md-ready markdown. `--quick` runs the reduced-scale
//! variant used in CI. A final summary reports the host wall-clock time
//! each figure took (virtual results are unaffected; this is the
//! regeneration cost, visible in `repro_full.txt`).
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let e = if quick {
        charm_bench::Effort::quick()
    } else {
        charm_bench::Effort::default()
    };
    println!(
        "# Reproduction run ({})\n",
        if quick { "quick" } else { "full scale" }
    );
    let mut timings: Vec<(&str, f64)> = Vec::new();
    let mut timed = |name: &'static str, render: &dyn Fn() -> String| {
        let t0 = Instant::now();
        let out = render();
        timings.push((name, t0.elapsed().as_secs_f64()));
        println!("{out}");
    };
    timed("fig01", &|| charm_bench::fig01(&e).render());
    timed("fig04", &|| charm_bench::fig04(&e).render());
    timed("fig06", &|| charm_bench::fig06(&e).render());
    timed("fig08a", &|| charm_bench::fig08a(&e).render());
    timed("fig08b", &|| charm_bench::fig08b(&e).render());
    timed("fig08c", &|| charm_bench::fig08c(&e).render());
    timed("fig09a", &|| charm_bench::fig09a(&e).render());
    timed("fig09b", &|| charm_bench::fig09b(&e).render());
    timed("fig09c", &|| charm_bench::fig09c(&e).render());
    timed("fig10", &|| charm_bench::fig10(&e).render());
    timed("fig11", &|| charm_bench::fig11(&e).render());
    timed("fig12", &|| charm_bench::fig12(&e));
    timed("fig13", &|| charm_bench::fig13(&e).render());
    timed("table1", &|| {
        charm_bench::render_table1(&charm_bench::table1(&e))
    });
    timed("table2", &|| {
        charm_bench::render_table2(&charm_bench::table2(&e))
    });
    timed("fault_sweep", &|| charm_bench::fault_sweep(&e).render());
    timed("crash_sweep", &|| charm_bench::crash_sweep(&e).render());

    println!("## Regeneration wall-clock\n");
    println!("figure       wall_s");
    let mut total = 0.0;
    for (name, secs) in &timings {
        println!("{name:<12} {secs:>6.3}");
        total += secs;
    }
    println!("{:<12} {total:>6.3}", "total");
}
