//! `cargo run --release -p charm-bench --bin scale [-- --quick]`
//!
//! Runs the scale suite (see `charm_bench::scale`): one subprocess per
//! row so each gets a clean `VmHWM` peak-RSS meter, prints the table,
//! writes `BENCH_scale.json` at the repo root, and exits nonzero when a
//! row's virtual end time drifts from its pin or its peak RSS busts the
//! budget.
//!
//! Flags:
//! * `--quick` — CI shape (the rows marked `quick` in the table);
//! * `--row NAME` — internal: run one row in this process and print its
//!   JSON (the parent invokes this on `current_exe`);
//! * `--rev REV` — git revision recorded in the history rows;
//! * `--no-write` — skip the JSON;
//! * `--print-pins` — emit the ROWS pin values measured by this build.

use charm_bench::scale::{self, ScaleRow, ScaleSuite};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_write = args.iter().any(|a| a == "--no-write");
    let print_pins = args.iter().any(|a| a == "--print-pins");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let rev = flag_value("--rev").unwrap_or_else(|| "unknown".into());

    // Child mode: one row, clean RSS meter, JSON on stdout.
    if let Some(row) = flag_value("--row") {
        let spec = scale::spec(&row).unwrap_or_else(|| panic!("unknown scale row {row}"));
        let r = scale::run_row(spec);
        println!("SCALE_ROW {}", r.to_json());
        return ExitCode::SUCCESS;
    }

    let exe = std::env::current_exe().expect("own path");
    let mut rows: Vec<ScaleRow> = Vec::new();
    for spec in scale::ROWS {
        if quick && !spec.quick {
            continue;
        }
        eprintln!("scale: running {} ({} PEs)...", spec.name, spec.pes);
        let out = std::process::Command::new(&exe)
            .args(["--row", spec.name])
            .output()
            .expect("spawn row subprocess");
        let stdout = String::from_utf8_lossy(&out.stdout);
        if !out.status.success() {
            eprintln!(
                "scale: row {} failed ({}):\n{}{}",
                spec.name,
                out.status,
                stdout,
                String::from_utf8_lossy(&out.stderr)
            );
            return ExitCode::FAILURE;
        }
        let line = stdout
            .lines()
            .find_map(|l| l.strip_prefix("SCALE_ROW "))
            .unwrap_or_else(|| panic!("row {} printed no SCALE_ROW line", spec.name));
        rows.push(ScaleRow::from_json(line).expect("row JSON parses"));
    }
    let suite = ScaleSuite { quick, rows };
    print!("{}", suite.render());

    if print_pins {
        println!("\n// measured ROWS pin values for this build:");
        for r in &suite.rows {
            println!("    (\"{}\", {}),", r.name, r.virtual_end_ns);
        }
    }

    let mut bad = false;
    for r in suite.drifted() {
        eprintln!(
            "VIRTUAL-TIME DRIFT: {} ended at {} ns, pinned {} ns",
            r.name,
            r.virtual_end_ns,
            r.pinned_end_ns.unwrap()
        );
        bad = true;
    }
    for r in suite.over_budget() {
        eprintln!(
            "RSS BUDGET BUST: {} peaked at {} bytes, budget {} bytes",
            r.name, r.peak_rss_bytes, r.rss_budget_bytes
        );
        bad = true;
    }

    if !no_write {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let path = root.join("BENCH_scale.json");
        let mut history = std::fs::read_to_string(&path)
            .map(|old| charm_bench::wallclock::extract_history(&old))
            .unwrap_or_default();
        history.extend(suite.history_records(&rev));
        std::fs::write(&path, suite.to_json_with_history(&history))
            .expect("write BENCH_scale.json");
        println!("wrote {}", path.display());
    }

    if bad {
        eprintln!("scale: machine size moved virtual time or memory; see above");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
