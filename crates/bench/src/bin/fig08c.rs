//! Regenerates the paper's Fig. 08c series. See DESIGN.md §4.
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::fig08c(&e).render());
}
