//! Crash sweep: recovery latency and checkpoint overhead of a mid-run
//! node crash on Jacobi2D, vs buddy-checkpoint cadence. See DESIGN.md §11.
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::crash_sweep(&e).render());
}
