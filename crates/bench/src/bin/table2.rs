//! Regenerates the paper's Table II (ApoA1 strong scaling).
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::render_table2(&charm_bench::table2(&e)));
}
