//! Regenerates the paper's Fig. 12 time profiles (Projections-style).
fn main() {
    let e = charm_bench::Effort::default();
    println!("{}", charm_bench::fig12(&e));
}
