//! Scale suite: peak host memory and throughput at Hopper-and-beyond PE
//! counts.
//!
//! The wallclock suite answers "how fast is the engine"; this one answers
//! "does machine size stay a non-problem". Each row builds a simulated
//! machine at a fixed PE count, runs a workload, and reports events/sec
//! *and the process's peak RSS* (`VmHWM` from `/proc/self/status`). Two
//! rows are the headline:
//!
//! * `hopper_kneighbor` — the full Hopper machine of the paper's target
//!   installation (6,384 nodes x 24 cores = 153,216 PEs) running the
//!   kNeighbor exchange on every PE: the dense case, where the flyweight
//!   tables all materialize and RSS is dominated by live per-PE state.
//! * `million_sparse` — a >=1M-PE machine where a few thousand scattered
//!   PEs relay messages across the torus: the sparse case, where
//!   construction must stay O(nodes) and untouched PEs must cost nothing
//!   (pe_table.rs, `LazyVec`/`LazySlab`, lazy CQs/mempools — DESIGN.md
//!   §13).
//!
//! Both rows pin their virtual end times (the engine at 153,216 PEs must
//! be just as deterministic as at 8) and their peak-RSS budgets; the
//! harness fails loudly on either kind of drift. Because `VmHWM` is a
//! process-lifetime high-water mark, the `scale` binary re-executes
//! itself once per row (`--row NAME`) so every row gets a clean meter.

use bytes::Bytes;
use charm_apps::kneighbor::kneighbor_report;
use charm_apps::LayerKind;
use charm_rt::pe_table::PE_PAGE_LEN;
use std::time::Instant;

/// Hopper: 6,384 compute nodes, 24 cores each (paper §V: "Hopper ...
/// 153,216 cores").
pub const HOPPER_NODES: u32 = 6_384;
pub const HOPPER_CORES_PER_NODE: u32 = 24;
pub const HOPPER_PES: u32 = HOPPER_NODES * HOPPER_CORES_PER_NODE;

/// The beyond-Hopper row: a full mebi-PE machine (64k nodes x 16).
pub const MILLION_PES: u32 = 1 << 20;
pub const MILLION_CORES_PER_NODE: u32 = 16;

/// Static description of one scale row. Workload shapes are fixed (no
/// quick/full split): the pins must mean the same thing everywhere, and
/// the suite is sized to stay CI-viable as-is.
pub struct RowSpec {
    pub name: &'static str,
    pub pes: u32,
    pub cores_per_node: u32,
    /// Included in `--quick` (CI) runs.
    pub quick: bool,
    /// Pinned virtual end time (ns); `None` while a row is being landed.
    pub pinned_end_ns: Option<u64>,
    /// Peak-RSS ceiling for the row's process, bytes. Budgets are set
    /// ~2x above the measured peak so they catch O(num_pes) regressions
    /// (which blow past any constant factor), not allocator jitter.
    pub rss_budget_bytes: u64,
}

pub const ROWS: &[RowSpec] = &[
    RowSpec {
        name: "hopper_kneighbor",
        pes: HOPPER_PES,
        cores_per_node: HOPPER_CORES_PER_NODE,
        quick: true,
        pinned_end_ns: Some(41_484),
        rss_budget_bytes: 2 * 1024 * 1024 * 1024,
    },
    RowSpec {
        name: "million_sparse",
        pes: MILLION_PES,
        cores_per_node: MILLION_CORES_PER_NODE,
        quick: true,
        pinned_end_ns: Some(167_519),
        rss_budget_bytes: 512 * 1024 * 1024,
    },
];

pub fn spec(name: &str) -> Option<&'static RowSpec> {
    ROWS.iter().find(|r| r.name == name)
}

/// One measured row (possibly parsed back from a `--row` subprocess).
#[derive(Debug, Clone)]
pub struct ScaleRow {
    pub name: String,
    pub pes: u32,
    pub cores_per_node: u32,
    pub events: u64,
    pub virtual_end_ns: u64,
    pub pinned_end_ns: Option<u64>,
    pub wall_ns: u64,
    /// `VmHWM` of the process that ran the row, bytes (0 when the
    /// platform has no `/proc/self/status`; budget checks are skipped).
    pub peak_rss_bytes: u64,
    pub rss_budget_bytes: u64,
    /// Materialized per-PE driver pages out of `total_pe_pages`
    /// (sparse rows only; dense workloads materialize everything).
    pub materialized_pe_pages: Option<u64>,
    pub total_pe_pages: u64,
}

impl ScaleRow {
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 * 1e9 / self.wall_ns.max(1) as f64
    }

    pub fn drifted(&self) -> bool {
        self.pinned_end_ns.is_some_and(|p| p != self.virtual_end_ns)
    }

    pub fn over_budget(&self) -> bool {
        self.peak_rss_bytes > 0 && self.peak_rss_bytes > self.rss_budget_bytes
    }

    /// The single-line JSON a `--row` subprocess prints on stdout.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"pes\": {}, \"cores_per_node\": {}, \
             \"events\": {}, \"virtual_end_ns\": {}, \"pinned_end_ns\": {}, \
             \"wall_ns\": {}, \"events_per_sec\": {:.1}, \
             \"peak_rss_bytes\": {}, \"rss_budget_bytes\": {}, \
             \"materialized_pe_pages\": {}, \"total_pe_pages\": {}}}",
            self.name,
            self.pes,
            self.cores_per_node,
            self.events,
            self.virtual_end_ns,
            self.pinned_end_ns
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".into()),
            self.wall_ns,
            self.events_per_sec(),
            self.peak_rss_bytes,
            self.rss_budget_bytes,
            self.materialized_pe_pages
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".into()),
            self.total_pe_pages,
        )
    }

    /// Parse the subprocess line back. Hand-rolled like the rest of the
    /// harness JSON (no serde in this workspace).
    pub fn from_json(json: &str) -> Option<ScaleRow> {
        fn raw<'a>(json: &'a str, key: &str) -> Option<&'a str> {
            let pat = format!("\"{key}\": ");
            let start = json.find(&pat)? + pat.len();
            let rest = &json[start..];
            let end = rest.find([',', '}'])?;
            Some(rest[..end].trim())
        }
        fn num(json: &str, key: &str) -> Option<u64> {
            raw(json, key)?.parse().ok()
        }
        fn opt_num(json: &str, key: &str) -> Option<Option<u64>> {
            let r = raw(json, key)?;
            if r == "null" {
                Some(None)
            } else {
                r.parse().ok().map(Some)
            }
        }
        let name = {
            let r = raw(json, "name")?;
            r.trim_matches('"').to_string()
        };
        Some(ScaleRow {
            name,
            pes: num(json, "pes")? as u32,
            cores_per_node: num(json, "cores_per_node")? as u32,
            events: num(json, "events")?,
            virtual_end_ns: num(json, "virtual_end_ns")?,
            pinned_end_ns: opt_num(json, "pinned_end_ns")?,
            wall_ns: num(json, "wall_ns")?,
            peak_rss_bytes: num(json, "peak_rss_bytes")?,
            rss_budget_bytes: num(json, "rss_budget_bytes")?,
            materialized_pe_pages: opt_num(json, "materialized_pe_pages")?,
            total_pe_pages: num(json, "total_pe_pages")?,
        })
    }
}

/// Peak RSS of the current process, bytes (`VmHWM`). 0 when unreadable.
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Execute one row in-process. Called by the `--row` subprocess; calling
/// it twice in one process would smear `VmHWM` across rows.
pub fn run_row(s: &RowSpec) -> ScaleRow {
    let t0 = Instant::now();
    let (events, virtual_end_ns, materialized_pe_pages) = match s.name {
        "hopper_kneighbor" => {
            // kNeighbor on every PE of the machine: k=1, one ping-sized
            // payload, two iterations — the paper's Fig.-10 exchange, at
            // the full installation's width.
            let (_, rep) = kneighbor_report(&LayerKind::ugni(), s.pes, s.cores_per_node, 1, 512, 2);
            (rep.stats.events, rep.end_time, None)
        }
        "million_sparse" => {
            let (ev, vend, pages) = sparse_relay(s.pes, s.cores_per_node, 2048, 6);
            (ev, vend, Some(pages))
        }
        other => panic!("unknown scale row {other}"),
    };
    ScaleRow {
        name: s.name.to_string(),
        pes: s.pes,
        cores_per_node: s.cores_per_node,
        events,
        virtual_end_ns,
        pinned_end_ns: s.pinned_end_ns,
        wall_ns: t0.elapsed().as_nanos() as u64,
        peak_rss_bytes: peak_rss_bytes(),
        rss_budget_bytes: s.rss_budget_bytes,
        materialized_pe_pages,
        total_pe_pages: (s.pes as u64).div_ceil(PE_PAGE_LEN as u64),
    }
}

/// The sparse workload: `seeds` PEs spread evenly across the machine
/// each start a relay chain that hops `hops` times by a fixed large
/// stride, so the touched set scatters over many nodes while the
/// overwhelming majority of the machine is never woken. All chain state
/// rides in the message payload — no `init_user`, which would be O(PEs)
/// by definition. Returns (events, virtual end, materialized PE pages).
pub fn sparse_relay(num_pes: u32, cores_per_node: u32, seeds: u32, hops: u32) -> (u64, u64, u64) {
    let mut c = LayerKind::ugni().cluster(num_pes, cores_per_node);
    // A large prime stride lands every hop on a different, far-away node.
    let stride: u32 = 600_011 % num_pes;
    let slot = std::sync::Arc::new(std::sync::OnceLock::new());
    let slot2 = slot.clone();
    let h = c.register_handler(move |ctx, env| {
        let left = u32::from_le_bytes(env.payload[..4].try_into().expect("4-byte relay payload"));
        if left > 0 {
            let dst = (ctx.pe() + stride) % num_pes;
            let payload = Bytes::copy_from_slice(&(left - 1).to_le_bytes());
            ctx.send(dst, *slot2.get().expect("handler registered"), payload);
        }
    });
    slot.set(h).expect("single registration");
    let gap = num_pes / seeds;
    for i in 0..seeds {
        c.inject(0, i * gap, h, Bytes::copy_from_slice(&hops.to_le_bytes()));
    }
    let rep = c.run();
    (
        rep.stats.events,
        rep.end_time,
        c.materialized_pe_pages() as u64,
    )
}

/// Whole-suite result (parent process).
#[derive(Debug, Clone)]
pub struct ScaleSuite {
    pub quick: bool,
    pub rows: Vec<ScaleRow>,
}

impl ScaleSuite {
    pub fn drifted(&self) -> Vec<&ScaleRow> {
        self.rows.iter().filter(|r| r.drifted()).collect()
    }

    pub fn over_budget(&self) -> Vec<&ScaleRow> {
        self.rows.iter().filter(|r| r.over_budget()).collect()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Scale suite ({})\n{:<20}{:>12}{:>14}{:>16}{:>14}{:>14}{:>14}{:>16}\n",
            if self.quick { "quick" } else { "full" },
            "row",
            "PEs",
            "events",
            "virtual_end_ns",
            "events/sec",
            "peak_rss_mb",
            "budget_mb",
            "pe_pages",
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<20}{:>12}{:>14}{:>16}{:>14.0}{:>14.1}{:>14.1}{:>16}\n",
                r.name,
                r.pes,
                r.events,
                r.virtual_end_ns,
                r.events_per_sec(),
                r.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                r.rss_budget_bytes as f64 / (1024.0 * 1024.0),
                match r.materialized_pe_pages {
                    Some(m) => format!("{}/{}", m, r.total_pe_pages),
                    None => format!("{}/{}", r.total_pe_pages, r.total_pe_pages),
                },
            ));
        }
        out
    }

    /// One appendable history row per measured row, keyed
    /// `(suite, row, rev)` — the memory trajectory is the point, so peak
    /// RSS rides along with throughput.
    pub fn history_records(&self, rev: &str) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"suite\": \"scale\", \"row\": \"{}\", \"rev\": \"{}\", \
                     \"events_per_sec\": {:.1}, \"peak_rss_bytes\": {}}}",
                    r.name,
                    rev,
                    r.events_per_sec(),
                    r.peak_rss_bytes,
                )
            })
            .collect()
    }

    /// Machine-readable `BENCH_scale.json` contents.
    pub fn to_json_with_history(&self, history: &[String]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"suite\": \"scale\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&r.to_json());
            out.push_str(if i + 1 == self.rows.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"history\": [\n");
        for (i, h) in history.iter().enumerate() {
            out.push_str("    ");
            out.push_str(h);
            out.push_str(if i + 1 == history.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_json_round_trips() {
        let r = ScaleRow {
            name: "hopper_kneighbor".into(),
            pes: HOPPER_PES,
            cores_per_node: 24,
            events: 123,
            virtual_end_ns: 456,
            pinned_end_ns: None,
            wall_ns: 789,
            peak_rss_bytes: 1024,
            rss_budget_bytes: 2048,
            materialized_pe_pages: Some(7),
            total_pe_pages: 2394,
        };
        let back = ScaleRow::from_json(&r.to_json()).expect("parses");
        assert_eq!(back.name, r.name);
        assert_eq!(back.pes, r.pes);
        assert_eq!(back.events, r.events);
        assert_eq!(back.virtual_end_ns, r.virtual_end_ns);
        assert_eq!(back.pinned_end_ns, r.pinned_end_ns);
        assert_eq!(back.peak_rss_bytes, r.peak_rss_bytes);
        assert_eq!(back.materialized_pe_pages, r.materialized_pe_pages);
    }

    #[test]
    fn sparse_relay_touches_a_sliver() {
        // Tiny machine, same code path: the touched page count must be
        // bounded by the chain footprint, not the machine size.
        let (events, vend, pages) = sparse_relay(64 * 1024, 16, 8, 3);
        assert!(events > 0 && vend > 0);
        assert!(pages < 64, "8 chains x 3 hops touched {pages} pages");
    }

    #[test]
    fn vmhwm_reads_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
