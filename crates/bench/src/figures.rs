//! One function per figure of the paper. Each returns a
//! [`sim_core::stats::Figure`] whose rendering is the deliverable.

use crate::Effort;
use charm_apps::common::LayerKind;
use charm_apps::kneighbor::kneighbor_iteration_time;
use charm_apps::nqueens::{self, NqConfig, WorkMode};
use charm_apps::one_to_all::one_to_all_latency;
use charm_apps::pingpong::{
    charm_bandwidth, charm_one_way, raw_mpi_one_way, raw_transaction_latency, raw_ugni_one_way,
};
use gemini_net::{GeminiParams, Mechanism, RdmaOp};
use lrts_ugni::{IntraNode, UgniConfig};
use mpi_sim::MpiConfig;
use sim_core::stats::{pow2_sizes, Figure, Series};
use sim_core::time::to_us;

fn params() -> GeminiParams {
    GeminiParams::hopper()
}

/// Fig. 1: ping-pong one-way latency — uGNI vs MPI vs MPI-based CHARM++.
pub fn fig01(e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 1: one-way latency in uGNI, MPI and MPI-based CHARM++",
        "bytes",
        "us",
    );
    let sizes = pow2_sizes(32, 64 * 1024);
    let mut ugni = Series::new("uGNI");
    let mut mpi = Series::new("pure MPI");
    let mut charm_mpi = Series::new("MPI-based CHARM++");
    for &b in &sizes {
        ugni.push(b as f64, to_us(raw_ugni_one_way(&params(), b)));
        mpi.push(
            b as f64,
            raw_mpi_one_way(&MpiConfig::default(), b, e.pingpong_iters as u32, true) / 1000.0,
        );
        charm_mpi.push(
            b as f64,
            charm_one_way(&LayerKind::mpi(), 1, b as usize, e.pingpong_iters, false) / 1000.0,
        );
    }
    f.add(ugni);
    f.add(mpi);
    f.add(charm_mpi);
    f
}

/// Fig. 4: one-way latency of FMA/BTE PUT/GET raw transactions.
pub fn fig04(_e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 4: one-way latency using FMA/RDMA(BTE) Put/Get",
        "bytes",
        "us",
    );
    let sizes = pow2_sizes(8, 4 << 20);
    for (name, mech, op) in [
        ("FMA Put", Mechanism::Fma, RdmaOp::Put),
        ("FMA Get", Mechanism::Fma, RdmaOp::Get),
        ("BTE Put", Mechanism::Bte, RdmaOp::Put),
        ("BTE Get", Mechanism::Bte, RdmaOp::Get),
    ] {
        let mut s = Series::new(name);
        for &b in &sizes {
            s.push(
                b as f64,
                to_us(raw_transaction_latency(&params(), b, mech, op)),
            );
        }
        f.add(s);
    }
    f
}

/// Fig. 6: the *initial* uGNI design (no memory pool) vs MPI-based
/// CHARM++ vs pure uGNI.
pub fn fig06(e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 6: one-way latency, initial uGNI-based CHARM++ (no memory pool)",
        "bytes",
        "us",
    );
    let sizes = pow2_sizes(32, 1 << 20);
    let mut initial = Series::new("uGNI-based CHARM++ (initial)");
    let mut mpi_charm = Series::new("MPI-based CHARM++");
    let mut pure = Series::new("pure uGNI");
    let initial_cfg = LayerKind::Ugni(UgniConfig::initial());
    for &b in &sizes {
        initial.push(
            b as f64,
            charm_one_way(&initial_cfg, 1, b as usize, e.pingpong_iters, false) / 1000.0,
        );
        mpi_charm.push(
            b as f64,
            charm_one_way(&LayerKind::mpi(), 1, b as usize, e.pingpong_iters, false) / 1000.0,
        );
        pure.push(b as f64, to_us(raw_ugni_one_way(&params(), b)));
    }
    f.add(initial);
    f.add(mpi_charm);
    f.add(pure);
    f
}

/// Fig. 8a: with vs without persistent messages.
pub fn fig08a(e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 8a: single message latency w/ and w/o persistent messages",
        "bytes",
        "us",
    );
    let sizes = pow2_sizes(1024, 512 * 1024);
    let k = LayerKind::ugni();
    let mut without = Series::new("w/o persistent");
    let mut with = Series::new("w/ persistent");
    let mut pure = Series::new("pure uGNI");
    for &b in &sizes {
        without.push(
            b as f64,
            charm_one_way(&k, 1, b as usize, e.pingpong_iters, false) / 1000.0,
        );
        with.push(
            b as f64,
            charm_one_way(&k, 1, b as usize, e.pingpong_iters, true) / 1000.0,
        );
        pure.push(b as f64, to_us(raw_ugni_one_way(&params(), b)));
    }
    f.add(without);
    f.add(with);
    f.add(pure);
    f
}

/// Fig. 8b: with vs without the memory pool.
pub fn fig08b(e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 8b: single message latency w/ and w/o memory pool",
        "bytes",
        "us",
    );
    let sizes = pow2_sizes(1024, 512 * 1024);
    let without_cfg = LayerKind::Ugni(UgniConfig::optimized().with_mempool(false));
    let with_cfg = LayerKind::ugni();
    let mut without = Series::new("w/o memory pool");
    let mut with = Series::new("w/ memory pool");
    let mut pure = Series::new("pure uGNI");
    for &b in &sizes {
        without.push(
            b as f64,
            charm_one_way(&without_cfg, 1, b as usize, e.pingpong_iters, false) / 1000.0,
        );
        with.push(
            b as f64,
            charm_one_way(&with_cfg, 1, b as usize, e.pingpong_iters, false) / 1000.0,
        );
        pure.push(b as f64, to_us(raw_ugni_one_way(&params(), b)));
    }
    f.add(without);
    f.add(with);
    f.add(pure);
    f
}

/// Fig. 8c: intra-node strategies.
pub fn fig08c(e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 8c: intra-node latency, pxshm double/single copy vs MPI vs NIC loopback",
        "bytes",
        "us",
    );
    let sizes = pow2_sizes(1024, 512 * 1024);
    let double =
        LayerKind::Ugni(UgniConfig::optimized().with_intranode(IntraNode::PxshmDoubleCopy));
    let single =
        LayerKind::Ugni(UgniConfig::optimized().with_intranode(IntraNode::PxshmSingleCopy));
    let loopback =
        LayerKind::Ugni(UgniConfig::optimized().with_intranode(IntraNode::NetworkLoopback));
    let mut s_double = Series::new("pxshm double copy");
    let mut s_single = Series::new("pxshm single copy");
    let mut s_mpi = Series::new("pure MPI");
    let mut s_loop = Series::new("original (NIC loopback)");
    for &b in &sizes {
        s_double.push(
            b as f64,
            charm_one_way(&double, 2, b as usize, e.pingpong_iters, false) / 1000.0,
        );
        s_single.push(
            b as f64,
            charm_one_way(&single, 2, b as usize, e.pingpong_iters, false) / 1000.0,
        );
        // Pure MPI intra-node: 2 ranks on one node.
        s_mpi.push(b as f64, {
            let cfg = MpiConfig::default();
            let mut m = mpi_sim::MpiSim::new(cfg, 2, 2);
            let payload = bytes::Bytes::from(vec![0u8; b as usize]);
            let sb = m.fresh_buf(0);
            let rb = m.fresh_buf(1);
            let mut t = 0;
            let iters = e.pingpong_iters.max(4);
            for _ in 0..iters {
                for dir in 0..2u32 {
                    let (s, d) = if dir == 0 { (0, 1) } else { (1, 0) };
                    let fx = m.isend(t, s, d, 0, payload.clone(), sb);
                    let wake = fx.wakes[0].1;
                    let out = m.recv(wake, d, None, None, rb).expect("recv");
                    t = out.done_at;
                }
            }
            t as f64 / (2.0 * iters as f64) / 1000.0
        });
        s_loop.push(
            b as f64,
            charm_one_way(&loopback, 2, b as usize, e.pingpong_iters, false) / 1000.0,
        );
    }
    f.add(s_double);
    f.add(s_single);
    f.add(s_mpi);
    f.add(s_loop);
    f
}

/// Fig. 9a: the five latency curves.
pub fn fig09a(e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 9a: one-way latency, all five configurations",
        "bytes",
        "us",
    );
    let sizes = pow2_sizes(8, 1 << 20);
    let mut s_ugni_charm = Series::new("uGNI-based CHARM++");
    let mut s_mpi_charm = Series::new("MPI-based CHARM++");
    let mut s_mpi_same = Series::new("MPI (same buffer)");
    let mut s_mpi_diff = Series::new("MPI (diff buffers)");
    let mut s_pure = Series::new("pure uGNI");
    for &b in &sizes {
        s_ugni_charm.push(
            b as f64,
            charm_one_way(&LayerKind::ugni(), 1, b as usize, e.pingpong_iters, false) / 1000.0,
        );
        s_mpi_charm.push(
            b as f64,
            charm_one_way(&LayerKind::mpi(), 1, b as usize, e.pingpong_iters, false) / 1000.0,
        );
        s_mpi_same.push(
            b as f64,
            raw_mpi_one_way(&MpiConfig::default(), b, e.pingpong_iters as u32, true) / 1000.0,
        );
        s_mpi_diff.push(
            b as f64,
            raw_mpi_one_way(&MpiConfig::default(), b, e.pingpong_iters as u32, false) / 1000.0,
        );
        s_pure.push(b as f64, to_us(raw_ugni_one_way(&params(), b)));
    }
    f.add(s_ugni_charm);
    f.add(s_mpi_charm);
    f.add(s_mpi_same);
    f.add(s_mpi_diff);
    f.add(s_pure);
    f
}

/// Fig. 9b: bandwidth, uGNI-based vs MPI-based CHARM++.
pub fn fig09b(_e: &Effort) -> Figure {
    let mut f = Figure::new("Fig 9b: bandwidth comparison", "bytes", "MB/s");
    let sizes = pow2_sizes(16 * 1024, 4 << 20);
    let mut u = Series::new("uGNI-based CHARM++");
    let mut m = Series::new("MPI-based CHARM++");
    for &b in &sizes {
        u.push(
            b as f64,
            charm_bandwidth(&LayerKind::ugni(), b as usize, 8, 5),
        );
        m.push(
            b as f64,
            charm_bandwidth(&LayerKind::mpi(), b as usize, 8, 5),
        );
    }
    f.add(u);
    f.add(m);
    f
}

/// Fig. 9c: one-to-all latency on 16 nodes.
pub fn fig09c(_e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 9c: one-to-all round latency on 16 nodes",
        "bytes",
        "us",
    );
    let sizes = pow2_sizes(32, 1 << 20);
    let mut u = Series::new("uGNI-based CHARM++");
    let mut m = Series::new("MPI-based CHARM++");
    for &b in &sizes {
        u.push(
            b as f64,
            one_to_all_latency(&LayerKind::ugni(), 16, 1, b as usize, 5) / 1000.0,
        );
        m.push(
            b as f64,
            one_to_all_latency(&LayerKind::mpi(), 16, 1, b as usize, 5) / 1000.0,
        );
    }
    f.add(u);
    f.add(m);
    f
}

/// Fig. 10: kNeighbor iteration time, 3 cores on 3 nodes, k = 1.
pub fn fig10(_e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 10: kNeighbor per-iteration time (3 cores / 3 nodes, k=1)",
        "bytes",
        "us",
    );
    let sizes = pow2_sizes(32, 1 << 20);
    let mut u = Series::new("uGNI-based CHARM++");
    let mut m = Series::new("MPI-based CHARM++");
    for &b in &sizes {
        u.push(
            b as f64,
            kneighbor_iteration_time(&LayerKind::ugni(), 3, 1, 1, b as usize, 10) / 1000.0,
        );
        m.push(
            b as f64,
            kneighbor_iteration_time(&LayerKind::mpi(), 3, 1, 1, b as usize, 10) / 1000.0,
        );
    }
    f.add(u);
    f.add(m);
    f
}

/// Fig. 11: 17-Queens strong-scaling speedup.
pub fn fig11(e: &Effort) -> Figure {
    let mut f = Figure::new(
        "Fig 11: 17-Queens speedup (modeled work, calibrated to Table I)",
        "cores",
        "speedup",
    );
    let n = 17;
    let seq = nqueens::calibrated_seq_ns(n);
    let cores: Vec<u32> = if e.full_scale {
        vec![32, 64, 128, 256, 512, 1024, 2048, 3840]
    } else {
        vec![32, 64]
    };
    // Grain mapping (see tables.rs): our full prefix enumeration reaches
    // the paper's task counts (~123K / ~15K for N=17) at thresholds 5 / 4,
    // standing in for the paper's "threshold 7" / "threshold 6".
    let (thr_u, thr_m) = if e.full_scale { (5, 4) } else { (4, 3) };
    let mut u = Series::new("uGNI-based (fine grain)");
    let mut m = Series::new("MPI-based (coarse grain)");
    for &c in &cores {
        let cfg7 = NqConfig {
            n,
            threshold: thr_u,
            mode: WorkMode::Modeled {
                total_seq_ns: seq,
                alpha: 1.2,
            },
            seed: 11,
        };
        let cfg6 = NqConfig {
            threshold: thr_m,
            ..cfg7.clone()
        };
        let ru = nqueens::run_nqueens(&LayerKind::ugni(), c, 24.min(c), &cfg7);
        let rm = nqueens::run_nqueens(&LayerKind::mpi(), c, 24.min(c), &cfg6);
        u.push(c as f64, seq as f64 / ru.time_ns as f64);
        m.push(c as f64, seq as f64 / rm.time_ns as f64);
    }
    f.add(u);
    f.add(m);
    f
}

/// Fig. 12: 17-Queens time profiles on 384 cores (three configurations).
/// Returns rendered profiles rather than a Figure.
pub fn fig12(e: &Effort) -> String {
    let n = 17;
    let seq = nqueens::calibrated_seq_ns(n);
    let pes = if e.full_scale { 384 } else { 48 };
    let (t_lo, t_hi) = if e.full_scale { (4, 5) } else { (3, 4) };
    let mut out = String::new();
    for (name, layer, threshold) in [
        ("MPI-based, coarse threshold", LayerKind::mpi(), t_lo),
        ("MPI-based, fine threshold", LayerKind::mpi(), t_hi),
        ("uGNI-based, fine threshold", LayerKind::ugni(), t_hi),
    ] {
        let cfg = NqConfig {
            n,
            threshold,
            mode: WorkMode::Modeled {
                total_seq_ns: seq,
                alpha: 1.2,
            },
            seed: 12,
        };
        let (r, profile) = nqueens::run_nqueens_traced(&layer, pes, 24, &cfg, 20_000_000);
        out.push_str(&format!(
            "## Fig 12: {name} on {pes} cores\ntotal {:.1} ms, tasks {}, utilization busy {:.1}% ovhd {:.1}% idle {:.1}%\n{}\n",
            sim_core::time::to_ms(r.time_ns),
            r.tasks,
            r.utilization.0 * 100.0,
            r.utilization.1 * 100.0,
            r.utilization.2 * 100.0,
            profile
        ));
    }
    out
}

/// Fig. 13: NAMD-proxy weak scaling (ms/step for the three systems).
pub fn fig13(e: &Effort) -> Figure {
    use charm_apps::minimd::{run_minimd, MdConfig, System};
    let mut f = Figure::new(
        "Fig 13: miniMD weak scaling, ms/step (PME every step)",
        "cores",
        "ms/step",
    );
    let systems: Vec<(System, u32)> = if e.full_scale {
        vec![
            (System::Iapp, 960),
            (System::Dhfr, 3840),
            (System::Apoa1, 7680),
        ]
    } else {
        vec![(System::Iapp, 96), (System::Dhfr, 384)]
    };
    let mut u = Series::new("uGNI-based");
    let mut m = Series::new("MPI-based");
    for (sys, cores) in systems {
        let cfg = MdConfig::for_system(sys, e.md_steps);
        let ru = run_minimd(&LayerKind::ugni(), cores, 24, &cfg);
        let rm = run_minimd(&LayerKind::mpi(), cores, 24, &cfg);
        u.push(cores as f64, ru.ms_per_step);
        m.push(cores as f64, rm.ms_per_step);
    }
    f.add(u);
    f.add(m);
    f
}

/// Chaos sweep (beyond the paper): 64 KiB ping-pong on the uGNI machine
/// layer while the fabric drops/corrupts an increasing fraction of
/// transactions. Reports the latency the application still observes (every
/// ping-pong completes — recovery is exactly-once) and the share of total
/// PE-time spent on recovery.
pub fn fault_sweep(e: &Effort) -> Figure {
    use charm_apps::pingpong::charm_one_way_with_recovery;
    use gemini_net::FaultPlan;

    let mut f = Figure::new(
        "Fault sweep: 64 KiB pingpong vs transaction drop probability",
        "drop probability",
        "us / fraction",
    );
    let mut lat = Series::new("completed one-way latency (us)");
    let mut rec = Series::new("recovery fraction of work time");
    for &p in &[0.0, 1e-4, 1e-3, 1e-2] {
        let mut plan = FaultPlan::uniform_drop(0xFA57, p);
        plan.smsg_corrupt = p;
        plan.fma_corrupt = p;
        plan.bte_corrupt = p;
        let layer = LayerKind::ugni().with_fault(plan);
        let (ns, frac) = charm_one_way_with_recovery(&layer, 1, 64 * 1024, e.pingpong_iters, false);
        lat.push(p, ns / 1000.0);
        rec.push(p, frac);
    }
    f.add(lat);
    f.add(rec);
    f
}

/// Crash sweep (beyond the paper): Jacobi2D with a mid-run node crash and
/// restart, swept over the buddy-checkpoint cadence. Reports the recovery
/// latency (extra virtual time the crashed run pays over the fault-free
/// one: detection + restore + rollback-replay + checkpoint waves), the
/// PE-time charged to checkpoint waves, and how many waves completed. The
/// tension the sweep shows is the classic one: tighter cadence costs more
/// checkpoint time but leaves less work to replay after the crash.
pub fn crash_sweep(e: &Effort) -> Figure {
    use charm_apps::jacobi2d::{run_jacobi, run_jacobi_ft_traced, JacobiConfig};
    use charm_rt::prelude::FtConfig;
    use gemini_net::{FaultPlan, NodeCrashWindow};

    let cfg = if e.full_scale {
        JacobiConfig {
            n: 32,
            blocks: 4,
            iters: 40,
        }
    } else {
        JacobiConfig {
            n: 24,
            blocks: 4,
            iters: 20,
        }
    };
    let clean = run_jacobi(&LayerKind::ugni(), 8, 4, &cfg);
    let mut f = Figure::new(
        "Crash sweep: Jacobi2D node crash + restart vs checkpoint cadence",
        "checkpoint cadence (us)",
        "us / waves",
    );
    let mut lat = Series::new("recovery latency vs fault-free (us)");
    let mut cost = Series::new("checkpoint PE-time (us)");
    let mut waves = Series::new("checkpoint waves completed");
    for &period in &[30_000u64, 60_000, 120_000] {
        let mut plan = FaultPlan::default();
        plan.node_crash.push(NodeCrashWindow {
            node: 1,
            at_ns: 80_000,
            restart_after_ns: Some(40_000),
        });
        let layer = LayerKind::ugni().with_fault(plan);
        let ftc = FtConfig {
            hb_period: 20_000,
            hb_timeout: 150_000,
            ckpt_period: period,
            ..FtConfig::default()
        };
        let (r, rep, charge) = run_jacobi_ft_traced(&layer, 8, 4, &cfg, ftc);
        debug_assert_eq!(rep.recoveries, 1);
        debug_assert_eq!(r.grid, clean.grid);
        let x = period as f64 / 1000.0;
        lat.push(x, r.time_ns.saturating_sub(clean.time_ns) as f64 / 1000.0);
        cost.push(x, charge.checkpoint_ns as f64 / 1000.0);
        waves.push(x, rep.ckpts as f64);
    }
    f.add(lat);
    f.add(cost);
    f.add(waves);
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_shapes_hold() {
        let f = fig01(&Effort::quick());
        assert_eq!(f.series.len(), 3);
        // At every size: uGNI <= MPI <= charm-MPI.
        for i in 0..f.series[0].points.len() {
            let u = f.series[0].points[i].1;
            let m = f.series[1].points[i].1;
            let c = f.series[2].points[i].1;
            assert!(u <= m * 1.05, "size idx {i}: uGNI {u} vs MPI {m}");
            assert!(m <= c * 1.05, "size idx {i}: MPI {m} vs charm-MPI {c}");
        }
    }

    #[test]
    fn fig04_crossover_present() {
        let f = fig04(&Effort::quick());
        let fma_put = &f.series[0];
        let bte_put = &f.series[2];
        // FMA wins at 8 bytes, BTE wins at 4 MB.
        assert!(fma_put.points.first().unwrap().1 < bte_put.points.first().unwrap().1);
        assert!(bte_put.points.last().unwrap().1 < fma_put.points.last().unwrap().1);
    }

    #[test]
    fn fault_sweep_shapes_hold() {
        let f = fault_sweep(&Effort::quick());
        let lat = &f.series[0].points;
        let rec = &f.series[1].points;
        // Fault-free endpoint: zero recovery, and every run completes.
        assert_eq!(rec[0].1, 0.0);
        assert!(lat.iter().all(|&(_, us)| us > 0.0));
        // 1% faults must both cost latency and show up as recovery time.
        assert!(rec.last().unwrap().1 > 0.0);
        assert!(lat.last().unwrap().1 > lat[0].1);
    }

    #[test]
    fn crash_sweep_shapes_hold() {
        let f = crash_sweep(&Effort::quick());
        let lat = &f.series[0].points;
        let cost = &f.series[1].points;
        let waves = &f.series[2].points;
        // Every cadence recovers, and the crash always costs virtual time.
        assert!(lat.iter().all(|&(_, us)| us > 0.0), "lat: {lat:?}");
        // At least one wave completes at every cadence (there is always a
        // rollback point), and the tightest cadence both runs the most
        // waves and charges the most checkpoint PE-time.
        assert!(waves.iter().all(|&(_, w)| w >= 1.0), "waves: {waves:?}");
        assert!(waves.first().unwrap().1 >= waves.last().unwrap().1);
        assert!(cost.iter().all(|&(_, us)| us > 0.0), "cost: {cost:?}");
        assert!(cost.first().unwrap().1 >= cost.last().unwrap().1);
    }

    #[test]
    fn fig08b_pool_wins_large() {
        let f = fig08b(&Effort::quick());
        let without = f.series[0].points.last().unwrap().1;
        let with = f.series[1].points.last().unwrap().1;
        assert!(with < without * 0.75, "pool {with} vs none {without}");
    }
}
