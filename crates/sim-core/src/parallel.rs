//! Conservative parallel discrete-event execution primitives.
//!
//! This module and [`crate::sync`] are the only places in the simulation
//! crates where OS threads and locks are allowed (enforced by the
//! `thread-outside-parallel` lint rule). It provides the pieces a driver
//! needs to run partitioned simulations with bounded time windows while
//! reproducing the sequential engine's `(time, push-sequence)` event
//! order bit for bit:
//!
//! * [`EvKey`] — a plain `(time, ord)` pair, `Copy` and heap-free. The
//!   sequential engine orders same-time events by a global push counter;
//!   a parallel phase cannot draw from a shared counter without racing,
//!   so the driver gives each partition a *partition-local* counter
//!   starting at the phase epoch: keys with `ord < epoch` are global
//!   (pre-phase) positions, keys with `ord >= epoch` are in-phase
//!   positions local to one partition. Within a partition the local
//!   order equals the canonical order (a partition executes its own
//!   events in canonical order and receives no cross-partition pushes
//!   mid-phase); *across* partitions the driver compares in-phase keys
//!   structurally through its per-partition push-origin log (see
//!   `canon_cmp` in the driver and DESIGN.md §10). Every barrier
//!   flattens pending keys back to global positions, so in-phase keys
//!   never outlive their phase.
//! * [`KeyedQueue`] — a min-heap ordered by [`EvKey`], used for
//!   partition queues and the serial queue during parallel runs.
//! * [`run_pool`] — alternates a serial phase (main thread, exclusive
//!   access) with a parallel phase (one worker per partition group) on
//!   the persistent [`crate::sync::WorkerPool`], and reports the
//!   barrier-wait nanoseconds the run spent synchronizing.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

/// Canonical event key: virtual time plus a push-order position. `Copy`
/// on purpose — the worker hot path moves millions of these and must not
/// touch the allocator.
///
/// The derived lexicographic order (`t`, then `ord`) is the full
/// canonical order whenever the two keys' positions are drawn from the
/// same counter: two global keys, or two in-phase keys of the same
/// partition. In-phase keys of *different* partitions are numerically
/// incomparable (each partition counts from the shared epoch); only the
/// driver, which logs every in-phase push's parent, can order those —
/// and it re-flattens all surviving keys to global positions at every
/// barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EvKey {
    pub t: Time,
    pub ord: u64,
}

impl EvKey {
    #[inline]
    pub fn flat(t: Time, ord: u64) -> Self {
        EvKey { t, ord }
    }
}

struct KEntry<E> {
    key: EvKey,
    ev: E,
}
impl<E> PartialEq for KEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for KEntry<E> {}
impl<E> PartialOrd for KEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for KEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Min-heap of events ordered by explicit [`EvKey`]s (unlike
/// [`crate::queue::EventQueue`], which assigns its own sequence numbers).
pub struct KeyedQueue<E> {
    heap: BinaryHeap<Reverse<KEntry<E>>>,
}

impl<E> Default for KeyedQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> KeyedQueue<E> {
    pub fn new() -> Self {
        KeyedQueue {
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    pub fn push(&mut self, key: EvKey, ev: E) {
        self.heap.push(Reverse(KEntry { key, ev }));
    }

    #[inline]
    pub fn pop(&mut self) -> Option<(EvKey, E)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.ev))
    }

    #[inline]
    pub fn peek_key(&self) -> Option<&EvKey> {
        self.heap.peek().map(|Reverse(e)| &e.key)
    }

    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.key.t)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain every pending event in key order (used by barrier
    /// flattening; the caller re-sorts canonically when the queue may
    /// hold in-phase keys of several partitions).
    pub fn drain_sorted(&mut self) -> Vec<(EvKey, E)> {
        std::mem::take(&mut self.heap)
            .into_sorted_vec()
            .into_iter()
            .rev()
            .map(|Reverse(e)| (e.key, e.ev))
            .collect()
    }
}

/// Contiguous, balanced ranges: split `0..units` into `parts` blocks whose
/// sizes differ by at most one. `parts` is clamped to `units`.
pub fn partition_ranges(units: u32, parts: u32) -> Vec<std::ops::Range<u32>> {
    let parts = parts.clamp(1, units.max(1));
    (0..parts)
        .map(|p| {
            let lo = (p as u64 * units as u64 / parts as u64) as u32;
            let hi = ((p as u64 + 1) * units as u64 / parts as u64) as u32;
            lo..hi
        })
        .collect()
}

/// Alternate serial and parallel phases over partitioned state `P`.
///
/// `serial(&mut parts)` runs on the calling thread with exclusive access
/// to every partition; it returns the next window end `Some(p_end)` or
/// `None` when the run is finished. `phase(&mut p, p_end)` then runs once
/// per partition on the calling thread's persistent
/// [`crate::sync::WorkerPool`] (partitions are distributed round-robin
/// over `workers` threads; with `workers <= 1` everything runs inline).
/// Worker panics are re-raised on the caller.
///
/// Returns the partitions plus the nanoseconds this run spent waiting at
/// pool barriers (the `sync_overhead_ns` meter; `0` on the inline path).
pub fn run_pool<P: Send>(
    parts: Vec<P>,
    workers: usize,
    phase: impl Fn(&mut P, Time) + Sync,
    mut serial: impl FnMut(&mut Vec<P>) -> Option<Time>,
) -> (Vec<P>, u64) {
    let mut parts = parts;
    if workers <= 1 || parts.len() <= 1 {
        while let Some(p_end) = serial(&mut parts) {
            for p in parts.iter_mut() {
                phase(p, p_end);
            }
        }
        return (parts, 0);
    }

    let n = parts.len();
    let workers = workers.min(n);
    let slots: Vec<Mutex<Option<P>>> = parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let (out, sync_ns) = crate::sync::with_pool(workers, |pool| {
        let wait0 = pool.wait_ns();
        let out = loop {
            // Serial phase: take every partition out of its slot so the
            // main thread has plain `&mut` access with no locks held.
            // A panicking worker poisons its slot; the partition is
            // still there and the payload is re-raised below, so poison
            // is not an error here.
            let mut parts: Vec<P> = slots
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("partition present")
                })
                .collect();
            if panic_box
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_some()
            {
                break parts;
            }
            match serial(&mut parts) {
                None => break parts,
                Some(p_end) => {
                    for (slot, p) in slots.iter().zip(parts) {
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(p);
                    }
                    pool.round(&|w: usize| {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            for slot in slots.iter().skip(w).step_by(workers) {
                                let mut g = slot.lock().unwrap_or_else(|e| e.into_inner());
                                if let Some(p) = g.as_mut() {
                                    phase(p, p_end);
                                }
                            }
                        }));
                        if let Err(e) = r {
                            let mut g = panic_box.lock().unwrap_or_else(|e| e.into_inner());
                            if g.is_none() {
                                *g = Some(e);
                            }
                        }
                    });
                }
            }
        };
        (out, pool.wait_ns().saturating_sub(wait0))
    });
    if let Some(e) = panic_box.lock().unwrap_or_else(|e| e.into_inner()).take() {
        std::panic::resume_unwind(e);
    }
    (out, sync_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_order_by_time_then_position() {
        let a = EvKey::flat(5, 0);
        let b = EvKey::flat(5, 1);
        let c = EvKey::flat(4, 9);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn epoch_split_orders_pre_phase_keys_first() {
        // The driver hands every partition local counters starting at the
        // phase epoch, so any surviving global key (ord < epoch) sorts
        // before every in-phase key of the same time — by plain value.
        let epoch = 10u64;
        let pre = EvKey::flat(5, epoch - 1);
        let in_phase = EvKey::flat(5, epoch);
        assert!(pre < in_phase);
        // Time still dominates.
        assert!(EvKey::flat(4, 99) < in_phase);
        assert!(in_phase < EvKey::flat(6, 0));
    }

    #[test]
    fn keyed_queue_pops_in_key_order() {
        let mut q = KeyedQueue::new();
        q.push(EvKey::flat(5, 2), "c");
        q.push(EvKey::flat(5, 1), "b");
        q.push(EvKey::flat(3, 9), "a");
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn drain_sorted_is_key_order() {
        let mut q = KeyedQueue::new();
        for (t, o, v) in [(9, 1, 3), (2, 5, 0), (9, 0, 2), (4, 0, 1)] {
            q.push(EvKey::flat(t, o), v);
        }
        let vals: Vec<i32> = q.drain_sorted().into_iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn partition_ranges_are_contiguous_and_balanced() {
        for units in 1..40u32 {
            for parts in 1..10u32 {
                let rs = partition_ranges(units, parts);
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, units);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<u32> = rs.iter().map(|r| r.end - r.start).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn run_pool_alternates_serial_and_parallel_phases() {
        // Each partition accumulates the window ends it saw; the serial
        // closure drives three windows then stops.
        let parts: Vec<(u32, Vec<Time>)> = (0..5).map(|i| (i, Vec::new())).collect();
        for workers in [1usize, 2, 4, 8] {
            let mut windows = vec![10u64, 20, 30];
            let (out, _sync_ns) = run_pool(
                parts.clone(),
                workers,
                |p, end| p.1.push(end),
                move |_parts| {
                    if windows.is_empty() {
                        None
                    } else {
                        Some(windows.remove(0))
                    }
                },
            );
            assert_eq!(out.len(), 5);
            for (i, seen) in &out {
                assert_eq!(seen, &vec![10, 20, 30], "partition {i} workers {workers}");
            }
        }
    }

    #[test]
    fn run_pool_serial_phase_sees_parallel_mutations() {
        // Workers increment; serial sums and stops at a threshold.
        let parts: Vec<u64> = vec![0; 4];
        let (out, _) = run_pool(
            parts,
            3,
            |p, _end| *p += 1,
            |parts| {
                let total: u64 = parts.iter().sum();
                if total >= 12 {
                    None
                } else {
                    Some(total)
                }
            },
        );
        assert_eq!(out.iter().sum::<u64>(), 12);
    }

    #[test]
    fn run_pool_meters_sync_overhead() {
        // A phase that does real (wall-clock) work forces the coordinator
        // to wait at the completion barrier, so the meter must be nonzero
        // on the pooled path and zero inline.
        let slow = |p: &mut u64, _end: Time| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            *p += 1;
        };
        fn stop_after_two() -> impl FnMut(&mut Vec<u64>) -> Option<Time> {
            let mut rounds = 0u32;
            move |_parts| {
                rounds += 1;
                (rounds <= 2).then_some(1u64)
            }
        }
        let (_, inline_ns) = run_pool(vec![0u64; 2], 1, slow, stop_after_two());
        assert_eq!(inline_ns, 0);
        let (_, pooled_ns) = run_pool(vec![0u64; 2], 2, slow, stop_after_two());
        assert!(pooled_ns > 0, "pooled run must record barrier waits");
    }

    #[test]
    fn run_pool_propagates_worker_panics() {
        let r = std::panic::catch_unwind(|| {
            run_pool(
                vec![0u32, 1, 2],
                2,
                |p, _end| {
                    if *p == 1 {
                        panic!("boom from partition 1");
                    }
                },
                {
                    let mut rounds = 0;
                    move |_parts| {
                        rounds += 1;
                        if rounds > 3 {
                            None
                        } else {
                            Some(rounds)
                        }
                    }
                },
            )
        });
        let err = r.expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom"), "got: {msg}");
    }

    #[test]
    fn run_pool_reuses_the_pool_across_invocations() {
        // Two back-to-back pooled runs from the same thread must land on
        // the same persistent pool (same creation stamp).
        let run = || {
            let mut rounds = 0;
            run_pool(
                vec![0u64; 3],
                2,
                |p, _| *p += 1,
                move |_| {
                    rounds += 1;
                    (rounds <= 1).then_some(1u64)
                },
            )
        };
        run();
        let stamp_a = crate::sync::with_pool(2, |p| p.stamp());
        run();
        let stamp_b = crate::sync::with_pool(2, |p| p.stamp());
        assert_eq!(stamp_a, stamp_b, "pool must persist across run_pool calls");
    }
}
