//! Conservative parallel discrete-event execution primitives.
//!
//! This module is the only place in the simulation crates where OS threads
//! and locks are allowed (enforced by the `no-thread-outside-parallel` lint
//! rule). It provides the pieces a driver needs to run partitioned
//! simulations with bounded time windows while reproducing the sequential
//! engine's `(time, push-sequence)` event order bit for bit:
//!
//! * [`EvKey`] / [`PushOrd`] — canonical push-order keys. The sequential
//!   engine orders same-time events by a global push counter; a parallel
//!   phase cannot draw from a shared counter without racing, so events
//!   pushed by worker threads carry a *structural* key `(parent, idx)`:
//!   the key of the event whose execution pushed them, plus the push index
//!   within that execution. Because the canonical execution order of the
//!   parents determines the sequential push order of the children, comparing
//!   these keys reproduces the sequential tie-break exactly (see
//!   DESIGN.md §10 for the proof sketch).
//! * [`KeyedQueue`] — a min-heap ordered by [`EvKey`], used for partition
//!   queues and the serial queue during parallel runs.
//! * [`SpinBarrier`] — a sense-reversing spin barrier for the phase
//!   hand-offs (windows are microseconds of work; parking would dominate).
//! * [`run_pool`] — a `std::thread::scope` worker pool alternating a
//!   serial phase (main thread, exclusive access) with a parallel phase
//!   (one worker per partition group).

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Canonical event key: virtual time plus push order. Total order over all
/// events of one run; equals the sequential engine's `(time, seq)` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvKey {
    pub t: Time,
    pub ord: PushOrd,
}

/// Push-order component of an [`EvKey`].
///
/// `Flat(n)` is a position in the global push counter, assigned while the
/// main thread has exclusive access (initial split, serial phases, barrier
/// flattening). `Child` is assigned by a worker inside a parallel phase:
/// `parent` is the key of the event whose execution performed the push,
/// `idx` the zero-based push index within that execution, and `epoch` the
/// global counter value when the phase started. All `Flat` keys below
/// `epoch` were pushed before the phase (they sort first); all `Flat` keys
/// at or above `epoch` are pushed by later serial phases (they sort after,
/// because the canonical frontier only advances). Barriers re-flatten every
/// pending key, so `Child` chains never outlive their phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushOrd {
    Flat(u64),
    Child {
        epoch: u64,
        parent: Arc<EvKey>,
        idx: u32,
    },
}

impl EvKey {
    #[inline]
    pub fn flat(t: Time, ord: u64) -> Self {
        EvKey {
            t,
            ord: PushOrd::Flat(ord),
        }
    }

    #[inline]
    pub fn child(t: Time, epoch: u64, parent: &Arc<EvKey>, idx: u32) -> Self {
        EvKey {
            t,
            ord: PushOrd::Child {
                epoch,
                parent: Arc::clone(parent),
                idx,
            },
        }
    }
}

impl Ord for PushOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        match (self, other) {
            (PushOrd::Flat(a), PushOrd::Flat(b)) => a.cmp(b),
            (PushOrd::Flat(n), PushOrd::Child { epoch, .. }) => {
                // Flats below the phase epoch predate every push of the
                // phase; flats at/above it come from later serial phases.
                if n < epoch {
                    Less
                } else {
                    Greater
                }
            }
            (PushOrd::Child { epoch, .. }, PushOrd::Flat(n)) => {
                if n < epoch {
                    Greater
                } else {
                    Less
                }
            }
            (
                PushOrd::Child {
                    parent: pa,
                    idx: ia,
                    ..
                },
                PushOrd::Child {
                    parent: pb,
                    idx: ib,
                    ..
                },
            ) => {
                // Push order of two in-phase pushes = canonical execution
                // order of their parents, then the in-execution push index.
                pa.cmp(pb).then(ia.cmp(ib))
            }
        }
    }
}
impl PartialOrd for PushOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EvKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t.cmp(&other.t).then_with(|| self.ord.cmp(&other.ord))
    }
}
impl PartialOrd for EvKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct KEntry<E> {
    key: EvKey,
    ev: E,
}
impl<E> PartialEq for KEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for KEntry<E> {}
impl<E> PartialOrd for KEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for KEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Min-heap of events ordered by explicit [`EvKey`]s (unlike
/// [`crate::queue::EventQueue`], which assigns its own sequence numbers).
pub struct KeyedQueue<E> {
    heap: BinaryHeap<Reverse<KEntry<E>>>,
}

impl<E> Default for KeyedQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> KeyedQueue<E> {
    pub fn new() -> Self {
        KeyedQueue {
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    pub fn push(&mut self, key: EvKey, ev: E) {
        self.heap.push(Reverse(KEntry { key, ev }));
    }

    #[inline]
    pub fn pop(&mut self) -> Option<(EvKey, E)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.ev))
    }

    #[inline]
    pub fn peek_key(&self) -> Option<&EvKey> {
        self.heap.peek().map(|Reverse(e)| &e.key)
    }

    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.key.t)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain every pending event in canonical key order (used by barrier
    /// flattening).
    pub fn drain_sorted(&mut self) -> Vec<(EvKey, E)> {
        std::mem::take(&mut self.heap)
            .into_sorted_vec()
            .into_iter()
            .rev()
            .map(|Reverse(e)| (e.key, e.ev))
            .collect()
    }
}

/// Contiguous, balanced ranges: split `0..units` into `parts` blocks whose
/// sizes differ by at most one. `parts` is clamped to `units`.
pub fn partition_ranges(units: u32, parts: u32) -> Vec<std::ops::Range<u32>> {
    let parts = parts.clamp(1, units.max(1));
    (0..parts)
        .map(|p| {
            let lo = (p as u64 * units as u64 / parts as u64) as u32;
            let hi = ((p as u64 + 1) * units as u64 / parts as u64) as u32;
            lo..hi
        })
        .collect()
}

/// Spin barrier for tight phase hand-offs. Tickets increase monotonically,
/// so there is no reset race between consecutive barrier rounds: the
/// arrival ticket identifies the round, and `gen` counts completed rounds.
pub struct SpinBarrier {
    n: usize,
    tickets: AtomicUsize,
    gen: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            tickets: AtomicUsize::new(0),
            gen: AtomicUsize::new(0),
        }
    }

    pub fn wait(&self) {
        let ticket = self.tickets.fetch_add(1, Ordering::AcqRel);
        let round = ticket / self.n;
        if (ticket + 1).is_multiple_of(self.n) {
            // Last arriver of this round: release everyone waiting on it.
            self.gen.store(round + 1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.gen.load(Ordering::Acquire) <= round {
            spins += 1;
            if spins < 1 << 12 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Alternate serial and parallel phases over partitioned state `P`.
///
/// `serial(&mut parts)` runs on the calling thread with exclusive access to
/// every partition; it returns the next window end `Some(p_end)` or `None`
/// when the run is finished. `phase(&mut p, p_end)` then runs once per
/// partition on a `std::thread::scope` worker pool (partitions are
/// distributed round-robin over `workers` threads; with `workers <= 1`
/// everything runs inline). Worker panics are re-raised on the caller.
pub fn run_pool<P: Send>(
    parts: Vec<P>,
    workers: usize,
    phase: impl Fn(&mut P, Time) + Sync,
    mut serial: impl FnMut(&mut Vec<P>) -> Option<Time>,
) -> Vec<P> {
    let mut parts = parts;
    if workers <= 1 || parts.len() <= 1 {
        while let Some(p_end) = serial(&mut parts) {
            for p in parts.iter_mut() {
                phase(p, p_end);
            }
        }
        return parts;
    }

    let n = parts.len();
    let workers = workers.min(n);
    let slots: Vec<Mutex<Option<P>>> = parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let barrier = SpinBarrier::new(workers + 1);
    let p_end_cell = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let mut out: Vec<P> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        for w in 0..workers {
            let slots = &slots;
            let barrier = &barrier;
            let p_end_cell = &p_end_cell;
            let done = &done;
            let panic_box = &panic_box;
            let phase = &phase;
            s.spawn(move || loop {
                barrier.wait();
                if done.load(Ordering::Acquire) {
                    break;
                }
                let p_end = p_end_cell.load(Ordering::Acquire);
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for slot in slots.iter().skip(w).step_by(workers) {
                        let mut g = slot.lock().unwrap_or_else(|e| e.into_inner());
                        if let Some(p) = g.as_mut() {
                            phase(p, p_end);
                        }
                    }
                }));
                if let Err(e) = r {
                    let mut g = panic_box.lock().unwrap_or_else(|e| e.into_inner());
                    if g.is_none() {
                        *g = Some(e);
                    }
                }
                barrier.wait();
            });
        }

        loop {
            // Serial phase: take every partition out of its slot so the
            // main thread has plain `&mut` access with no locks held.
            // A panicking worker poisons its slot; the partition is still
            // there and the payload is re-raised below, so poison is not an
            // error here.
            let mut parts: Vec<P> = slots
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("partition present")
                })
                .collect();
            if panic_box
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_some()
            {
                out = parts;
                done.store(true, Ordering::Release);
                barrier.wait();
                break;
            }
            let next = serial(&mut parts);
            match next {
                None => {
                    out = parts;
                    done.store(true, Ordering::Release);
                    barrier.wait();
                    break;
                }
                Some(p_end) => {
                    for (slot, p) in slots.iter().zip(parts) {
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(p);
                    }
                    p_end_cell.store(p_end, Ordering::Release);
                    barrier.wait(); // release workers into the phase
                    barrier.wait(); // wait for the phase to finish
                }
            }
        }
    });
    if let Some(e) = panic_box.lock().unwrap_or_else(|e| e.into_inner()).take() {
        std::panic::resume_unwind(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_keys_order_by_counter() {
        let a = EvKey::flat(5, 0);
        let b = EvKey::flat(5, 1);
        let c = EvKey::flat(4, 9);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn child_keys_interleave_with_flats_by_epoch() {
        // Phase starts at epoch 10: flats 0..10 predate it, flats >= 10
        // come from later serial phases.
        let parent = Arc::new(EvKey::flat(3, 7));
        let child = EvKey::child(5, 10, &parent, 0);
        assert!(EvKey::flat(5, 9) < child, "pre-phase flat sorts first");
        assert!(child < EvKey::flat(5, 10), "post-phase flat sorts after");
        // Time still dominates.
        assert!(EvKey::flat(4, 99) < child);
        assert!(child < EvKey::flat(6, 0));
    }

    #[test]
    fn sibling_children_order_by_parent_then_idx() {
        let pa = Arc::new(EvKey::flat(3, 1));
        let pb = Arc::new(EvKey::flat(3, 2));
        let a0 = EvKey::child(9, 10, &pa, 0);
        let a1 = EvKey::child(9, 10, &pa, 1);
        let b0 = EvKey::child(9, 10, &pb, 0);
        assert!(a0 < a1);
        assert!(a1 < b0, "earlier parent's pushes all precede later's");
        // Parents at different times: parent time decides.
        let pc = Arc::new(EvKey::flat(2, 50));
        let c0 = EvKey::child(9, 10, &pc, 0);
        assert!(c0 < a0);
    }

    #[test]
    fn keyed_queue_pops_in_key_order() {
        let mut q = KeyedQueue::new();
        q.push(EvKey::flat(5, 2), "c");
        q.push(EvKey::flat(5, 1), "b");
        q.push(EvKey::flat(3, 9), "a");
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn drain_sorted_is_canonical_order() {
        let mut q = KeyedQueue::new();
        for (t, o, v) in [(9, 1, 3), (2, 5, 0), (9, 0, 2), (4, 0, 1)] {
            q.push(EvKey::flat(t, o), v);
        }
        let vals: Vec<i32> = q.drain_sorted().into_iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn partition_ranges_are_contiguous_and_balanced() {
        for units in 1..40u32 {
            for parts in 1..10u32 {
                let rs = partition_ranges(units, parts);
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, units);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<u32> = rs.iter().map(|r| r.end - r.start).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn run_pool_alternates_serial_and_parallel_phases() {
        // Each partition accumulates the window ends it saw; the serial
        // closure drives three windows then stops.
        let parts: Vec<(u32, Vec<Time>)> = (0..5).map(|i| (i, Vec::new())).collect();
        for workers in [1usize, 2, 4, 8] {
            let mut windows = vec![10u64, 20, 30];
            let out = run_pool(
                parts.clone(),
                workers,
                |p, end| p.1.push(end),
                move |_parts| {
                    if windows.is_empty() {
                        None
                    } else {
                        Some(windows.remove(0))
                    }
                },
            );
            assert_eq!(out.len(), 5);
            for (i, seen) in &out {
                assert_eq!(seen, &vec![10, 20, 30], "partition {i} workers {workers}");
            }
        }
    }

    #[test]
    fn run_pool_serial_phase_sees_parallel_mutations() {
        // Workers increment; serial sums and stops at a threshold.
        let parts: Vec<u64> = vec![0; 4];
        let out = run_pool(
            parts,
            3,
            |p, _end| *p += 1,
            |parts| {
                let total: u64 = parts.iter().sum();
                if total >= 12 {
                    None
                } else {
                    Some(total)
                }
            },
        );
        assert_eq!(out.iter().sum::<u64>(), 12);
    }

    #[test]
    fn run_pool_propagates_worker_panics() {
        let r = std::panic::catch_unwind(|| {
            run_pool(
                vec![0u32, 1, 2],
                2,
                |p, _end| {
                    if *p == 1 {
                        panic!("boom from partition 1");
                    }
                },
                {
                    let mut rounds = 0;
                    move |_parts| {
                        rounds += 1;
                        if rounds > 3 {
                            None
                        } else {
                            Some(rounds)
                        }
                    }
                },
            )
        });
        let err = r.expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom"), "got: {msg}");
    }

    #[test]
    fn spin_barrier_synchronizes() {
        let b = SpinBarrier::new(4);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    b.wait();
                    hits.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                });
            }
            b.wait();
            b.wait();
            assert_eq!(hits.load(Ordering::SeqCst), 3);
        });
    }
}
