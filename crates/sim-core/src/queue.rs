//! The central event queue of the discrete-event simulation.
//!
//! Events are totally ordered by `(time, sequence)`: two events scheduled
//! for the same instant pop in the order they were pushed. That stability is
//! what makes every simulation in this workspace deterministic and therefore
//! testable — identical inputs produce identical virtual-time results.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of timestamped events with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    /// High-water mark of queue length, useful for harness diagnostics.
    peak_len: usize,
    pushed: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            peak_len: 0,
            pushed: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            peak_len: 0,
            pushed: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Remove and return the earliest event, or `None` when empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(5, ());
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn bookkeeping_counters() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.pop();
        q.push(3, ());
        assert_eq!(q.total_pushed(), 3);
        assert_eq!(q.peak_len(), 2);
        q.clear();
        assert!(q.is_empty());
        // peak and pushed survive clear
        assert_eq!(q.peak_len(), 2);
        assert_eq!(q.total_pushed(), 3);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(100, 100u64);
        q.push(50, 50);
        assert_eq!(q.pop(), Some((50, 50)));
        q.push(75, 75);
        q.push(25, 25);
        assert_eq!(q.pop(), Some((25, 25)));
        assert_eq!(q.pop(), Some((75, 75)));
        assert_eq!(q.pop(), Some((100, 100)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever we push, pops come out sorted by time, and same-time
        /// events preserve push order.
        #[test]
        fn pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut out = Vec::new();
            while let Some(x) = q.pop() {
                out.push(x);
            }
            prop_assert_eq!(out.len(), times.len());
            for w in out.windows(2) {
                let (t0, i0) = w[0];
                let (t1, i1) = w[1];
                prop_assert!(t0 <= t1);
                if t0 == t1 {
                    prop_assert!(i0 < i1, "FIFO violated for equal times");
                }
            }
        }

        /// len() always equals pushes minus pops.
        #[test]
        fn len_is_consistent(ops in proptest::collection::vec(proptest::option::of(0u64..100), 0..300)) {
            let mut q = EventQueue::new();
            let mut expect = 0usize;
            for op in ops {
                match op {
                    Some(t) => { q.push(t, ()); expect += 1; }
                    None => {
                        let popped = q.pop().is_some();
                        prop_assert_eq!(popped, expect > 0);
                        if popped { expect -= 1; }
                    }
                }
                prop_assert_eq!(q.len(), expect);
            }
        }
    }
}
