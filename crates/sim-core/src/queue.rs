//! The central event queue of the discrete-event simulation.
//!
//! Events are totally ordered by `(time, sequence)`: two events scheduled
//! for the same instant pop in the order they were pushed. That stability is
//! what makes every simulation in this workspace deterministic and therefore
//! testable — identical inputs produce identical virtual-time results.
//!
//! Two implementations share that contract:
//!
//! * [`TwoLevelQueue`] — the default. A calendar-queue-style structure: a
//!   small binary heap for the *active* time window, a ring of FIFO
//!   buckets for the near horizon (push is O(1) there), and a far heap
//!   for distant timers. Discrete-event simulators (SST/macro, Charm++'s
//!   own BigSim) use this shape because event populations cluster tightly
//!   around the current virtual time.
//! * [`HeapQueue`] — the original single `BinaryHeap`. Kept for
//!   differential testing and as an escape hatch: building the workspace
//!   with the sim-core feature `legacy-heap` swaps the [`EventQueue`]
//!   alias back to it. Virtual-time results are bit-for-bit identical
//!   either way; only wall-clock differs.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The event queue used by the simulators. Default: [`TwoLevelQueue`];
/// with the `legacy-heap` feature: [`HeapQueue`].
#[cfg(not(feature = "legacy-heap"))]
pub type EventQueue<E> = TwoLevelQueue<E>;
/// The event queue used by the simulators (legacy-heap build).
#[cfg(feature = "legacy-heap")]
pub type EventQueue<E> = HeapQueue<E>;

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A min-heap of timestamped events with FIFO tie-breaking (the original,
/// single-level engine).
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    /// High-water mark of queue length, useful for harness diagnostics.
    peak_len: usize,
    pushed: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            peak_len: 0,
            pushed: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            peak_len: 0,
            pushed: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Remove and return the earliest event, or `None` when empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Near-horizon bucket width: 2^10 ns. Scheduler and protocol charges in
/// this workspace are a few hundred ns and network latencies a few μs, so
/// most pushes land within a few buckets of the clock.
const BUCKET_BITS: u32 = 10;
const BUCKET_NS: Time = 1 << BUCKET_BITS;
/// Ring size (and `occ` bitmask width): the near horizon covers
/// `NUM_BUCKETS * BUCKET_NS` = 64 μs past the active window's start.
const NUM_BUCKETS: usize = 64;
const HORIZON_NS: Time = (NUM_BUCKETS as Time) << BUCKET_BITS;

/// Two-level (calendar-queue-style) event queue with exact `(time, seq)`
/// FIFO ordering.
///
/// Invariants, with `base` the start of the active window (a multiple of
/// [`BUCKET_NS`]):
///
/// * `active` holds every pending event with `time < base + BUCKET_NS`
///   (including stragglers pushed below `base`, so arbitrary push times
///   remain correct) — its min is therefore always the global min;
/// * ring bucket `j ∈ 1..NUM_BUCKETS` holds events in
///   `[base + j·W, base + (j+1)·W)`, unsorted (sorted lazily when the
///   bucket becomes active); bit `j` of `occ` says the bucket is
///   non-empty;
/// * `far` holds everything at or beyond `base + HORIZON_NS`, and is
///   re-bucketed whenever `base` advances.
#[derive(Debug)]
pub struct TwoLevelQueue<E> {
    active: BinaryHeap<Reverse<Entry<E>>>,
    /// Lazily allocated ring; empty until the first beyond-window push,
    /// so the many tiny per-endpoint queues in `ugni` stay cheap.
    ring: Vec<Vec<Entry<E>>>,
    /// Physical index of logical bucket 0 (the active window's slot; its
    /// vec is always empty because contents live in `active`).
    head: usize,
    /// Bit `j` set ⇔ logical ring bucket `j` is non-empty.
    occ: u64,
    /// Start of the active window; multiple of `BUCKET_NS`; monotonic.
    base: Time,
    far: BinaryHeap<Reverse<Entry<E>>>,
    len: usize,
    seq: u64,
    peak_len: usize,
    pushed: u64,
}

impl<E> Default for TwoLevelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TwoLevelQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            active: BinaryHeap::new(),
            ring: Vec::new(),
            head: 0,
            occ: 0,
            base: 0,
            far: BinaryHeap::new(),
            len: 0,
            seq: 0,
            peak_len: 0,
            pushed: 0,
        }
    }

    /// An empty queue with pre-reserved capacity (in the active heap).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.active.reserve(cap);
        q
    }

    #[inline]
    fn phys(&self, logical: usize) -> usize {
        (self.head + logical) & (NUM_BUCKETS - 1)
    }

    fn place(&mut self, entry: Entry<E>) {
        let t = entry.time;
        if t < self.base + BUCKET_NS {
            self.active.push(Reverse(entry));
        } else if t - self.base < HORIZON_NS {
            if self.ring.is_empty() {
                self.ring.resize_with(NUM_BUCKETS, Vec::new);
            }
            let j = ((t - self.base) >> BUCKET_BITS) as usize;
            debug_assert!((1..NUM_BUCKETS).contains(&j));
            let slot = self.phys(j);
            self.ring[slot].push(entry);
            self.occ |= 1 << j;
        } else {
            self.far.push(Reverse(entry));
        }
    }

    /// Schedule `event` at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        self.place(Entry { time, seq, event });
    }

    /// Advance `base` to the window holding the earliest pending event and
    /// refill `active`. Caller guarantees `active` is empty and `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.active.is_empty());
        let next = if self.occ != 0 {
            let j = self.occ.trailing_zeros() as u64;
            self.base + j * BUCKET_NS
        } else {
            let t = self
                .far
                .peek()
                .map(|Reverse(e)| e.time)
                // panic-ok: pop() guards with is_empty before advancing
                .expect("advance called on empty queue");
            t & !(BUCKET_NS - 1)
        };
        let shift = (next - self.base) >> BUCKET_BITS;
        self.base = next;
        if shift >= NUM_BUCKETS as u64 {
            debug_assert_eq!(self.occ, 0);
            self.occ = 0;
        } else {
            self.head = self.phys(shift as usize);
            self.occ >>= shift;
        }
        // Move the now-active bucket's contents into the active heap.
        if self.occ & 1 != 0 {
            self.occ &= !1;
            let slot = self.head;
            // Rebuild the active heap inside the drained heap's own
            // allocation: one window's vector is recycled into the next,
            // so steady-state advancing allocates nothing.
            let mut items = std::mem::take(&mut self.active).into_vec();
            items.extend(self.ring[slot].drain(..).map(Reverse));
            self.active = BinaryHeap::from(items);
        }
        // The horizon moved: re-bucket far events that now fall inside it.
        while self
            .far
            .peek()
            .is_some_and(|Reverse(e)| e.time - self.base < HORIZON_NS)
        {
            // panic-ok: the loop condition just peeked this entry
            let Reverse(entry) = self.far.pop().expect("peeked");
            self.place(entry);
        }
    }

    /// Remove and return the earliest event, or `None` when empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        if self.active.is_empty() {
            self.advance();
        }
        // panic-ok: advance() always refills active when len > 0
        let Reverse(e) = self.active.pop().expect("advance refills active");
        self.len -= 1;
        Some((e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(Reverse(e)) = self.active.peek() {
            return Some(e.time);
        }
        if self.occ != 0 {
            let j = self.occ.trailing_zeros() as usize;
            let slot = self.phys(j);
            return self.ring[slot].iter().map(|e| e.time).min();
        }
        self.far.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.active.clear();
        for b in &mut self.ring {
            b.clear();
        }
        self.occ = 0;
        self.far.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole suite runs against both implementations.
    fn each_impl(f: impl Fn(QueueKind)) {
        f(QueueKind::Heap);
        f(QueueKind::TwoLevel);
    }

    #[derive(Clone, Copy)]
    enum QueueKind {
        Heap,
        TwoLevel,
    }

    enum AnyQueue<E> {
        Heap(HeapQueue<E>),
        TwoLevel(TwoLevelQueue<E>),
    }

    impl<E> AnyQueue<E> {
        fn new(kind: QueueKind) -> Self {
            match kind {
                QueueKind::Heap => AnyQueue::Heap(HeapQueue::new()),
                QueueKind::TwoLevel => AnyQueue::TwoLevel(TwoLevelQueue::new()),
            }
        }
        fn push(&mut self, t: Time, e: E) {
            match self {
                AnyQueue::Heap(q) => q.push(t, e),
                AnyQueue::TwoLevel(q) => q.push(t, e),
            }
        }
        fn pop(&mut self) -> Option<(Time, E)> {
            match self {
                AnyQueue::Heap(q) => q.pop(),
                AnyQueue::TwoLevel(q) => q.pop(),
            }
        }
        fn peek_time(&self) -> Option<Time> {
            match self {
                AnyQueue::Heap(q) => q.peek_time(),
                AnyQueue::TwoLevel(q) => q.peek_time(),
            }
        }
        fn len(&self) -> usize {
            match self {
                AnyQueue::Heap(q) => q.len(),
                AnyQueue::TwoLevel(q) => q.len(),
            }
        }
        fn is_empty(&self) -> bool {
            match self {
                AnyQueue::Heap(q) => q.is_empty(),
                AnyQueue::TwoLevel(q) => q.is_empty(),
            }
        }
        fn peak_len(&self) -> usize {
            match self {
                AnyQueue::Heap(q) => q.peak_len(),
                AnyQueue::TwoLevel(q) => q.peak_len(),
            }
        }
        fn total_pushed(&self) -> u64 {
            match self {
                AnyQueue::Heap(q) => q.total_pushed(),
                AnyQueue::TwoLevel(q) => q.total_pushed(),
            }
        }
        fn clear(&mut self) {
            match self {
                AnyQueue::Heap(q) => q.clear(),
                AnyQueue::TwoLevel(q) => q.clear(),
            }
        }
    }

    #[test]
    fn pops_in_time_order() {
        each_impl(|k| {
            let mut q = AnyQueue::new(k);
            q.push(30, "c");
            q.push(10, "a");
            q.push(20, "b");
            assert_eq!(q.pop(), Some((10, "a")));
            assert_eq!(q.pop(), Some((20, "b")));
            assert_eq!(q.pop(), Some((30, "c")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_fifo() {
        each_impl(|k| {
            let mut q = AnyQueue::new(k);
            for i in 0..100 {
                q.push(42, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((42, i)));
            }
        });
    }

    #[test]
    fn peek_does_not_consume() {
        each_impl(|k| {
            let mut q = AnyQueue::new(k);
            q.push(5, ());
            assert_eq!(q.peek_time(), Some(5));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn bookkeeping_counters() {
        each_impl(|k| {
            let mut q = AnyQueue::new(k);
            q.push(1, ());
            q.push(2, ());
            q.pop();
            q.push(3, ());
            assert_eq!(q.total_pushed(), 3);
            assert_eq!(q.peak_len(), 2);
            q.clear();
            assert!(q.is_empty());
            // peak and pushed survive clear
            assert_eq!(q.peak_len(), 2);
            assert_eq!(q.total_pushed(), 3);
        });
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        each_impl(|k| {
            let mut q = AnyQueue::new(k);
            q.push(100, 100u64);
            q.push(50, 50);
            assert_eq!(q.pop(), Some((50, 50)));
            q.push(75, 75);
            q.push(25, 25);
            assert_eq!(q.pop(), Some((25, 25)));
            assert_eq!(q.pop(), Some((75, 75)));
            assert_eq!(q.pop(), Some((100, 100)));
        });
    }

    #[test]
    fn two_level_spans_all_three_tiers() {
        // Events in the active window, mid-ring, and far beyond the
        // horizon, interleaved with same-time FIFO ties at each tier.
        let mut q = TwoLevelQueue::new();
        let far = 10 * HORIZON_NS;
        let mid = 5 * BUCKET_NS + 17;
        for i in 0..4 {
            q.push(far, 300 + i);
            q.push(mid, 200 + i);
            q.push(3, 100 + i);
        }
        let mut got = Vec::new();
        while let Some((t, v)) = q.pop() {
            got.push((t, v));
        }
        let want: Vec<(Time, i32)> = (0..4)
            .map(|i| (3, 100 + i))
            .chain((0..4).map(|i| (mid, 200 + i)))
            .chain((0..4).map(|i| (far, 300 + i)))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn two_level_far_rebuckets_on_advance() {
        // A far event whose bucket lands inside the ring after a jump:
        // push one event way out, one just past it, pop both in order.
        let mut q = TwoLevelQueue::new();
        q.push(HORIZON_NS * 3 + 5, "a");
        q.push(HORIZON_NS * 3 + BUCKET_NS * 2 + 1, "b");
        q.push(HORIZON_NS * 7, "c");
        assert_eq!(q.pop(), Some((HORIZON_NS * 3 + 5, "a")));
        // After the advance, pushing below the new base must still pop
        // first (straggler correctness).
        q.push(1, "early");
        assert_eq!(q.pop(), Some((1, "early")));
        assert_eq!(q.pop(), Some((HORIZON_NS * 3 + BUCKET_NS * 2 + 1, "b")));
        assert_eq!(q.pop(), Some((HORIZON_NS * 7, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn two_level_peek_reaches_every_tier() {
        let mut q = TwoLevelQueue::new();
        q.push(HORIZON_NS * 2, ());
        assert_eq!(q.peek_time(), Some(HORIZON_NS * 2));
        q.push(BUCKET_NS * 3 + 7, ());
        assert_eq!(q.peek_time(), Some(BUCKET_NS * 3 + 7));
        q.push(12, ());
        assert_eq!(q.peek_time(), Some(12));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever we push, pops come out sorted by time, and same-time
        /// events preserve push order.
        #[test]
        fn pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut out = Vec::new();
            while let Some(x) = q.pop() {
                out.push(x);
            }
            prop_assert_eq!(out.len(), times.len());
            for w in out.windows(2) {
                let (t0, i0) = w[0];
                let (t1, i1) = w[1];
                prop_assert!(t0 <= t1);
                if t0 == t1 {
                    prop_assert!(i0 < i1, "FIFO violated for equal times");
                }
            }
        }

        /// len() always equals pushes minus pops.
        #[test]
        fn len_is_consistent(ops in proptest::collection::vec(proptest::option::of(0u64..100), 0..300)) {
            let mut q = EventQueue::new();
            let mut expect = 0usize;
            for op in ops {
                match op {
                    Some(t) => { q.push(t, ()); expect += 1; }
                    None => {
                        let popped = q.pop().is_some();
                        prop_assert_eq!(popped, expect > 0);
                        if popped { expect -= 1; }
                    }
                }
                prop_assert_eq!(q.len(), expect);
            }
        }

        /// Differential: the two-level queue pops *exactly* what the legacy
        /// heap pops, for arbitrary interleaved push/pop traces spanning
        /// the active window, the ring, and the far horizon (time deltas
        /// up to several horizons).
        #[test]
        fn two_level_matches_heap(
            ops in proptest::collection::vec(
                proptest::option::of((0u64..(HORIZON_NS * 3), any::<bool>())), 0..400)
        ) {
            let mut a = HeapQueue::new();
            let mut b = TwoLevelQueue::new();
            let mut clock = 0u64;
            let mut id = 0u32;
            for op in ops {
                match op {
                    Some((dt, absolute)) => {
                        // Mix monotone-from-clock pushes (the simulator's
                        // pattern) with absolute ones (stragglers).
                        let t = if absolute { dt } else { clock + dt };
                        a.push(t, id);
                        b.push(t, id);
                        id += 1;
                    }
                    None => {
                        let x = a.pop();
                        let y = b.pop();
                        prop_assert_eq!(x, y, "pop diverged");
                        if let Some((t, _)) = x {
                            clock = clock.max(t);
                        }
                    }
                }
                prop_assert_eq!(a.len(), b.len());
                prop_assert_eq!(a.peek_time(), b.peek_time());
            }
            // Drain both fully.
            loop {
                let x = a.pop();
                let y = b.pop();
                prop_assert_eq!(x, y, "drain diverged");
                if x.is_none() { break; }
            }
        }
    }
}
