//! Discrete-event simulation kernel used by the Gemini fabric model and the
//! Charm-like runtime driver.
//!
//! The kernel is deliberately tiny and allocation-light: a virtual clock in
//! nanoseconds ([`Time`]), a stable-ordered event queue ([`EventQueue`]), a
//! deterministic RNG ([`rng`]) so every experiment is reproducible, and the
//! statistics helpers ([`stats`]) the benchmark harness uses to report the
//! paper's tables and figures.
//!
//! # Quick example
//!
//! ```
//! use sim_core::{EventQueue, time};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(time::us(3), "later");
//! q.push(time::us(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (1_000, "sooner"));
//! ```

pub mod lazy;
pub mod parallel;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;

pub use lazy::{LazySlab, LazyVec};
pub use queue::EventQueue;
pub use rng::DetRng;
pub use time::Time;

/// True when the `legacy-heap` feature swapped [`EventQueue`] back to the
/// single binary heap. The parallel driver forces `threads = 1` in that
/// configuration (the legacy queue predates queue-ownership splitting).
pub const LEGACY_HEAP: bool = cfg!(feature = "legacy-heap");
