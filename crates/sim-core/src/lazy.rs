//! Lazily materialized per-node/per-link storage.
//!
//! The machine model is sized to the whole torus (Hopper: 6,384 nodes;
//! datacenter scenarios: millions of PEs), but any one run usually touches
//! a thin slice of it. These containers keep the *logical* dense-vector
//! semantics — every index reads as a default value until written — while
//! only allocating fixed-size pages on first write, so an untouched
//! PE/node/link costs one `Option` discriminant instead of its full state.
//! Used by the fabric's link/engine/registration tables, the trace's
//! per-PE accumulators, and the machine layers' per-PE arming state.
//!
//! Determinism: reads never allocate and writes materialize whole pages
//! filled with the same default the dense representation started from, so
//! a lazy table is observationally equivalent to its eager twin (proven by
//! the `lazy_matches_eager` proptest in `gemini-net`'s `fabric.rs`). The
//! eager constructors exist for exactly that differential comparison.

/// Entries per page. Pages are the allocation unit: big enough to amortize
/// the `Box` header, small enough that a sparse traffic pattern touching a
/// handful of nodes stays within a few pages.
pub const PAGE_LEN: usize = 1024;

/// A fixed-length vector of `Copy` values, default-initialized, allocated
/// in pages on first mutable touch. `PAGE` is the entries-per-page
/// allocation grain: the default suits per-node tables with clustered
/// access; tables indexed by PE with *scattered* access (a sparse job
/// touching a handful of PEs per page) want a much smaller grain, or one
/// touched entry drags in a thousand dead neighbors.
pub struct LazyVec<T: Copy, const PAGE: usize = PAGE_LEN> {
    pages: Vec<Option<Box<[T]>>>,
    len: usize,
    default: T,
}

impl<T: Copy, const PAGE: usize> LazyVec<T, PAGE> {
    pub fn new(len: usize, default: T) -> Self {
        LazyVec {
            pages: vec![None; len.div_ceil(PAGE)],
            len,
            default,
        }
    }

    /// Eager twin: every page materialized up front. Same observable
    /// behavior as `new`; exists so tests can compare the two.
    pub fn new_eager(len: usize, default: T) -> Self {
        let mut v = Self::new(len, default);
        for i in 0..v.pages.len() {
            v.pages[i] = Some(v.fresh_page());
        }
        v
    }

    fn fresh_page(&self) -> Box<[T]> {
        vec![self.default; PAGE].into_boxed_slice()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read without materializing: untouched entries are the default.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        match &self.pages[i / PAGE] {
            Some(p) => p[i % PAGE],
            None => self.default,
        }
    }

    /// Write access; materializes the containing page.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        let page = i / PAGE;
        if self.pages[page].is_none() {
            self.pages[page] = Some(self.fresh_page());
        }
        // panic-ok: page materialized just above
        let p = self.pages[page].as_mut().unwrap();
        // panic-ok: i % PAGE is within the fixed page length
        p.get_mut(i % PAGE).unwrap()
    }

    /// Materialized pages as `(start_index, entries)`, in index order.
    /// Untouched pages hold only defaults, so aggregations whose identity
    /// element is the default (sums of 0, maxes over 0-floored values) can
    /// skip them without changing the result.
    pub fn iter_pages(&self) -> impl Iterator<Item = (usize, &[T])> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(move |(pi, p)| p.as_deref().map(|s| (pi * PAGE, &s[..self.page_used(pi)])))
    }

    fn page_used(&self, page: usize) -> usize {
        (self.len - page * PAGE).min(PAGE)
    }

    /// How many pages have been materialized (diagnostics / memory tests).
    pub fn materialized_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }
}

impl<T: Copy, const PAGE: usize> std::fmt::Debug for LazyVec<T, PAGE> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyVec")
            .field("len", &self.len)
            .field("pages", &self.pages.len())
            .field("materialized", &self.materialized_pages())
            .finish()
    }
}

/// Page size for non-`Copy` slabs (bigger per-entry footprint, e.g. a
/// node's registration table), kept smaller so one touched node doesn't
/// drag in a thousand neighbors.
pub const SLAB_PAGE_LEN: usize = 64;

/// A fixed-length slab of `Default` values, allocated in pages on first
/// mutable touch. Shared reads of untouched slots see a pristine fallback
/// instance — valid because `T::default()` carries no per-slot identity.
pub struct LazySlab<T: Default> {
    pages: Vec<Option<Box<[T]>>>,
    len: usize,
    fallback: T,
}

impl<T: Default> LazySlab<T> {
    pub fn new(len: usize) -> Self {
        let mut pages = Vec::new();
        pages.resize_with(len.div_ceil(SLAB_PAGE_LEN), || None);
        LazySlab {
            pages,
            len,
            fallback: T::default(),
        }
    }

    /// Eager twin for differential tests.
    pub fn new_eager(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..s.pages.len() {
            s.pages[i] = Some(Self::fresh_page());
        }
        s
    }

    fn fresh_page() -> Box<[T]> {
        let mut v = Vec::new();
        v.resize_with(SLAB_PAGE_LEN, T::default);
        v.into_boxed_slice()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read-only access; untouched slots alias the shared default instance.
    #[inline]
    pub fn get_ref(&self, i: usize) -> &T {
        debug_assert!(i < self.len);
        match &self.pages[i / SLAB_PAGE_LEN] {
            Some(p) => &p[i % SLAB_PAGE_LEN],
            None => &self.fallback,
        }
    }

    /// Write access; materializes the containing page.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        let page = i / SLAB_PAGE_LEN;
        if self.pages[page].is_none() {
            self.pages[page] = Some(Self::fresh_page());
        }
        // panic-ok: page materialized just above
        let p = self.pages[page].as_mut().unwrap();
        // panic-ok: i % SLAB_PAGE_LEN is within the fixed page length
        p.get_mut(i % SLAB_PAGE_LEN).unwrap()
    }

    pub fn materialized_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }
}

impl<T: Default> std::fmt::Debug for LazySlab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazySlab")
            .field("len", &self.len)
            .field("pages", &self.pages.len())
            .field("materialized", &self.materialized_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_never_materialize() {
        let v: LazyVec<u64> = LazyVec::new(10 * PAGE_LEN, 7);
        for i in [0, PAGE_LEN, 5 * PAGE_LEN + 3, 10 * PAGE_LEN - 1] {
            assert_eq!(v.get(i), 7);
        }
        assert_eq!(v.materialized_pages(), 0);
    }

    #[test]
    fn writes_materialize_only_their_page() {
        let mut v: LazyVec<u64> = LazyVec::new(10 * PAGE_LEN, 0);
        *v.get_mut(3 * PAGE_LEN + 5) = 42;
        assert_eq!(v.materialized_pages(), 1);
        assert_eq!(v.get(3 * PAGE_LEN + 5), 42);
        assert_eq!(v.get(3 * PAGE_LEN + 4), 0);
    }

    #[test]
    fn lazy_and_eager_agree_pointwise() {
        let mut a: LazyVec<u32> = LazyVec::new(2500, 9);
        let mut b: LazyVec<u32> = LazyVec::new_eager(2500, 9);
        for (i, val) in [(0usize, 1u32), (700, 2), (7, 4)] {
            *a.get_mut(i) = val;
            *b.get_mut(i) = val;
        }
        for i in 0..2500 {
            assert_eq!(a.get(i), b.get(i), "index {i}");
        }
        assert!(a.materialized_pages() < b.materialized_pages());
    }

    #[test]
    fn iter_pages_covers_partial_tail() {
        let mut v: LazyVec<u64> = LazyVec::new(PAGE_LEN + 10, 0);
        *v.get_mut(PAGE_LEN + 9) = 5;
        let pages: Vec<(usize, usize)> = v.iter_pages().map(|(s, p)| (s, p.len())).collect();
        assert_eq!(pages, vec![(PAGE_LEN, 10)]);
        let total: u64 = v.iter_pages().flat_map(|(_, p)| p.iter().copied()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn slab_fallback_is_pristine_default() {
        #[derive(Default)]
        struct Counter {
            n: u64,
        }
        let mut s: LazySlab<Counter> = LazySlab::new(1000);
        assert_eq!(s.get_ref(999).n, 0);
        assert_eq!(s.materialized_pages(), 0);
        s.get_mut(999).n = 3;
        assert_eq!(s.get_ref(999).n, 3);
        assert_eq!(s.get_ref(998).n, 0);
        assert_eq!(s.materialized_pages(), 1);
    }
}
