//! Synchronization layer for the conservative parallel driver: an
//! adaptive spin-then-park barrier and a persistent worker pool.
//!
//! PR 5's `SpinBarrier` burned a full spin/yield loop at every window
//! crossing and the driver re-spawned a `thread::scope` per run. On an
//! oversubscribed host (more workers than hardware threads — notably the
//! 1-core CI container) that turns each crossing into a scheduler fight:
//! the quick wallclock suite ran ~60x *slower* at `threads = 2` than at
//! `threads = 1`. This module replaces both pieces:
//!
//! * [`AdaptiveBarrier`] spins for a short bounded budget and then parks
//!   on a condvar. When the participant count exceeds
//!   `available_parallelism()` the spin budget drops to zero — a waiter
//!   that cannot possibly be overtaken by a running peer goes straight
//!   to sleep instead of stealing the CPU the releaser needs.
//! * [`WorkerPool`] keeps its threads alive across `run_parallel`
//!   invocations (thread-local, sized to the partition count). Between
//!   rounds the workers are parked inside the barrier, so an idle pool
//!   costs nothing.
//!
//! The barrier also meters the nanoseconds participants spend waiting
//! (vs executing), which the wallclock harness surfaces as
//! `sync_overhead_ns` — the win over the spin barrier is measured, not
//! asserted.
//!
//! Everything here is wall-clock-side machinery: no virtual timestamps
//! pass through this module, so it cannot perturb simulation results —
//! the determinism argument lives entirely in the driver's window
//! protocol.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant; // time-ok: wall-clock sync meter, never feeds virtual time

/// Spin iterations before a waiter parks, when the host has a spare
/// hardware thread for it. Small on purpose: the windows being waited on
/// are microseconds of work, so a short spin catches the common
/// already-almost-done case and anything longer is better slept through.
const SPIN_BUDGET: u32 = 1 << 10;

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A reusable barrier that spins briefly and then parks.
///
/// `wait()` forms rounds of `n` participants: the last arriver of a
/// round publishes the next generation and wakes any sleepers; everyone
/// else spins up to the budget and then blocks on the condvar. The
/// generation counter only grows, so a stale wakeup can never release a
/// waiter early.
pub struct AdaptiveBarrier {
    n: usize,
    spin: u32,
    /// Monotone arrival tickets; `ticket / n` is the round index.
    tickets: AtomicUsize,
    /// Completed-round counter. A waiter of round `r` is released once
    /// `gen > r`.
    gen: AtomicUsize,
    /// Number of waiters that have committed to sleeping (or are about
    /// to). SeqCst, paired with the SeqCst `gen` store in the releaser:
    /// either the sleeper's increment is visible to the releaser (which
    /// then takes the lock and notifies) or the releaser's `gen` store
    /// is visible to the sleeper's re-check under the lock. Plain
    /// release/acquire would allow both flags to hide and lose the
    /// wakeup.
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    /// Total nanoseconds participants spent inside `wait()` while not
    /// being the releaser — the `sync_overhead_ns` meter.
    wait_ns: AtomicU64,
}

impl AdaptiveBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        // Oversubscribed: spinning only delays the peer we are waiting
        // for, so park immediately.
        let spin = if n > hardware_threads() {
            0
        } else {
            SPIN_BUDGET
        };
        AdaptiveBarrier {
            n,
            spin,
            tickets: AtomicUsize::new(0),
            gen: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            wait_ns: AtomicU64::new(0),
        }
    }

    /// Block until all `n` participants of the current round have
    /// arrived.
    pub fn wait(&self) {
        let ticket = self.tickets.fetch_add(1, Ordering::AcqRel);
        let round = ticket / self.n;
        if (ticket + 1).is_multiple_of(self.n) {
            // Last arriver: release the round. The SeqCst store orders
            // against the SeqCst `sleepers` load below (see `sleepers`).
            self.gen.store(round + 1, Ordering::SeqCst);
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                // Taking the lock closes the race with a sleeper that
                // observed a stale `gen` and is between its re-check and
                // `cv.wait`.
                drop(self.lock.lock().unwrap());
                self.cv.notify_all();
            }
            return;
        }
        let start = Instant::now(); // time-ok: sync_overhead_ns meter
        let mut spins = self.spin;
        loop {
            if self.gen.load(Ordering::Acquire) > round {
                break;
            }
            if spins > 0 {
                spins -= 1;
                std::hint::spin_loop();
                continue;
            }
            // Park. Commit to sleeping first, then re-check under the
            // lock before actually waiting.
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            let mut guard = self.lock.lock().unwrap();
            while self.gen.load(Ordering::SeqCst) <= round {
                guard = self.cv.wait(guard).unwrap();
            }
            drop(guard);
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            break;
        }
        let waited = start.elapsed().as_nanos() as u64; // time-ok: sync_overhead_ns meter
        self.wait_ns.fetch_add(waited, Ordering::Relaxed);
    }

    /// Cumulative nanoseconds participants have spent waiting at this
    /// barrier (excludes each round's releaser, who never waits).
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }
}

/// Worker-round control words (`WorkerPool::ctl`).
const CTL_RUN: usize = 0;
const CTL_SHUTDOWN: usize = 1;

/// Type-erased per-round job. The pointer is only dereferenced between
/// the two barrier crossings of a round, while the caller's closure is
/// alive on the coordinating thread's stack.
struct Job(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync`, and the pool's round protocol bounds
// every dereference to the lifetime of the borrow `round()` holds.
unsafe impl Send for Job {}

struct PoolShared {
    /// `workers + 1` participants: the coordinator joins every crossing.
    barrier: AdaptiveBarrier,
    ctl: AtomicUsize,
    job: Mutex<Option<Job>>,
}

/// A persistent pool of `workers` threads driven in rounds.
///
/// Protocol per round (coordinator side in [`WorkerPool::round`]):
/// publish the job, cross the barrier to release the workers, cross it
/// again to wait for them. Workers park inside the first crossing
/// between rounds, so an idle pool consumes no CPU. Dropping the pool
/// flips `ctl` to shutdown and joins the threads.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
    stamp: u64,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Monotone pool-creation stamp; lets tests (and diagnostics) verify
/// that consecutive runs reused one pool instead of respawning.
static POOL_STAMP: AtomicU64 = AtomicU64::new(0);

impl WorkerPool {
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            barrier: AdaptiveBarrier::new(workers + 1),
            ctl: AtomicUsize::new(CTL_RUN),
            job: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("charm-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            stamp: POOL_STAMP.fetch_add(1, Ordering::Relaxed),
            handles,
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Creation stamp: equal stamps mean the same spawned pool.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Run one round: every worker `w` executes `job(w)` once; returns
    /// when all have finished.
    pub fn round(&self, job: &(dyn Fn(usize) + Sync)) {
        // Erase the borrow's lifetime; the job slot is cleared before
        // this borrow ends.
        let erased = Job(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                job as *const _,
            )
        });
        *self.shared.job.lock().unwrap() = Some(erased);
        self.shared.barrier.wait(); // release the workers
        self.shared.barrier.wait(); // wait for the round to finish
        *self.shared.job.lock().unwrap() = None;
    }

    /// Cumulative barrier-wait nanoseconds across all participants. Take
    /// a snapshot before a session and subtract to get per-run overhead.
    pub fn wait_ns(&self) -> u64 {
        self.shared.barrier.wait_ns()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.ctl.store(CTL_SHUTDOWN, Ordering::Release);
        // Pairs with the workers' round-start crossing; they observe the
        // shutdown word and exit without a completion crossing.
        self.shared.barrier.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, w: usize) {
    loop {
        shared.barrier.wait();
        if shared.ctl.load(Ordering::Acquire) == CTL_SHUTDOWN {
            return;
        }
        let job = shared.job.lock().unwrap().as_ref().map(|j| j.0);
        if let Some(p) = job {
            // SAFETY: the coordinator is blocked at the completion
            // crossing below for as long as we run, so the closure
            // behind `p` is alive.
            unsafe { (*p)(w) };
        }
        shared.barrier.wait();
    }
}

std::thread_local! {
    /// One pool per coordinating thread: concurrent tests each drive
    /// their own clusters, and the perf-critical case (the wallclock
    /// harness) is a single thread re-running `run_parallel` thousands
    /// of times against the same pool.
    static POOL: std::cell::RefCell<Option<WorkerPool>> = const { std::cell::RefCell::new(None) };
}

/// Borrow this thread's persistent pool, (re)creating it when the
/// requested worker count differs from the cached one. Recreation joins
/// the old threads first, so at most one cached pool per thread exists.
///
/// The pool is *taken out* of the thread-local slot for the duration of
/// `f` (and put back afterwards), so a reentrant call — a simulated
/// handler driving a nested cluster — simply builds a temporary pool
/// instead of panicking on a `RefCell` borrow.
pub fn with_pool<R>(workers: usize, f: impl FnOnce(&WorkerPool) -> R) -> R {
    let pool = POOL
        .with(|cell| {
            let mut slot = cell.borrow_mut();
            match slot.take() {
                Some(p) if p.workers() == workers => Some(p),
                // Wrong size: drop (and join) the old pool before
                // spawning a fresh one below.
                _ => None,
            }
        })
        .unwrap_or_else(|| WorkerPool::new(workers));
    let r = f(&pool);
    POOL.with(|cell| *cell.borrow_mut() = Some(pool));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_synchronizes_rounds() {
        let n = 4;
        let b = Arc::new(AdaptiveBarrier::new(n));
        let hits = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let b = Arc::clone(&b);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    for round in 0..50 {
                        hits.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the crossing every participant of the
                        // round has incremented.
                        assert!(hits.load(Ordering::SeqCst) >= (round + 1) * n);
                        b.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 50 * n);
    }

    #[test]
    fn barrier_meters_wait_time() {
        let b = Arc::new(AdaptiveBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait());
        std::thread::sleep(std::time::Duration::from_millis(5));
        b.wait();
        h.join().unwrap();
        // The early arriver waited ~5ms for us; the meter must have
        // recorded a nonzero (and plausibly-sized) wait.
        assert!(b.wait_ns() > 0);
    }

    #[test]
    fn pool_runs_rounds_and_persists() {
        let pool = WorkerPool::new(3);
        let sum = AtomicUsize::new(0);
        for _ in 0..20 {
            pool.round(&|w| {
                sum.fetch_add(w + 1, Ordering::SeqCst);
            });
        }
        // 20 rounds x (1 + 2 + 3).
        assert_eq!(sum.load(Ordering::SeqCst), 20 * 6);
    }

    #[test]
    fn with_pool_reuses_and_resizes() {
        let first = with_pool(2, |p| p.stamp());
        let again = with_pool(2, |p| p.stamp());
        assert_eq!(first, again, "same worker count must reuse the pool");
        let resized = with_pool(3, |p| (p.stamp(), p.workers()));
        assert_ne!(resized.0, first, "resize must build a fresh pool");
        assert_eq!(resized.1, 3);
    }
}
