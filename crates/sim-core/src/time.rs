//! Virtual time. All simulation timestamps are absolute nanoseconds since
//! simulation start, stored in a `u64`. At nanosecond resolution a `u64`
//! covers ~584 years of virtual time, far beyond any experiment here.

/// Absolute virtual time in nanoseconds.
pub type Time = u64;

/// Zero time; the simulation epoch.
pub const ZERO: Time = 0;

/// Build a duration of `n` nanoseconds (identity; for symmetry).
#[inline]
pub const fn ns(n: u64) -> Time {
    n
}

/// Build a duration of `n` microseconds.
#[inline]
pub const fn us(n: u64) -> Time {
    n * 1_000
}

/// Build a duration of `n` milliseconds.
#[inline]
pub const fn ms(n: u64) -> Time {
    n * 1_000_000
}

/// Build a duration of `n` seconds.
#[inline]
pub const fn secs(n: u64) -> Time {
    n * 1_000_000_000
}

/// Convert a time (or duration) to fractional microseconds.
#[inline]
pub fn to_us(t: Time) -> f64 {
    t as f64 / 1_000.0
}

/// Convert a time (or duration) to fractional milliseconds.
#[inline]
pub fn to_ms(t: Time) -> f64 {
    t as f64 / 1_000_000.0
}

/// Convert a time (or duration) to fractional seconds.
#[inline]
pub fn to_secs(t: Time) -> f64 {
    t as f64 / 1_000_000_000.0
}

/// Duration of transferring `bytes` at `gb_per_s` gigabytes per second,
/// rounded up to at least 1 ns for any non-empty transfer.
///
/// "GB" here is 1e9 bytes, matching how link bandwidths are quoted.
#[inline]
pub fn transfer_ns(bytes: u64, gb_per_s: f64) -> Time {
    if bytes == 0 || gb_per_s <= 0.0 {
        return 0;
    }
    let ns = bytes as f64 / gb_per_s;
    ns.ceil().max(1.0) as Time
}

/// Human-friendly rendering used in harness output: picks ns/µs/ms/s.
pub fn fmt(t: Time) -> String {
    if t < 1_000 {
        format!("{t}ns")
    } else if t < 1_000_000 {
        format!("{:.2}us", to_us(t))
    } else if t < 1_000_000_000 {
        format!("{:.3}ms", to_ms(t))
    } else {
        format!("{:.3}s", to_secs(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_compose() {
        assert_eq!(us(1), 1_000);
        assert_eq!(ms(1), us(1_000));
        assert_eq!(secs(1), ms(1_000));
        assert_eq!(ns(7), 7);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(to_us(us(5)), 5.0);
        assert_eq!(to_ms(ms(5)), 5.0);
        assert_eq!(to_secs(secs(5)), 5.0);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 6 GB/s: 6 bytes per ns.
        assert_eq!(transfer_ns(6_000, 6.0), 1_000);
        // Rounds up.
        assert_eq!(transfer_ns(1, 6.0), 1);
        assert_eq!(transfer_ns(0, 6.0), 0);
    }

    #[test]
    fn fmt_picks_sane_units() {
        assert_eq!(fmt(12), "12ns");
        assert_eq!(fmt(us(3) + 500), "3.50us");
        assert_eq!(fmt(ms(2)), "2.000ms");
        assert_eq!(fmt(secs(1)), "1.000s");
    }
}
