//! Statistics and reporting helpers for the benchmark harness.
//!
//! The paper reports latency curves (figures) and small tables; the harness
//! binaries in `charm-bench` build [`Series`] objects and print them in a
//! uniform aligned-column format so `EXPERIMENTS.md` can quote them directly.

use crate::time::{to_us, Time};

/// Streaming mean/min/max/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, o: &OnlineStats) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = o.clone();
            return;
        }
        let n = self.n + o.n;
        let d = o.mean - self.mean;
        let mean = self.mean + d * o.n as f64 / n as f64;
        let m2 = self.m2 + o.m2 + d * d * (self.n as f64 * o.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }
}

/// One named curve for a figure: x values with one y per x.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Convenience for latency curves: x = message bytes, y = µs.
    pub fn push_latency(&mut self, bytes: u64, t: Time) {
        self.points.push((bytes as f64, to_us(t)));
    }
}

/// A figure: several series over a common x-axis, rendered as a text table.
#[derive(Debug, Clone)]
pub struct Figure {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl Figure {
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    pub fn add(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Render as an aligned markdown-ish table, one row per distinct x.
    pub fn render(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();

        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&format!(
            "{} vs {} ({} series)\n",
            self.y_label,
            self.x_label,
            self.series.len()
        ));
        let mut header = format!("{:>12}", self.x_label);
        for s in &self.series {
            header.push_str(&format!("  {:>18}", s.name));
        }
        out.push_str(&header);
        out.push('\n');
        for &x in &xs {
            let mut row = format!("{:>12}", fmt_x(x));
            for s in &self.series {
                let y = s.points.iter().find(|p| p.0 == x).map(|p| p.1);
                match y {
                    Some(v) => row.push_str(&format!("  {:>18.3}", v)),
                    None => row.push_str(&format!("  {:>18}", "-")),
                }
            }
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
}

fn fmt_x(x: f64) -> String {
    if x >= 1024.0 * 1024.0 && (x as u64).is_multiple_of(1024 * 1024) {
        format!("{}M", x as u64 / (1024 * 1024))
    } else if x >= 1024.0 && (x as u64).is_multiple_of(1024) {
        format!("{}K", x as u64 / 1024)
    } else {
        format!("{}", x)
    }
}

/// Geometric sweep of message sizes `lo..=hi`, doubling each step —
/// the x-axes the paper uses.
pub fn pow2_sizes(lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo > 0 && lo <= hi);
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        if x > hi / 2 {
            break;
        }
        x *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.stddev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn pow2_sweep() {
        assert_eq!(pow2_sizes(8, 64), vec![8, 16, 32, 64]);
        assert_eq!(pow2_sizes(8, 100), vec![8, 16, 32, 64]);
        assert_eq!(pow2_sizes(1, 1), vec![1]);
    }

    #[test]
    fn figure_renders_all_series() {
        let mut f = Figure::new("Test", "bytes", "us");
        let mut s1 = Series::new("a");
        s1.push(8.0, 1.5);
        s1.push(16.0, 2.0);
        let mut s2 = Series::new("b");
        s2.push(8.0, 3.0);
        f.add(s1);
        f.add(s2);
        let r = f.render();
        assert!(r.contains("Test"));
        assert!(r.contains('a') && r.contains('b'));
        assert!(r.contains("1.500"));
        assert!(r.contains('-'), "missing point shown as dash");
    }
}
