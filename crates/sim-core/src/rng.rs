//! Deterministic random numbers for workloads.
//!
//! Experiments must be reproducible run-to-run, so all randomness in this
//! workspace flows through [`DetRng`], a seeded xoshiro-style generator
//! (`rand::rngs::SmallRng`). Helpers cover the distributions the paper's
//! workloads need: uniform placement (N-Queens random task assignment) and
//! a heavy-tailed work distribution (leaf subtree cost model).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable RNG.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Create from a 64-bit seed. Equal seeds yield equal streams.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive a child RNG from this seed and a stream id, without consuming
    /// state from `self`. Used to give each PE / task an independent but
    /// reproducible stream.
    pub fn derive(base_seed: u64, stream: u64) -> Self {
        // SplitMix64 finalizer mixes the pair into a well-distributed seed.
        let mut z =
            base_seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        Self::seed(z)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Sample a bounded Pareto (heavy-tail) value in `[lo, hi]` with shape
    /// `alpha`. Smaller `alpha` means heavier tail. This models the skewed
    /// leaf-subtree costs in state-space search (see DESIGN.md §4).
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.unit().clamp(1e-12, 1.0 - 1e-12);
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto distribution.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
        x.clamp(lo, hi)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let mut a = DetRng::derive(99, 0);
        let mut a2 = DetRng::derive(99, 0);
        let mut b = DetRng::derive(99, 1);
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_ne!(DetRng::derive(99, 0).next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = DetRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let x = r.range(5, 10);
            assert!((5..10).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_within_bounds_and_skewed() {
        let mut r = DetRng::seed(42);
        let (lo, hi) = (1.0, 1000.0);
        let n = 20_000;
        let mut sum = 0.0;
        let mut below_10 = 0usize;
        for _ in 0..n {
            let x = r.bounded_pareto(lo, hi, 1.1);
            assert!((lo..=hi).contains(&x));
            sum += x;
            if x < 10.0 {
                below_10 += 1;
            }
        }
        let mean = sum / n as f64;
        // Heavy tail: most samples small, mean well above median region.
        assert!(below_10 as f64 / n as f64 > 0.7, "tail not heavy enough");
        assert!(mean > 3.0, "mean {mean} unexpectedly small");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
