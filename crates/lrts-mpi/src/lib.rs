//! `lrts-mpi`: the MPI-based Converse machine layer — the baseline the
//! paper improves on.
//!
//! Structure (paper §I, §V):
//!
//! * `LrtsSyncSend` maps to `MPI_Isend` with a **fresh buffer identity**
//!   per message: the Charm runtime allocates/frees message buffers itself,
//!   so the MPI rendezvous path almost never hits the uDREG registration
//!   cache (the reason MPI-based CHARM++ tracks the *"different send/recv
//!   buffer"* MPI curve in Fig. 9a, not the fast same-buffer one).
//! * The progress engine (`LrtsNetworkEngine`) is an `MPI_Iprobe` loop.
//!   Probes cost CPU even when they miss, and — the Fig. 10 mechanism —
//!   "once a MPI_IProbe returns true, the progress engine calls blocking
//!   MPI_Recv to receive the large message, which prevents the progress
//!   engine from doing any other work".

use bytes::Bytes;
use charm_rt::cluster::MachineCtx;
use charm_rt::lrts::MachineLayer;
use charm_rt::msg::PeId;
use mpi_sim::{MpiConfig, MpiSim};
use sim_core::{LazyVec, Time};
use std::any::Any;

/// Extra `MPI_Iprobe` rounds the Charm progress engine performs per
/// drained message (the paper: performance problems "caused by prolonged
/// MPI_Iprobe").
const EXTRA_PROBES_PER_MSG: u32 = 2;

/// Machine-layer events.
enum Ev {
    /// Run the Iprobe progress loop on this PE.
    Poll,
}

#[derive(Debug, Default, Clone)]
pub struct MpiLayerStats {
    pub msgs: u64,
    pub bytes: u64,
    pub iprobe_calls: u64,
    /// Time the progress engine spent inside blocking receives.
    pub blocked_ns: Time,
}

/// Materialization grain for per-PE poll state (small: sparse jobs
/// touch scattered PEs).
const POLL_PAGE: usize = 64;

/// The MPI machine layer.
pub struct MpiLayer {
    cfg: MpiConfig,
    mpi: Option<MpiSim>,
    /// Earliest armed Poll per PE (coalescing; u64::MAX = none). Paged
    /// lazily: the disarmed state IS the default, so idle PEs cost nothing.
    poll_armed: LazyVec<Time, POLL_PAGE>,
    pub stats: MpiLayerStats,
}

impl MpiLayer {
    pub fn new(cfg: MpiConfig) -> Self {
        MpiLayer {
            cfg,
            mpi: None,
            poll_armed: LazyVec::new(0, Time::MAX),
            stats: MpiLayerStats::default(),
        }
    }

    pub fn mpi(&self) -> &MpiSim {
        self.mpi.as_ref().expect("layer not initialized")
    }

    /// Contract-verifier findings from the MPI library's uGNI instance.
    /// `Some` only when built with the `verify` feature.
    pub fn contract_report(&self) -> Option<ugni_verify::ContractReport> {
        self.mpi.as_ref().and_then(|m| m.contract_report())
    }

    fn mpi_mut(&mut self) -> &mut MpiSim {
        self.mpi.as_mut().expect("layer not initialized")
    }
}

impl MachineLayer for MpiLayer {
    fn name(&self) -> &'static str {
        "MPI"
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn lookahead(&self) -> Time {
        // MPI rides the same Gemini wires: the uGNI latency floor holds.
        self.cfg.params.conservative_lookahead()
    }

    fn init(&mut self, ctx: &mut MachineCtx) {
        self.poll_armed = LazyVec::new(ctx.num_pes() as usize, Time::MAX);
        self.mpi = Some(MpiSim::new(
            self.cfg.clone(),
            ctx.num_pes(),
            ctx.cores_per_node(),
        ));
    }

    fn sync_send(&mut self, ctx: &mut MachineCtx, src_pe: PeId, dst_pe: PeId, msg: Bytes) {
        debug_assert_ne!(src_pe, dst_pe, "self-sends bypass the machine layer");
        self.stats.msgs += 1;
        self.stats.bytes += msg.len() as u64;
        ctx.count_send(msg.len() as u64);
        // "If CHARM++ is implemented on MPI, an extra memory copy between
        // CHARM++ and MPI memory space may be needed" (paper §I) — charged
        // here for eager-sized messages.
        let params = self.cfg.params.clone();
        if (msg.len() as u64) < self.cfg.rndv_threshold {
            ctx.charge_overhead(src_pe, params.memcpy_cost(msg.len() as u64));
        }
        // The send hits MPI once the PE's charged work is done.
        let now = ctx.pe_free_at(src_pe).max(ctx.now());
        // The Charm runtime manages its own buffers: every message is a
        // fresh buffer as far as MPI's registration cache can tell.
        let buf = self.mpi_mut().fresh_buf(src_pe);
        let fx = self.mpi_mut().isend(now, src_pe, dst_pe, 0, msg, buf);
        ctx.charge_overhead(src_pe, fx.cpu);
        for (rank, at) in fx.wakes {
            let at = at.max(now);
            // One in-flight Poll per PE: the Iprobe loop drains everything
            // matchable, so duplicates only pile up behind busy PEs.
            if at < self.poll_armed.get(rank as usize) {
                *self.poll_armed.get_mut(rank as usize) = at;
                ctx.schedule(at, rank, Box::new(Ev::Poll));
            }
        }
    }

    fn on_event(&mut self, ctx: &mut MachineCtx, pe: PeId, ev: Box<dyn Any + Send>) {
        match *ev.downcast::<Ev>().expect("foreign machine event") {
            Ev::Poll => {
                if self.poll_armed.get(pe as usize) != Time::MAX {
                    *self.poll_armed.get_mut(pe as usize) = Time::MAX;
                }
                // The Iprobe-driven progress engine: drain everything that
                // is matchable right now; each large message blocks.
                loop {
                    let t = ctx.pe_free_at(pe).max(ctx.now());
                    let (hit, probe_cpu) = self.mpi_mut().iprobe(t, pe, None, None);
                    self.stats.iprobe_calls += 1;
                    ctx.charge_overhead(pe, probe_cpu);
                    let Some(hit) = hit else {
                        // Re-arm for messages not yet visible at the time
                        // the probe ran (anything that became visible while
                        // the probe CPU was charged must also be covered,
                        // so the probe's own timestamp `t` is the cutoff).
                        if let Some(next) = self.mpi().next_visible(t, pe) {
                            let next = next.max(ctx.now());
                            if next < self.poll_armed.get(pe as usize) {
                                *self.poll_armed.get_mut(pe as usize) = next;
                                ctx.schedule(next, pe, Box::new(Ev::Poll));
                            }
                        }
                        break;
                    };
                    // Prolonged probing: the Charm-on-MPI progress engine
                    // makes several library calls per message.
                    ctx.charge_overhead(pe, probe_cpu * EXTRA_PROBES_PER_MSG as Time);
                    self.stats.iprobe_calls += EXTRA_PROBES_PER_MSG as u64;
                    let t = ctx.pe_free_at(pe).max(ctx.now());
                    let rbuf = self.mpi_mut().fresh_buf(pe);
                    let out = self
                        .mpi_mut()
                        .recv(t, pe, Some(hit.src), Some(hit.tag), rbuf)
                        .expect("probed message vanished");
                    // Blocking window: the PE can do nothing else (for
                    // rendezvous this spans the whole transfer).
                    let window = out.done_at.saturating_sub(t);
                    if hit.is_rendezvous {
                        self.stats.blocked_ns += window;
                    }
                    ctx.charge_overhead(pe, window);
                    ctx.deliver_at(out.done_at.max(ctx.now()), pe, out.data);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_rt::prelude::*;

    fn cluster(pes: u32, cores: u32) -> Cluster {
        Cluster::new(
            ClusterCfg::new(pes, cores),
            Box::new(MpiLayer::new(MpiConfig::default())),
        )
    }

    #[test]
    fn small_message_delivery() {
        let mut c = cluster(2, 1);
        let h = c.register_handler(|ctx, env| {
            if ctx.pe() == 1 {
                assert_eq!(&env.payload[..], b"ping");
                ctx.stop();
            }
        });
        let kick = c.register_handler(move |ctx, _| ctx.send(1, h, Bytes::from_static(b"ping")));
        c.inject(0, 0, kick, Bytes::new());
        assert!(c.run().stopped_early);
    }

    #[test]
    fn large_message_delivery_with_blocking_recv() {
        let mut c = cluster(2, 1);
        let h = c.register_handler(|ctx, env| {
            if ctx.pe() == 1 {
                assert_eq!(env.payload.len(), 262_144);
                ctx.stop();
            }
        });
        let kick =
            c.register_handler(move |ctx, _| ctx.send(1, h, Bytes::from(vec![5u8; 262_144])));
        c.inject(0, 0, kick, Bytes::new());
        assert!(c.run().stopped_early);
        let layer: &mut MpiLayer = c.layer_mut();
        assert!(
            layer.stats.blocked_ns > 10_000,
            "rendezvous recv must block"
        );
        assert!(layer.stats.iprobe_calls >= 1);
    }

    #[test]
    fn many_messages_all_arrive() {
        let mut c = cluster(4, 2);
        c.init_user(|_| 0u64);
        let h = c.register_handler(|ctx, _| *ctx.user::<u64>() += 1);
        let kick = c.register_handler(move |ctx, _| {
            for dst in 0..4 {
                if dst != ctx.pe() {
                    for _ in 0..5 {
                        ctx.send(dst, h, Bytes::from(vec![0u8; 512]));
                    }
                }
            }
        });
        for pe in 0..4 {
            c.inject(0, pe, kick, Bytes::new());
        }
        c.run();
        for pe in 0..4 {
            assert_eq!(*c.user::<u64>(pe), 15, "pe {pe}");
        }
    }

    #[test]
    fn mixed_sizes_preserve_all_payloads() {
        let mut c = cluster(2, 1);
        c.init_user(|_| (0u64, 0u64)); // (count, total_bytes)
        let h = c.register_handler(|ctx, env| {
            let st = ctx.user::<(u64, u64)>();
            st.0 += 1;
            st.1 += env.payload.len() as u64;
        });
        let sizes = [8usize, 900, 4000, 9000, 70_000, 300_000];
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        let kick = c.register_handler(move |ctx, _| {
            for &s in &sizes {
                ctx.send(1, h, Bytes::from(vec![1u8; s]));
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        c.run();
        let st = c.user::<(u64, u64)>(1);
        assert_eq!(st.0, sizes.len() as u64);
        assert_eq!(st.1, total);
    }
}
