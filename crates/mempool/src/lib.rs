//! The pre-registered memory pool of paper §IV-B.
//!
//! > "we can exploit the use of a memory pool aggressively by
//! > pre-allocating and registering a relatively large amount of memory,
//! > and explicitly managing it for CHARM++ messages. [...] Since the
//! > entire memory pool is pre-registered, there is no additional
//! > registration cost for each message. In the case when the memory pool
//! > overflows, it can be dynamically expanded."
//!
//! The pool is a power-of-two size-class allocator over registered slabs.
//! An allocation that hits a non-empty free list costs a few tens of
//! nanoseconds of virtual time; a miss expands the pool by one slab,
//! paying `T_malloc + T_register` once for many future messages. Blocks
//! returned by [`MemPool::alloc`] carry the slab's [`MemHandle`], so RDMA
//! can start immediately — this is exactly what removes `T_malloc` and
//! `T_register` from the paper's Equation 1.

use gemini_net::{Addr, GeminiParams, MemHandle, RegTable};
use sim_core::Time;

pub mod host;
pub use host::{ObjPool, ObjPoolStats, Reset};

/// Smallest block the pool hands out.
pub const MIN_CLASS_SHIFT: u32 = 6; // 64 B
/// Largest pooled block; bigger requests fall back to direct registration.
pub const MAX_CLASS_SHIFT: u32 = 23; // 8 MiB

const NUM_CLASSES: usize = (MAX_CLASS_SHIFT - MIN_CLASS_SHIFT + 1) as usize;

/// A block handed out by the pool (or by the direct-registration fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    pub addr: Addr,
    pub handle: MemHandle,
    /// Usable size of the block (the full size class).
    pub size: u64,
    /// Index of the size class, or `DIRECT` for fallback blocks.
    class: u32,
}

const DIRECT: u32 = u32::MAX;

/// Free blocks of one size class.
///
/// A freshly carved slab is *not* enumerated into a vector (a 256 KiB
/// slab of 64 B blocks would materialize 4096 addresses — 32 KiB of host
/// memory per pool, which at one pool per touched PE dominated the
/// simulator's footprint on huge sparse machines). Instead the slab is
/// kept as a lazy descending span and addresses are minted on `pop`.
/// The observable address sequence is bit-identical to the eager vector:
/// a slab used to be pushed ascending (so popped descending) and only
/// ever carved when the list was empty, meaning the stack was always
/// "returned blocks on top of the remaining slab suffix" — exactly what
/// `returned` + `span` encode.
#[derive(Debug, Default, Clone)]
struct FreeList {
    /// Blocks explicitly freed back to the pool (LIFO, popped first).
    returned: Vec<Addr>,
    span_base: u64,
    /// Blocks remaining in the current slab span. The next span block is
    /// `span_base + (span_left - 1) * block_size` (descending).
    span_left: u64,
}

impl FreeList {
    fn is_empty(&self) -> bool {
        self.returned.is_empty() && self.span_left == 0
    }

    fn pop(&mut self, block_size: u64) -> Option<Addr> {
        if let Some(a) = self.returned.pop() {
            return Some(a);
        }
        if self.span_left == 0 {
            return None;
        }
        self.span_left -= 1;
        Some(Addr(self.span_base + self.span_left * block_size))
    }
}

impl Block {
    /// True when this block bypassed the pool (oversize request).
    pub fn is_direct(&self) -> bool {
        self.class == DIRECT
    }
}

/// Cost knobs of the pool itself (virtual ns).
#[derive(Debug, Clone)]
pub struct PoolCosts {
    /// Free-list hit: pop + header fixup.
    pub alloc_hit: Time,
    /// Returning a block to its free list.
    pub free: Time,
}

impl Default for PoolCosts {
    fn default() -> Self {
        PoolCosts {
            alloc_hit: 80,
            free: 60,
        }
    }
}

#[derive(Debug, Default, Clone)]
pub struct PoolStats {
    pub allocs: u64,
    pub frees: u64,
    pub expansions: u64,
    pub direct_allocs: u64,
    pub slab_bytes: u64,
}

/// The per-node message memory pool.
#[derive(Debug)]
pub struct MemPool {
    free: [FreeList; NUM_CLASSES],
    /// Registered slabs: (base, len, handle). Blocks carved from one slab
    /// share its handle.
    handles: Vec<(Addr, u64, MemHandle)>,
    next_addr: u64,
    slab_min_bytes: u64,
    costs: PoolCosts,
    pub stats: PoolStats,
    #[cfg(debug_assertions)]
    outstanding: std::collections::HashSet<u64>,
}

impl MemPool {
    /// `addr_base` carves a private simulated address range for this pool;
    /// distinct pools on one node must use distinct bases.
    pub fn new(addr_base: u64) -> Self {
        Self::with_costs(addr_base, PoolCosts::default())
    }

    pub fn with_costs(addr_base: u64, costs: PoolCosts) -> Self {
        MemPool {
            free: std::array::from_fn(|_| FreeList::default()),
            handles: Vec::new(),
            next_addr: addr_base,
            slab_min_bytes: 256 * 1024,
            costs,
            stats: PoolStats::default(),
            #[cfg(debug_assertions)]
            outstanding: std::collections::HashSet::new(),
        }
    }

    /// Size class index for a request, or `None` when oversize.
    fn class_of(bytes: u64) -> Option<usize> {
        if bytes <= (1 << MIN_CLASS_SHIFT) {
            return Some(0);
        }
        let shift = 64 - (bytes - 1).leading_zeros();
        if shift > MAX_CLASS_SHIFT {
            None
        } else {
            Some((shift - MIN_CLASS_SHIFT) as usize)
        }
    }

    /// Rounded block size of a class.
    fn class_size(class: usize) -> u64 {
        1u64 << (class as u32 + MIN_CLASS_SHIFT)
    }

    /// Allocate a block of at least `bytes`. Returns the block and the
    /// virtual-time cost. Oversize requests fall back to direct
    /// malloc+register (and pay for it, like the unoptimized path).
    pub fn alloc(&mut self, p: &GeminiParams, reg: &mut RegTable, bytes: u64) -> (Block, Time) {
        self.stats.allocs += 1;
        let Some(class) = Self::class_of(bytes) else {
            // Oversize: direct registration, like the pre-pool design.
            self.stats.direct_allocs += 1;
            let addr = Addr(self.bump(bytes));
            let (handle, reg_cost) = reg.register(p, addr, bytes);
            let cost = p.malloc_cost(bytes) + reg_cost;
            return (
                Block {
                    addr,
                    handle,
                    size: bytes,
                    class: DIRECT,
                },
                cost,
            );
        };

        let mut cost = self.costs.alloc_hit;
        if self.free[class].is_empty() {
            cost += self.expand(p, reg, class);
        }
        let addr = self.free[class]
            .pop(Self::class_size(class))
            .expect("expand filled the list");
        #[cfg(debug_assertions)]
        {
            assert!(self.outstanding.insert(addr.0), "double allocation");
        }
        let handle = self.handle_for(addr);
        (
            Block {
                addr,
                handle,
                size: Self::class_size(class),
                class: class as u32,
            },
            cost,
        )
    }

    /// Return a block. Direct blocks pay deregistration; pooled blocks are
    /// pushed back on their free list (no deregistration — the pool keeps
    /// memory pinned, which is the entire point).
    pub fn free(&mut self, p: &GeminiParams, reg: &mut RegTable, block: Block) -> Time {
        self.stats.frees += 1;
        if block.is_direct() {
            // Direct blocks are registered at alloc time, so deregistration
            // can only fail on a caller double-free; charge nothing then.
            return reg.deregister(p, block.handle).unwrap_or(0) + p.malloc_base;
        }
        #[cfg(debug_assertions)]
        {
            assert!(self.outstanding.remove(&block.addr.0), "double free");
        }
        self.free[block.class as usize].returned.push(block.addr);
        self.costs.free
    }

    /// Grow one size class by a slab; returns the cost.
    fn expand(&mut self, p: &GeminiParams, reg: &mut RegTable, class: usize) -> Time {
        let block = Self::class_size(class);
        let slab = block.max(self.slab_min_bytes);
        let count = slab / block;
        let base = self.bump(slab);
        let (handle, reg_cost) = reg.register(p, Addr(base), slab);
        // The pre-span pool pushed all `count` addresses ascending here;
        // the span mints the same addresses in the same (descending) pop
        // order without materializing them.
        self.free[class].span_base = base;
        self.free[class].span_left = count;
        self.handles.push((Addr(base), slab, handle));
        self.stats.expansions += 1;
        self.stats.slab_bytes += slab;
        p.malloc_cost(slab) + reg_cost
    }

    fn bump(&mut self, bytes: u64) -> u64 {
        let a = self.next_addr;
        // Keep every slab page-aligned so slabs never share pages.
        let aligned = bytes.div_ceil(gemini_net::PAGE) * gemini_net::PAGE;
        self.next_addr += aligned.max(gemini_net::PAGE);
        a
    }

    fn handle_for(&self, addr: Addr) -> MemHandle {
        self.handles
            .iter()
            .find(|(base, len, _)| addr.0 >= base.0 && addr.0 < base.0 + len)
            .map(|&(_, _, h)| h)
            .expect("block not within any slab")
    }

    /// Bytes currently pinned by the pool.
    pub fn pinned_bytes(&self) -> u64 {
        self.stats.slab_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GeminiParams, RegTable, MemPool) {
        (
            GeminiParams::hopper(),
            RegTable::new(),
            MemPool::new(1 << 40),
        )
    }

    #[test]
    fn first_alloc_pays_expansion_second_is_cheap() {
        let (p, mut reg, mut pool) = setup();
        let (a, cost_a) = pool.alloc(&p, &mut reg, 4096);
        assert!(cost_a > p.register_cost(4096), "first alloc expands");
        pool.free(&p, &mut reg, a);
        let (_b, cost_b) = pool.alloc(&p, &mut reg, 4096);
        assert_eq!(cost_b, PoolCosts::default().alloc_hit);
        assert_eq!(pool.stats.expansions, 1);
    }

    #[test]
    fn block_is_large_enough_and_power_of_two() {
        let (p, mut reg, mut pool) = setup();
        for req in [1u64, 63, 64, 65, 1000, 4096, 100_000] {
            let (b, _) = pool.alloc(&p, &mut reg, req);
            assert!(b.size >= req, "req {req} got {}", b.size);
            assert!(b.size.is_power_of_two());
        }
    }

    #[test]
    fn pool_memory_stays_registered_after_free() {
        let (p, mut reg, mut pool) = setup();
        let (b, _) = pool.alloc(&p, &mut reg, 8192);
        let pinned = reg.registered_bytes();
        pool.free(&p, &mut reg, b);
        assert_eq!(reg.registered_bytes(), pinned, "free must not deregister");
        assert_eq!(reg.total_deregistrations, 0);
    }

    #[test]
    fn freed_block_is_reused() {
        let (p, mut reg, mut pool) = setup();
        let (a, _) = pool.alloc(&p, &mut reg, 1024);
        let addr = a.addr;
        pool.free(&p, &mut reg, a);
        let (b, _) = pool.alloc(&p, &mut reg, 1024);
        assert_eq!(b.addr, addr, "LIFO reuse of the freed block");
    }

    #[test]
    fn oversize_falls_back_to_direct_registration() {
        let (p, mut reg, mut pool) = setup();
        let big = (1u64 << MAX_CLASS_SHIFT) + 1;
        let (b, cost) = pool.alloc(&p, &mut reg, big);
        assert!(b.is_direct());
        assert!(cost >= p.register_cost(big));
        let regs = reg.total_registrations;
        let fcost = pool.free(&p, &mut reg, b);
        assert!(fcost >= p.deregister_cost(big));
        assert_eq!(reg.total_registrations, regs);
        assert_eq!(reg.total_deregistrations, 1);
        assert_eq!(pool.stats.direct_allocs, 1);
    }

    #[test]
    fn blocks_in_one_slab_share_a_handle() {
        let (p, mut reg, mut pool) = setup();
        let (a, _) = pool.alloc(&p, &mut reg, 1024);
        let (b, _) = pool.alloc(&p, &mut reg, 1024);
        assert_eq!(a.handle, b.handle);
        assert_ne!(a.addr, b.addr);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let (p, mut reg, mut pool) = setup();
        let (a, _) = pool.alloc(&p, &mut reg, 256);
        pool.free(&p, &mut reg, a);
        pool.free(&p, &mut reg, a);
    }

    #[test]
    fn many_allocations_amortize_registration() {
        // The paper's claim, in miniature: 1000 message allocations through
        // the pool must be far cheaper than 1000 malloc+register pairs.
        let (p, mut reg, mut pool) = setup();
        let bytes = 16 * 1024;
        let mut pool_cost: Time = 0;
        for _ in 0..1000 {
            let (b, c) = pool.alloc(&p, &mut reg, bytes);
            pool_cost += c;
            pool_cost += pool.free(&p, &mut reg, b);
        }
        let naive: Time = 1000 * (p.malloc_cost(bytes) + p.register_cost(bytes));
        assert!(
            pool_cost * 10 < naive,
            "pool {pool_cost}ns vs naive {naive}ns: amortization too weak"
        );
    }

    #[test]
    fn zero_byte_alloc_works() {
        let (p, mut reg, mut pool) = setup();
        let (b, _) = pool.alloc(&p, &mut reg, 0);
        assert_eq!(b.size, 64);
        pool.free(&p, &mut reg, b);
    }

    #[test]
    fn distinct_classes_expand_separately() {
        let (p, mut reg, mut pool) = setup();
        pool.alloc(&p, &mut reg, 100);
        pool.alloc(&p, &mut reg, 100_000);
        assert_eq!(pool.stats.expansions, 2);
        assert!(pool.pinned_bytes() >= 2 * 256 * 1024 - 256 * 1024 / 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Live blocks never overlap, regardless of alloc/free interleaving.
        #[test]
        fn live_blocks_never_overlap(
            ops in proptest::collection::vec((1u64..300_000, any::<bool>()), 1..200)
        ) {
            let p = GeminiParams::hopper();
            let mut reg = RegTable::new();
            let mut pool = MemPool::new(1 << 40);
            let mut live: Vec<Block> = Vec::new();
            for (bytes, do_free) in ops {
                if do_free && !live.is_empty() {
                    let b = live.swap_remove((bytes % live.len() as u64) as usize);
                    pool.free(&p, &mut reg, b);
                } else {
                    let (b, _) = pool.alloc(&p, &mut reg, bytes);
                    live.push(b);
                }
                let mut spans: Vec<(u64, u64)> =
                    live.iter().map(|b| (b.addr.0, b.addr.0 + b.size)).collect();
                spans.sort_unstable();
                for w in spans.windows(2) {
                    prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
                }
            }
        }

        /// Every pooled block's handle is registered and covers the block.
        #[test]
        fn handles_cover_blocks(sizes in proptest::collection::vec(1u64..3_000_000, 1..60)) {
            let p = GeminiParams::hopper();
            let mut reg = RegTable::new();
            let mut pool = MemPool::new(1 << 40);
            for s in sizes {
                let (b, _) = pool.alloc(&p, &mut reg, s);
                prop_assert!(reg.is_registered(b.handle));
                let (base, len) = reg.lookup(b.handle).unwrap();
                prop_assert!(b.addr.0 >= base.0);
                prop_assert!(b.addr.0 + b.size <= base.0 + len);
            }
        }

        /// Dynamic expansion under registration pressure stays O(1) per
        /// operation: once a class has expanded, every later alloc that
        /// hits its free list costs exactly the constant `alloc_hit`, and
        /// every pooled free costs exactly the constant `free` — no matter
        /// how deep the churn. Counters and pinned bytes must balance at
        /// the end, and expansions stay bounded by the live-set peak.
        #[test]
        fn expansion_churn_stays_constant_time(
            ops in proptest::collection::vec((6u32..18, 0u64..4, any::<bool>()), 20..300)
        ) {
            let p = GeminiParams::hopper();
            let mut reg = RegTable::new();
            let mut pool = MemPool::new(1 << 40);
            let mut live: Vec<Block> = Vec::new();
            // Per-class live peak: a class only expands when every block it
            // ever carved is live, so expansions_c <= peak_live_c.
            let mut live_per_class: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            let mut peak_per_class: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            for (shift, pick, do_free) in ops {
                if do_free && !live.is_empty() {
                    let b = live.swap_remove((pick % live.len() as u64) as usize);
                    *live_per_class.get_mut(&b.size).unwrap() -= 1;
                    let c = pool.free(&p, &mut reg, b);
                    prop_assert_eq!(c, PoolCosts::default().free, "pooled free must be O(1)");
                } else {
                    let bytes = 1u64 << shift; // 64 B .. 128 KiB: always pooled
                    let expansions_before = pool.stats.expansions;
                    let (b, c) = pool.alloc(&p, &mut reg, bytes);
                    if pool.stats.expansions == expansions_before {
                        prop_assert_eq!(
                            c,
                            PoolCosts::default().alloc_hit,
                            "free-list hit must be O(1)"
                        );
                    }
                    let n = live_per_class.entry(b.size).or_insert(0);
                    *n += 1;
                    let pk = peak_per_class.entry(b.size).or_insert(0);
                    *pk = (*pk).max(*n);
                    live.push(b);
                }
            }
            // Drain: counters balance, nothing deregistered, memory pinned.
            for b in live.drain(..) {
                pool.free(&p, &mut reg, b);
            }
            prop_assert_eq!(pool.stats.allocs, pool.stats.frees);
            prop_assert_eq!(reg.total_deregistrations, 0, "pool must keep memory pinned");
            prop_assert!(reg.registered_bytes() >= pool.pinned_bytes());
            let bound: u64 = peak_per_class.values().sum();
            prop_assert!(
                pool.stats.expansions <= bound.max(1),
                "expansions {} outran summed per-class live peaks {}",
                pool.stats.expansions,
                bound
            );
        }

        /// alloc/free cycles leave counters balanced and expansion bounded.
        #[test]
        fn stats_balance(n in 1usize..100, bytes in 1u64..100_000) {
            let p = GeminiParams::hopper();
            let mut reg = RegTable::new();
            let mut pool = MemPool::new(1 << 40);
            for _ in 0..n {
                let (b, _) = pool.alloc(&p, &mut reg, bytes);
                pool.free(&p, &mut reg, b);
            }
            prop_assert_eq!(pool.stats.allocs, n as u64);
            prop_assert_eq!(pool.stats.frees, n as u64);
            prop_assert_eq!(pool.stats.expansions, 1);
        }
    }
}
