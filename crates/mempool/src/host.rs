//! Host-side allocation pooling for the simulator's own hot path.
//!
//! [`MemPool`](crate::MemPool) models the *simulated* registered memory
//! pool of paper §IV-B; this module is its host-side sibling: a free-list
//! recycler for the real allocations the discrete-event engine churns
//! through while executing a run — most visibly the per-handler outbox
//! vectors that carry every `Deliver`/`Cmd` a handler emits. At
//! Hopper-and-beyond PE counts the engine executes hundreds of millions
//! of handlers, and a malloc/free pair per handler is pure overhead the
//! allocator never amortizes.
//!
//! Pooling host objects has zero effect on simulated time: virtual-time
//! costs are charged by the cost model, never by wall-clock measurement
//! (the `no-std-time` lint keeps it that way), so recycling is invisible
//! to every pinned result.

/// Objects that can be scrubbed back to a reusable (empty) state while
/// keeping their backing allocation.
pub trait Reset {
    fn reset(&mut self);
}

impl<T> Reset for Vec<T> {
    fn reset(&mut self) {
        self.clear();
    }
}

/// Occupancy counters; cheap enough to keep always-on.
#[derive(Debug, Default, Clone)]
pub struct ObjPoolStats {
    /// `get` served from the free list.
    pub hits: u64,
    /// `get` that had to construct a fresh object.
    pub misses: u64,
    /// Objects dropped on `put` because the pool was at capacity.
    pub shed: u64,
}

/// A bounded free-list pool of host objects.
///
/// `get` pops a recycled object (or constructs a default), `put` scrubs
/// the object with [`Reset`] and retains it up to `cap` — beyond that the
/// object is dropped so a one-off burst cannot pin memory forever.
#[derive(Debug)]
pub struct ObjPool<T> {
    free: Vec<T>,
    cap: usize,
    pub stats: ObjPoolStats,
}

impl<T: Default + Reset> ObjPool<T> {
    /// An empty pool retaining at most `cap` idle objects.
    pub fn new(cap: usize) -> Self {
        ObjPool {
            free: Vec::new(),
            cap,
            stats: ObjPoolStats::default(),
        }
    }

    /// Take an object: recycled when available, freshly constructed
    /// otherwise. Recycled objects are already scrubbed.
    pub fn get(&mut self) -> T {
        match self.free.pop() {
            Some(t) => {
                self.stats.hits += 1;
                t
            }
            None => {
                self.stats.misses += 1;
                T::default()
            }
        }
    }

    /// Return an object to the pool (scrubbed here, so callers can hand
    /// back used objects as-is).
    pub fn put(&mut self, mut t: T) {
        if self.free.len() >= self.cap {
            self.stats.shed += 1;
            return;
        }
        t.reset();
        self.free.push(t);
    }

    /// Idle objects currently retained.
    pub fn retained(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_recycles_allocation() {
        let mut p: ObjPool<Vec<u64>> = ObjPool::new(4);
        let mut v = p.get();
        assert_eq!(p.stats.misses, 1);
        v.extend(0..100);
        let cap = v.capacity();
        p.put(v);
        let v2 = p.get();
        assert_eq!(p.stats.hits, 1);
        assert!(v2.is_empty(), "recycled object must be scrubbed");
        assert_eq!(v2.capacity(), cap, "recycled object keeps its allocation");
    }

    #[test]
    fn cap_bounds_retained_objects() {
        let mut p: ObjPool<Vec<u8>> = ObjPool::new(2);
        let (a, b, c) = (p.get(), p.get(), p.get());
        p.put(a);
        p.put(b);
        p.put(c);
        assert_eq!(p.retained(), 2);
        assert_eq!(p.stats.shed, 1);
    }
}
