//! Per-link contention model.
//!
//! Transfers are pipelined: a message pays its serialization time once (at
//! the path bottleneck) plus one router latency per hop. Contention is
//! modeled by per-directed-link `busy_until` times: a transfer reserves
//! every link on its dimension-ordered route for its serialization window,
//! so concurrent transfers through shared links queue up. This is the
//! mechanism behind the paper's Fig. 8(c) observation that routing
//! intra-node traffic through the NIC "interferes with uGNI handling
//! inter-node communication".

use crate::lazy::LazyVec;
use crate::topology::{LinkId, Torus};
use sim_core::{time, Time};

/// Materialization grain for link state. Dimension-ordered routes touch
/// runs of adjacent x-links but scatter across y/z (indices jump by the
/// row/plane size), so large pages materialize mostly dead slots around
/// every y/z hop. 64 links x 8-byte entries = 512-byte pages.
pub(crate) const LINK_PAGE: usize = 64;

/// Busy-until bookkeeping for every directed link in the torus.
///
/// Storage is lazily paged: the table is *logically* dense over all
/// `num_nodes * 6` directed links, but a link allocates nothing until a
/// transfer actually reserves it — the whole-machine torus costs a page
/// table, not O(nodes) vectors, and a job touching a corner of the machine
/// pays only for the links its routes cross.
#[derive(Debug)]
pub struct LinkTable {
    /// Indexed by `from * 6 + dim * 2 + plus`.
    busy_until: LazyVec<Time, LINK_PAGE>,
    bytes_carried: LazyVec<u64, LINK_PAGE>,
    bw_gbs: f64,
    hop_latency: Time,
}

impl LinkTable {
    pub fn new(num_nodes: u32, bw_gbs: f64, hop_latency: Time) -> Self {
        LinkTable {
            busy_until: LazyVec::new(num_nodes as usize * 6, 0),
            bytes_carried: LazyVec::new(num_nodes as usize * 6, 0),
            bw_gbs,
            hop_latency,
        }
    }

    /// Eager twin — every link slot materialized up front, as the table
    /// was originally built. Observationally identical to `new`; kept for
    /// the lazy-vs-eager differential proptests.
    pub fn new_eager(num_nodes: u32, bw_gbs: f64, hop_latency: Time) -> Self {
        LinkTable {
            busy_until: LazyVec::new_eager(num_nodes as usize * 6, 0),
            bytes_carried: LazyVec::new_eager(num_nodes as usize * 6, 0),
            bw_gbs,
            hop_latency,
        }
    }

    /// Pages of link state currently materialized (memory diagnostics).
    pub fn materialized_pages(&self) -> usize {
        self.busy_until.materialized_pages() + self.bytes_carried.materialized_pages()
    }

    /// `(busy_until, bytes_carried)` for one directed link — the
    /// observable per-link state the differential tests compare.
    pub fn link_state(&self, l: &LinkId) -> (Time, u64) {
        let i = Self::idx(l);
        (self.busy_until.get(i), self.bytes_carried.get(i))
    }

    #[inline]
    fn idx(l: &LinkId) -> usize {
        l.from as usize * 6 + l.dim as usize * 2 + usize::from(l.plus)
    }

    /// Reserve the route for `bytes` starting no earlier than `earliest`;
    /// returns `(depart, arrive)` where `arrive` is when the last byte
    /// reaches the far end of the last link.
    ///
    /// `bw_cap_gbs` lets the caller clamp throughput below link rate (e.g.
    /// the FMA unit's streaming limit).
    pub fn reserve(
        &mut self,
        earliest: Time,
        route: &[LinkId],
        bytes: u64,
        bw_cap_gbs: f64,
    ) -> (Time, Time) {
        let eff_bw = self.bw_gbs.min(bw_cap_gbs);
        let ser = time::transfer_ns(bytes, eff_bw);
        if route.is_empty() {
            // Same-node loopback through the NIC: no router hops.
            return (earliest, earliest + ser);
        }
        let mut depart = earliest;
        for l in route {
            depart = depart.max(self.busy_until.get(Self::idx(l)));
        }
        for l in route {
            let i = Self::idx(l);
            *self.busy_until.get_mut(i) = depart + ser;
            *self.bytes_carried.get_mut(i) += bytes;
        }
        let arrive = depart + self.hop_latency * route.len() as Time + ser;
        (depart, arrive)
    }

    /// Pure latency of an uncontended small control packet along a route.
    pub fn control_latency(&self, route: &[LinkId]) -> Time {
        self.hop_latency * route.len() as Time
    }

    /// Latest `busy_until` along a candidate route (adaptive routing uses
    /// this to pick the least-loaded dimension order).
    pub fn path_busy(&self, route: &[LinkId]) -> Time {
        route
            .iter()
            .map(|l| self.busy_until.get(Self::idx(l)))
            .max()
            .unwrap_or(0)
    }

    /// Total bytes ever carried over all links (diagnostics). Untouched
    /// links carried 0 bytes, so summing only materialized pages is exact.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_carried
            .iter_pages()
            .flat_map(|(_, p)| p.iter().copied())
            .sum()
    }

    /// Max bytes carried by any single link (hot-spot diagnostics). The
    /// lazy default (0) is also the dense floor, so skipping untouched
    /// pages cannot change the max.
    pub fn hottest_link_bytes(&self) -> u64 {
        self.bytes_carried
            .iter_pages()
            .flat_map(|(_, p)| p.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

/// Helper bundling a torus and its link table for tests.
#[derive(Debug)]
pub struct RoutedNetwork {
    pub topo: Torus,
    pub links: LinkTable,
}

impl RoutedNetwork {
    pub fn new(dims: (u32, u32, u32), bw_gbs: f64, hop_latency: Time) -> Self {
        let topo = Torus::new(dims);
        let links = LinkTable::new(topo.num_nodes(), bw_gbs, hop_latency);
        RoutedNetwork { topo, links }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> RoutedNetwork {
        RoutedNetwork::new((4, 4, 4), 6.0, 100)
    }

    #[test]
    fn uncontended_transfer_time() {
        let mut n = net();
        let route = n.topo.route(0, 1);
        assert_eq!(route.len(), 1);
        // 6000 bytes at 6 GB/s = 1000ns serialization + 100ns hop.
        let (depart, arrive) = n.links.reserve(0, &route, 6000, f64::INFINITY);
        assert_eq!(depart, 0);
        assert_eq!(arrive, 1100);
    }

    #[test]
    fn loopback_has_no_hops() {
        let mut n = net();
        let route = n.topo.route(5, 5);
        let (d, a) = n.links.reserve(10, &route, 6000, f64::INFINITY);
        assert_eq!(d, 10);
        assert_eq!(a, 10 + 1000);
    }

    #[test]
    fn back_to_back_transfers_queue_on_link() {
        let mut n = net();
        let route = n.topo.route(0, 1);
        let (_, a1) = n.links.reserve(0, &route, 6000, f64::INFINITY);
        // Second transfer at the same instant must wait for the first
        // serialization window (1000ns), then pay its own.
        let (d2, a2) = n.links.reserve(0, &route, 6000, f64::INFINITY);
        assert_eq!(d2, 1000);
        assert_eq!(a2, 2100);
        assert!(a2 > a1);
    }

    #[test]
    fn disjoint_routes_do_not_contend() {
        let mut n = net();
        let r1 = n.topo.route(0, 1);
        let c = n.topo.coords(0);
        let other = n.topo.node_at((c.0, (c.1 + 1) % 4, c.2));
        let r2 = n.topo.route(0, other);
        let (_, a1) = n.links.reserve(0, &r1, 6000, f64::INFINITY);
        let (d2, a2) = n.links.reserve(0, &r2, 6000, f64::INFINITY);
        assert_eq!(d2, 0, "different dimension, no shared link");
        assert_eq!(a1, a2);
    }

    #[test]
    fn bandwidth_cap_slows_transfer() {
        let mut n = net();
        let route = n.topo.route(0, 1);
        let (_, a_fast) = n.links.reserve(0, &route, 6000, f64::INFINITY);
        let mut n2 = net();
        let route2 = n2.topo.route(0, 1);
        let (_, a_slow) = n2.links.reserve(0, &route2, 6000, 3.0);
        assert_eq!(a_fast, 1100);
        assert_eq!(a_slow, 2100, "3 GB/s cap doubles serialization");
    }

    #[test]
    fn multi_hop_adds_latency_once_per_hop() {
        let mut n = net();
        let a = n.topo.node_at((0, 0, 0));
        let b = n.topo.node_at((2, 2, 0));
        let route = n.topo.route(a, b);
        assert_eq!(route.len(), 4);
        let (_, arrive) = n.links.reserve(0, &route, 6, f64::INFINITY);
        // 1ns serialization + 4 hops * 100ns.
        assert_eq!(arrive, 401);
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut n = net();
        let route = n.topo.route(0, 2);
        n.links.reserve(0, &route, 500, f64::INFINITY);
        n.links.reserve(0, &route, 500, f64::INFINITY);
        assert_eq!(n.links.total_bytes(), 500 * 2 * route.len() as u64);
        assert_eq!(n.links.hottest_link_bytes(), 1000);
    }
}
