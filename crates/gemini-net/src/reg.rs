//! Memory registration model (paper §II-B, §IV).
//!
//! Gemini requires memory to be registered with the NIC before any RDMA can
//! touch it, and the paper's central optimization (the memory pool) exists
//! precisely because `GNI_MemRegister` is expensive. This module models the
//! per-node registration table plus a uDREG-style registration *cache* used
//! by the MPI baseline (paper §IV-B cites MPI's uDREG cache [17]).

use crate::params::GeminiParams;
use serde::{Deserialize, Serialize};
use sim_core::Time;
use std::collections::{BTreeMap, HashMap};

/// Opaque simulated memory address: identifies a buffer for registration
/// caching. Buffers allocated at different times get distinct addresses
/// unless the allocator deliberately reuses one (as the memory pool does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Addr(pub u64);

/// Handle returned by a successful registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemHandle(pub u64);

/// Deregistration failure: the handle is not (or no longer) registered.
/// Real `GNI_MemDeregister` returns `GNI_RC_INVALID_PARAM` here; callers
/// decide whether that is a recoverable condition or a protocol bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeregError {
    pub handle: MemHandle,
}

/// A node's registration table.
#[derive(Debug, Default)]
pub struct RegTable {
    next: u64,
    regions: HashMap<MemHandle, (Addr, u64)>,
    registered_bytes: u64,
    /// Lifetime counters for diagnostics / assertions in tests.
    pub total_registrations: u64,
    pub total_deregistrations: u64,
}

impl RegTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `bytes` at `addr`; returns the handle and the CPU cost.
    pub fn register(&mut self, p: &GeminiParams, addr: Addr, bytes: u64) -> (MemHandle, Time) {
        let h = MemHandle(self.next);
        self.next += 1;
        self.regions.insert(h, (addr, bytes));
        self.registered_bytes += bytes;
        self.total_registrations += 1;
        (h, p.register_cost(bytes))
    }

    /// Deregister; returns the CPU cost. An unknown (e.g. already
    /// deregistered) handle is reported as a typed error, mirroring
    /// `GNI_RC_INVALID_PARAM` — not a process abort.
    pub fn deregister(&mut self, p: &GeminiParams, h: MemHandle) -> Result<Time, DeregError> {
        let (_, bytes) = self.regions.remove(&h).ok_or(DeregError { handle: h })?;
        self.registered_bytes -= bytes;
        self.total_deregistrations += 1;
        Ok(p.deregister_cost(bytes))
    }

    /// Is this handle currently registered? RDMA against an unregistered
    /// handle is a protocol error the fabric checks.
    pub fn is_registered(&self, h: MemHandle) -> bool {
        self.regions.contains_key(&h)
    }

    /// Bytes currently pinned.
    pub fn registered_bytes(&self) -> u64 {
        self.registered_bytes
    }

    pub fn lookup(&self, h: MemHandle) -> Option<(Addr, u64)> {
        self.regions.get(&h).copied()
    }
}

/// uDREG-style registration cache: keyed by `(addr, len)`. A hit costs a
/// small lookup; a miss pays full registration and may evict (paying
/// deregistration) when over capacity. This is what makes the MPI
/// rendezvous fast when the application reuses the *same* buffer and slow
/// when every send uses a fresh one — the effect behind the two MPI curves
/// in the paper's Fig. 9(a).
#[derive(Debug)]
pub struct RegCache {
    /// Keyed `(addr, len)`. A `BTreeMap` (not `HashMap`): `invalidate`
    /// iterates the keys, and iteration order must be deterministic for
    /// bit-for-bit replay (enforced workspace-wide by `lint-pass`).
    entries: BTreeMap<(Addr, u64), MemHandle>,
    lru: Vec<(Addr, u64)>,
    capacity: usize,
    pub lookup_cost: Time,
    pub hits: u64,
    pub misses: u64,
}

impl RegCache {
    pub fn new(capacity: usize, lookup_cost: Time) -> Self {
        RegCache {
            entries: BTreeMap::new(),
            lru: Vec::new(),
            capacity: capacity.max(1),
            lookup_cost,
            hits: 0,
            misses: 0,
        }
    }

    /// Get a registration for `(addr, bytes)`, registering through `table`
    /// on miss. Returns `(handle, cpu_cost)`.
    pub fn acquire(
        &mut self,
        p: &GeminiParams,
        table: &mut RegTable,
        addr: Addr,
        bytes: u64,
    ) -> (MemHandle, Time) {
        let key = (addr, bytes);
        if let Some(&h) = self.entries.get(&key) {
            self.hits += 1;
            // refresh LRU position
            if let Some(pos) = self.lru.iter().position(|k| *k == key) {
                self.lru.remove(pos);
            }
            self.lru.push(key);
            return (h, self.lookup_cost);
        }
        self.misses += 1;
        let mut cost = self.lookup_cost;
        if self.entries.len() >= self.capacity {
            let victim = self.lru.remove(0);
            let vh = self.entries.remove(&victim).expect("lru desync");
            // The cache owns its entries, so the victim is registered by
            // construction; a stale handle just costs nothing extra.
            cost += table.deregister(p, vh).unwrap_or(0);
        }
        let (h, reg_cost) = table.register(p, addr, bytes);
        cost += reg_cost;
        self.entries.insert(key, h);
        self.lru.push(key);
        (h, cost)
    }

    /// Invalidate a buffer (e.g. freed memory), paying deregistration if
    /// cached. Returns the cost.
    pub fn invalidate(&mut self, p: &GeminiParams, table: &mut RegTable, addr: Addr) -> Time {
        let keys: Vec<(Addr, u64)> = self
            .entries
            .keys()
            .filter(|(a, _)| *a == addr)
            .copied()
            .collect();
        let mut cost = 0;
        for key in keys {
            let h = self.entries.remove(&key).unwrap();
            if let Some(pos) = self.lru.iter().position(|k| *k == key) {
                self.lru.remove(pos);
            }
            cost += table.deregister(p, h).unwrap_or(0);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> GeminiParams {
        GeminiParams::hopper()
    }

    #[test]
    fn register_then_deregister_balances() {
        let p = p();
        let mut t = RegTable::new();
        let (h, c1) = t.register(&p, Addr(1), 8192);
        assert!(t.is_registered(h));
        assert_eq!(t.registered_bytes(), 8192);
        assert_eq!(c1, p.register_cost(8192));
        let c2 = t.deregister(&p, h).unwrap();
        assert_eq!(c2, p.deregister_cost(8192));
        assert!(!t.is_registered(h));
        assert_eq!(t.registered_bytes(), 0);
    }

    #[test]
    fn double_deregister_is_reported_not_fatal() {
        let p = p();
        let mut t = RegTable::new();
        let (h, _) = t.register(&p, Addr(1), 100);
        assert!(t.deregister(&p, h).is_ok());
        // Second deregister of the same handle: typed error, no abort, and
        // the table's books stay balanced.
        assert_eq!(t.deregister(&p, h), Err(DeregError { handle: h }));
        assert_eq!(t.registered_bytes(), 0);
        assert_eq!(t.total_deregistrations, 1);
        // The table keeps working afterwards.
        let (h2, _) = t.register(&p, Addr(2), 100);
        assert!(t.deregister(&p, h2).is_ok());
    }

    #[test]
    fn cache_hit_is_cheap() {
        let p = p();
        let mut t = RegTable::new();
        let mut c = RegCache::new(16, 50);
        let (h1, cost1) = c.acquire(&p, &mut t, Addr(7), 65536);
        assert!(cost1 > p.register_cost(65536) / 2, "miss pays registration");
        let (h2, cost2) = c.acquire(&p, &mut t, Addr(7), 65536);
        assert_eq!(h1, h2);
        assert_eq!(cost2, 50, "hit pays only the lookup");
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(t.total_registrations, 1);
    }

    #[test]
    fn distinct_buffers_miss() {
        let p = p();
        let mut t = RegTable::new();
        let mut c = RegCache::new(16, 50);
        for i in 0..10 {
            c.acquire(&p, &mut t, Addr(i), 4096);
        }
        assert_eq!(c.misses, 10);
        assert_eq!(c.hits, 0);
    }

    #[test]
    fn eviction_deregisters_lru_victim() {
        let p = p();
        let mut t = RegTable::new();
        let mut c = RegCache::new(2, 0);
        c.acquire(&p, &mut t, Addr(1), 4096);
        c.acquire(&p, &mut t, Addr(2), 4096);
        // Touch 1 so 2 becomes LRU.
        c.acquire(&p, &mut t, Addr(1), 4096);
        c.acquire(&p, &mut t, Addr(3), 4096);
        assert_eq!(t.total_deregistrations, 1);
        // Addr(2) was evicted: re-acquiring misses.
        let before = c.misses;
        c.acquire(&p, &mut t, Addr(2), 4096);
        assert_eq!(c.misses, before + 1);
    }

    #[test]
    fn invalidate_removes_all_lengths() {
        let p = p();
        let mut t = RegTable::new();
        let mut c = RegCache::new(8, 0);
        c.acquire(&p, &mut t, Addr(5), 4096);
        c.acquire(&p, &mut t, Addr(5), 8192);
        let cost = c.invalidate(&p, &mut t, Addr(5));
        assert!(cost > 0);
        assert_eq!(t.registered_bytes(), 0);
        let before = c.misses;
        c.acquire(&p, &mut t, Addr(5), 4096);
        assert_eq!(c.misses, before + 1);
    }
}
