//! Lazily materialized paged storage — shared with the rest of the
//! workspace via `sim_core::lazy` (the trace accumulators and the machine
//! layers page their per-PE state the same way the fabric pages its
//! per-link state). Re-exported here because the fabric's public API
//! (`LinkTable`, `Fabric`) is documented in terms of these containers.

pub use sim_core::lazy::{LazySlab, LazyVec, PAGE_LEN, SLAB_PAGE_LEN};
