//! A discrete-event model of the Cray Gemini interconnect (paper §II).
//!
//! This crate is the hardware substrate substituted for the real Gemini
//! ASIC (see DESIGN.md §1). It models:
//!
//! * the **3D torus** with dimension-ordered routing and per-link
//!   bandwidth contention ([`topology`], [`links`]);
//! * the **NIC**: SMSG mailboxes with per-connection credits and a
//!   job-size-dependent message limit, the FMA unit (low latency, CPU
//!   participates) and the BTE engine (offloaded, higher start-up)
//!   ([`fabric`]);
//! * **memory registration** and its cost, plus a uDREG-style registration
//!   cache for the MPI baseline ([`reg`]);
//! * a single calibrated parameter set ([`params::GeminiParams`]).
//!
//! The fabric is a *timing oracle*: calls return completion timestamps and
//! CPU costs; the runtime driver above turns them into simulation events.
//! No payload bytes move through this crate.

pub mod fabric;
pub mod fault;
pub mod lazy;
pub mod links;
pub mod params;
pub mod reg;
pub mod topology;

pub use fabric::{near_cubic, Fabric, FabricStats, RdmaOutcome, SmsgError, SmsgOutcome};
pub use fault::{FaultKind, FaultPlan, FaultPlanError, LinkDownWindow, NodeCrashWindow};
pub use lazy::{LazySlab, LazyVec};
pub use params::{GeminiParams, Mechanism, RdmaOp, PAGE};
pub use reg::{Addr, DeregError, MemHandle, RegCache, RegTable};
pub use topology::{LinkId, NodeId, TopologyError, Torus};
