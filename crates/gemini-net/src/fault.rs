//! Deterministic fault injection for the simulated Gemini fabric.
//!
//! A [`FaultPlan`] describes, in advance, every way a run is allowed to go
//! wrong: per-link outage windows in virtual time, per-transaction drop and
//! corruption probabilities for each transfer mechanism, transient
//! registration-resource exhaustion, and completion-queue overruns. All
//! randomness flows through a [`sim_core::DetRng`] stream derived from the
//! plan's own seed, so the same seed and plan reproduce the exact same
//! fault sequence — chaos runs are replayable bit for bit.
//!
//! The all-zeros plan ([`FaultPlan::none`]) is inert by construction: no
//! RNG is ever consulted, so enabling the machinery does not perturb
//! fault-free runs at all.

use crate::topology::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use sim_core::Time;

/// A scheduled outage of one directed torus link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDownWindow {
    /// Node owning the link (matches [`LinkId::from`]).
    pub node: NodeId,
    /// Torus dimension of the link (0 = x, 1 = y, 2 = z).
    pub dim: u8,
    /// Direction along the dimension.
    pub plus: bool,
    /// Outage start, inclusive (virtual ns).
    pub from_ns: Time,
    /// Outage end, exclusive (virtual ns).
    pub until_ns: Time,
}

impl LinkDownWindow {
    /// Does this window take `link` down at instant `at`?
    pub fn covers(&self, link: &LinkId, at: Time) -> bool {
        self.node == link.from
            && self.dim == link.dim
            && self.plus == link.plus
            && at >= self.from_ns
            && at < self.until_ns
    }
}

/// How a transaction failed, as observed by the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Every minimal route crossed a link inside a down window; nothing was
    /// transmitted.
    LinkDown,
    /// The transaction was lost in flight: no data reached the destination.
    Dropped,
    /// The data reached the destination but the completion/ack was
    /// corrupted: the sender must assume failure and resend, so receivers
    /// need duplicate suppression.
    CorruptDelivered,
}

/// Complete fault-injection schedule for one run.
///
/// Probabilities are per transaction in `[0, 1]`; `drop` and `corrupt` for
/// one mechanism must sum to at most 1. The plan travels on
/// [`crate::GeminiParams`] so every experiment config captures its chaos
/// settings alongside its timing calibration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the dedicated fault RNG stream (independent of all other
    /// simulation randomness).
    pub seed: u64,
    /// SMSG/MSGQ per-message drop probability.
    pub smsg_drop: f64,
    /// SMSG/MSGQ per-message corrupt-delivery probability.
    pub smsg_corrupt: f64,
    /// FMA per-transaction drop probability.
    pub fma_drop: f64,
    /// FMA per-transaction corrupt-delivery probability.
    pub fma_corrupt: f64,
    /// BTE per-transaction drop probability.
    pub bte_drop: f64,
    /// BTE per-transaction corrupt-delivery probability.
    pub bte_corrupt: f64,
    /// Probability that one `GNI_MemRegister` call transiently fails with a
    /// resource error (NIC MDD/TLB exhaustion).
    pub reg_fail: f64,
    /// Completion-queue capacity in events; 0 means unlimited. Events posted
    /// beyond this depth overrun the CQ (GNI_CQ_OVERRUN semantics).
    pub cq_depth: u32,
    /// Force exactly one CQ overrun on the first event posted at/after this
    /// instant, regardless of depth (deterministic overrun drills).
    pub force_cq_overrun_at: Option<Time>,
    /// Scheduled link outages.
    pub link_down: Vec<LinkDownWindow>,
}

impl FaultPlan {
    /// The inert plan: nothing ever fails, and no RNG is consulted.
    pub fn none() -> Self {
        Self::default()
    }

    /// A uniform plan: the same drop probability for every mechanism.
    /// Convenient for sweeps.
    pub fn uniform_drop(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            smsg_drop: p,
            fma_drop: p,
            bte_drop: p,
            ..Self::none()
        }
    }

    /// Does this plan inject anything at all?
    pub fn is_active(&self) -> bool {
        self.smsg_drop > 0.0
            || self.smsg_corrupt > 0.0
            || self.fma_drop > 0.0
            || self.fma_corrupt > 0.0
            || self.bte_drop > 0.0
            || self.bte_corrupt > 0.0
            || self.reg_fail > 0.0
            || self.cq_depth > 0
            || self.force_cq_overrun_at.is_some()
            || !self.link_down.is_empty()
    }

    /// Is `link` inside any down window at `at`?
    pub fn link_is_down(&self, link: &LinkId, at: Time) -> bool {
        self.link_down.iter().any(|w| w.covers(link, at))
    }

    /// Does any link of `route` cross a down window at `at`?
    pub fn route_is_down(&self, route: &[LinkId], at: Time) -> bool {
        if self.link_down.is_empty() {
            return false;
        }
        route.iter().any(|l| self.link_is_down(l, at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::default().is_active());
    }

    #[test]
    fn any_field_activates() {
        let mut p = FaultPlan::none();
        p.smsg_drop = 1e-3;
        assert!(p.is_active());
        let mut p = FaultPlan::none();
        p.cq_depth = 4;
        assert!(p.is_active());
        let mut p = FaultPlan::none();
        p.force_cq_overrun_at = Some(0);
        assert!(p.is_active());
        assert!(FaultPlan::uniform_drop(1, 0.5).is_active());
    }

    #[test]
    fn window_covers_matching_link_in_interval() {
        let w = LinkDownWindow {
            node: 3,
            dim: 1,
            plus: false,
            from_ns: 100,
            until_ns: 200,
        };
        let link = LinkId {
            from: 3,
            dim: 1,
            plus: false,
        };
        assert!(w.covers(&link, 100));
        assert!(w.covers(&link, 199));
        assert!(!w.covers(&link, 99));
        assert!(!w.covers(&link, 200), "until is exclusive");
        let other = LinkId {
            from: 3,
            dim: 1,
            plus: true,
        };
        assert!(!w.covers(&other, 150), "direction must match");
    }

    #[test]
    fn route_down_detection() {
        let mut p = FaultPlan::none();
        p.link_down.push(LinkDownWindow {
            node: 0,
            dim: 0,
            plus: true,
            from_ns: 0,
            until_ns: 1000,
        });
        let hit = LinkId {
            from: 0,
            dim: 0,
            plus: true,
        };
        let miss = LinkId {
            from: 1,
            dim: 0,
            plus: true,
        };
        assert!(p.route_is_down(&[miss, hit], 500));
        assert!(!p.route_is_down(&[miss], 500));
        assert!(!p.route_is_down(&[hit], 1000));
    }
}
