//! Deterministic fault injection for the simulated Gemini fabric.
//!
//! A [`FaultPlan`] describes, in advance, every way a run is allowed to go
//! wrong: per-link outage windows in virtual time, per-transaction drop and
//! corruption probabilities for each transfer mechanism, transient
//! registration-resource exhaustion, and completion-queue overruns. All
//! randomness flows through a [`sim_core::DetRng`] stream derived from the
//! plan's own seed, so the same seed and plan reproduce the exact same
//! fault sequence — chaos runs are replayable bit for bit.
//!
//! The all-zeros plan ([`FaultPlan::none`]) is inert by construction: no
//! RNG is ever consulted, so enabling the machinery does not perturb
//! fault-free runs at all.

use crate::topology::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use sim_core::Time;

/// A scheduled outage of one directed torus link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDownWindow {
    /// Node owning the link (matches [`LinkId::from`]).
    pub node: NodeId,
    /// Torus dimension of the link (0 = x, 1 = y, 2 = z).
    pub dim: u8,
    /// Direction along the dimension.
    pub plus: bool,
    /// Outage start, inclusive (virtual ns).
    pub from_ns: Time,
    /// Outage end, exclusive (virtual ns).
    pub until_ns: Time,
}

impl LinkDownWindow {
    /// Does this window take `link` down at instant `at`?
    pub fn covers(&self, link: &LinkId, at: Time) -> bool {
        self.node == link.from
            && self.dim == link.dim
            && self.plus == link.plus
            && at >= self.from_ns
            && at < self.until_ns
    }
}

/// A scheduled whole-node crash. While the node is down its NIC stops
/// servicing every engine (SMSG, MSGQ, FMA, BTE) and all of its links go
/// dark: transactions from or to the node fail at the endpoint without
/// consulting the fault RNG, so plans whose only entries are crash windows
/// still leave fault-free transactions bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCrashWindow {
    /// The node that crashes.
    pub node: NodeId,
    /// Crash instant, inclusive (virtual ns).
    pub at_ns: Time,
    /// If `Some(d)`, a fresh incarnation of the node boots `d` ns after the
    /// crash (with all volatile state lost). `None` means the node never
    /// comes back and its work must be redistributed.
    pub restart_after_ns: Option<Time>,
}

impl NodeCrashWindow {
    /// Absolute restart instant, if the node restarts at all.
    pub fn restart_at(&self) -> Option<Time> {
        self.restart_after_ns.map(|d| self.at_ns.saturating_add(d))
    }

    /// Is `node` down under this window at instant `at`?
    pub fn covers(&self, node: NodeId, at: Time) -> bool {
        self.node == node
            && at >= self.at_ns
            && match self.restart_at() {
                Some(r) => at < r,
                None => true,
            }
    }
}

/// How a transaction failed, as observed by the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Every minimal route crossed a link inside a down window; nothing was
    /// transmitted.
    LinkDown,
    /// One endpoint node was crashed at the time of the transaction; the
    /// NIC never serviced it.
    NodeDown,
    /// The transaction was lost in flight: no data reached the destination.
    Dropped,
    /// The data reached the destination but the completion/ack was
    /// corrupted: the sender must assume failure and resend, so receivers
    /// need duplicate suppression.
    CorruptDelivered,
}

/// Why a [`FaultPlan`] failed [`FaultPlan::validate`]. An invalid plan must
/// be rejected up front: running it would silently skew the fault RNG
/// stream (probabilities clamp inside the fabric) and break replayability
/// claims.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A probability field is outside `[0, 1]` (or NaN).
    ProbabilityOutOfRange {
        /// Which field, e.g. `"smsg_drop"`.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `drop + corrupt` for one mechanism exceeds 1, so the two outcomes
    /// cannot be disjoint events of one RNG draw.
    DropCorruptBudget {
        /// Which mechanism, e.g. `"smsg"`.
        mechanism: &'static str,
        /// The offending sum.
        sum: f64,
    },
    /// A link-down window is empty or inverted (`until_ns <= from_ns`).
    EmptyLinkWindow {
        /// Index into [`FaultPlan::link_down`].
        index: usize,
    },
    /// Two crash windows name the same node; a node crashes at most once
    /// per run.
    DuplicateCrash {
        /// The node named twice.
        node: NodeId,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::ProbabilityOutOfRange { field, value } => {
                write!(
                    f,
                    "fault plan: `{field}` = {value} is not a probability in [0, 1]"
                )
            }
            FaultPlanError::DropCorruptBudget { mechanism, sum } => {
                write!(
                    f,
                    "fault plan: {mechanism} drop + corrupt = {sum} > 1; the outcomes must be \
                     disjoint events of one RNG draw"
                )
            }
            FaultPlanError::EmptyLinkWindow { index } => {
                write!(
                    f,
                    "fault plan: link_down[{index}] is empty (until_ns <= from_ns)"
                )
            }
            FaultPlanError::DuplicateCrash { node } => {
                write!(f, "fault plan: node {node} has more than one crash window")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Complete fault-injection schedule for one run.
///
/// Probabilities are per transaction in `[0, 1]`; `drop` and `corrupt` for
/// one mechanism must sum to at most 1. The plan travels on
/// [`crate::GeminiParams`] so every experiment config captures its chaos
/// settings alongside its timing calibration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the dedicated fault RNG stream (independent of all other
    /// simulation randomness).
    pub seed: u64,
    /// SMSG/MSGQ per-message drop probability.
    pub smsg_drop: f64,
    /// SMSG/MSGQ per-message corrupt-delivery probability.
    pub smsg_corrupt: f64,
    /// FMA per-transaction drop probability.
    pub fma_drop: f64,
    /// FMA per-transaction corrupt-delivery probability.
    pub fma_corrupt: f64,
    /// BTE per-transaction drop probability.
    pub bte_drop: f64,
    /// BTE per-transaction corrupt-delivery probability.
    pub bte_corrupt: f64,
    /// Probability that one `GNI_MemRegister` call transiently fails with a
    /// resource error (NIC MDD/TLB exhaustion).
    pub reg_fail: f64,
    /// Completion-queue capacity in events; 0 means unlimited. Events posted
    /// beyond this depth overrun the CQ (GNI_CQ_OVERRUN semantics).
    pub cq_depth: u32,
    /// Force exactly one CQ overrun on the first event posted at/after this
    /// instant, regardless of depth (deterministic overrun drills).
    pub force_cq_overrun_at: Option<Time>,
    /// Scheduled link outages.
    pub link_down: Vec<LinkDownWindow>,
    /// Scheduled whole-node crashes (at most one window per node).
    pub node_crash: Vec<NodeCrashWindow>,
}

impl FaultPlan {
    /// The inert plan: nothing ever fails, and no RNG is consulted.
    pub fn none() -> Self {
        Self::default()
    }

    /// A uniform plan: the same drop probability for every mechanism.
    /// Convenient for sweeps.
    pub fn uniform_drop(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            smsg_drop: p,
            fma_drop: p,
            bte_drop: p,
            ..Self::none()
        }
    }

    /// Does this plan inject anything at all?
    ///
    /// Written as a full destructure — no `..` — so adding a field to
    /// [`FaultPlan`] without deciding whether it activates the plan is a
    /// compile error, not a silent bug (`seed` alone is the one field that
    /// intentionally does not activate anything).
    pub fn is_active(&self) -> bool {
        let FaultPlan {
            seed: _,
            smsg_drop,
            smsg_corrupt,
            fma_drop,
            fma_corrupt,
            bte_drop,
            bte_corrupt,
            reg_fail,
            cq_depth,
            force_cq_overrun_at,
            link_down,
            node_crash,
        } = self;
        *smsg_drop > 0.0
            || *smsg_corrupt > 0.0
            || *fma_drop > 0.0
            || *fma_corrupt > 0.0
            || *bte_drop > 0.0
            || *bte_corrupt > 0.0
            || *reg_fail > 0.0
            || *cq_depth > 0
            || force_cq_overrun_at.is_some()
            || !link_down.is_empty()
            || !node_crash.is_empty()
    }

    /// Check the plan's documented invariants; an `Err` plan must not run.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let probs: [(&'static str, f64); 7] = [
            ("smsg_drop", self.smsg_drop),
            ("smsg_corrupt", self.smsg_corrupt),
            ("fma_drop", self.fma_drop),
            ("fma_corrupt", self.fma_corrupt),
            ("bte_drop", self.bte_drop),
            ("bte_corrupt", self.bte_corrupt),
            ("reg_fail", self.reg_fail),
        ];
        for (field, value) in probs {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultPlanError::ProbabilityOutOfRange { field, value });
            }
        }
        let budgets: [(&'static str, f64); 3] = [
            ("smsg", self.smsg_drop + self.smsg_corrupt),
            ("fma", self.fma_drop + self.fma_corrupt),
            ("bte", self.bte_drop + self.bte_corrupt),
        ];
        for (mechanism, sum) in budgets {
            if sum > 1.0 {
                return Err(FaultPlanError::DropCorruptBudget { mechanism, sum });
            }
        }
        for (index, w) in self.link_down.iter().enumerate() {
            if w.until_ns <= w.from_ns {
                return Err(FaultPlanError::EmptyLinkWindow { index });
            }
        }
        for (i, w) in self.node_crash.iter().enumerate() {
            if self.node_crash[..i].iter().any(|p| p.node == w.node) {
                return Err(FaultPlanError::DuplicateCrash { node: w.node });
            }
        }
        Ok(())
    }

    /// Does the plan crash any node at all?
    pub fn has_node_crash(&self) -> bool {
        !self.node_crash.is_empty()
    }

    /// Is `node` inside a crash window (down) at instant `at`?
    pub fn node_is_down(&self, node: NodeId, at: Time) -> bool {
        self.node_crash.iter().any(|w| w.covers(node, at))
    }

    /// Is `node` dead at `at` with no restart ever coming? Retry loops use
    /// this to give up instead of backing off forever against a peer that
    /// cannot answer.
    pub fn node_dead_forever(&self, node: NodeId, at: Time) -> bool {
        self.node_crash
            .iter()
            .any(|w| w.node == node && at >= w.at_ns && w.restart_after_ns.is_none())
    }

    /// Is `link` inside any down window at `at`?
    pub fn link_is_down(&self, link: &LinkId, at: Time) -> bool {
        self.link_down.iter().any(|w| w.covers(link, at))
    }

    /// Does any link of `route` cross a down window at `at`?
    pub fn route_is_down(&self, route: &[LinkId], at: Time) -> bool {
        if self.link_down.is_empty() {
            return false;
        }
        route.iter().any(|l| self.link_is_down(l, at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::default().is_active());
    }

    #[test]
    fn any_field_activates() {
        let mut p = FaultPlan::none();
        p.smsg_drop = 1e-3;
        assert!(p.is_active());
        let mut p = FaultPlan::none();
        p.cq_depth = 4;
        assert!(p.is_active());
        let mut p = FaultPlan::none();
        p.force_cq_overrun_at = Some(0);
        assert!(p.is_active());
        assert!(FaultPlan::uniform_drop(1, 0.5).is_active());
        let mut p = FaultPlan::none();
        p.node_crash.push(NodeCrashWindow {
            node: 1,
            at_ns: 1_000,
            restart_after_ns: None,
        });
        assert!(p.is_active(), "a crash window alone must activate the plan");
    }

    /// Exhaustiveness companion to the destructure inside `is_active`: mass-
    /// assigning every field and checking each non-seed one flips the plan
    /// active. The destructure is the compile-time guard; this pins the
    /// runtime behaviour of each field.
    #[test]
    fn every_field_is_audited_by_is_active() {
        let seeded = FaultPlan {
            seed: 42,
            ..FaultPlan::none()
        };
        assert!(!seeded.is_active(), "seed alone must stay inert");
        let single = |f: fn(&mut FaultPlan)| {
            let mut p = FaultPlan::none();
            f(&mut p);
            assert!(p.is_active(), "field left out of is_active audit");
        };
        single(|p| p.smsg_drop = 0.1);
        single(|p| p.smsg_corrupt = 0.1);
        single(|p| p.fma_drop = 0.1);
        single(|p| p.fma_corrupt = 0.1);
        single(|p| p.bte_drop = 0.1);
        single(|p| p.bte_corrupt = 0.1);
        single(|p| p.reg_fail = 0.1);
        single(|p| p.cq_depth = 1);
        single(|p| p.force_cq_overrun_at = Some(5));
        single(|p| {
            p.link_down.push(LinkDownWindow {
                node: 0,
                dim: 0,
                plus: true,
                from_ns: 0,
                until_ns: 1,
            })
        });
        single(|p| {
            p.node_crash.push(NodeCrashWindow {
                node: 0,
                at_ns: 0,
                restart_after_ns: Some(1),
            })
        });
    }

    #[test]
    fn validate_accepts_sane_plans() {
        assert_eq!(FaultPlan::none().validate(), Ok(()));
        let mut p = FaultPlan::uniform_drop(7, 0.5);
        p.smsg_corrupt = 0.5;
        assert_eq!(p.validate(), Ok(()), "drop + corrupt == 1 is allowed");
    }

    #[test]
    fn validate_rejects_drop_corrupt_over_budget() {
        let mut p = FaultPlan::none();
        p.bte_drop = 0.7;
        p.bte_corrupt = 0.5;
        assert_eq!(
            p.validate(),
            Err(FaultPlanError::DropCorruptBudget {
                mechanism: "bte",
                sum: 1.2
            })
        );
    }

    #[test]
    fn validate_rejects_bad_probability_and_windows() {
        let mut p = FaultPlan::none();
        p.reg_fail = 1.5;
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::ProbabilityOutOfRange {
                field: "reg_fail",
                ..
            })
        ));
        let mut p = FaultPlan::none();
        p.smsg_drop = -0.1;
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::ProbabilityOutOfRange {
                field: "smsg_drop",
                ..
            })
        ));
        let mut p = FaultPlan::none();
        p.link_down.push(LinkDownWindow {
            node: 0,
            dim: 0,
            plus: true,
            from_ns: 100,
            until_ns: 100,
        });
        assert_eq!(
            p.validate(),
            Err(FaultPlanError::EmptyLinkWindow { index: 0 })
        );
        let mut p = FaultPlan::none();
        for _ in 0..2 {
            p.node_crash.push(NodeCrashWindow {
                node: 3,
                at_ns: 50,
                restart_after_ns: None,
            });
        }
        assert_eq!(
            p.validate(),
            Err(FaultPlanError::DuplicateCrash { node: 3 })
        );
    }

    #[test]
    fn crash_window_coverage_and_restart() {
        let w = NodeCrashWindow {
            node: 2,
            at_ns: 1_000,
            restart_after_ns: Some(500),
        };
        assert_eq!(w.restart_at(), Some(1_500));
        assert!(!w.covers(2, 999));
        assert!(w.covers(2, 1_000));
        assert!(w.covers(2, 1_499));
        assert!(!w.covers(2, 1_500), "restart instant is back up");
        assert!(!w.covers(1, 1_200), "other nodes unaffected");

        let forever = NodeCrashWindow {
            node: 2,
            at_ns: 1_000,
            restart_after_ns: None,
        };
        assert_eq!(forever.restart_at(), None);
        assert!(forever.covers(2, u64::MAX));

        let mut p = FaultPlan::none();
        p.node_crash.push(w);
        assert!(p.node_is_down(2, 1_200));
        assert!(!p.node_is_down(2, 2_000));
        assert!(!p.node_dead_forever(2, 1_200), "restart is coming");
        p.node_crash.push(NodeCrashWindow {
            node: 4,
            at_ns: 10,
            restart_after_ns: None,
        });
        assert!(p.node_dead_forever(4, 10));
        assert!(!p.node_dead_forever(4, 9));
    }

    #[test]
    fn window_covers_matching_link_in_interval() {
        let w = LinkDownWindow {
            node: 3,
            dim: 1,
            plus: false,
            from_ns: 100,
            until_ns: 200,
        };
        let link = LinkId {
            from: 3,
            dim: 1,
            plus: false,
        };
        assert!(w.covers(&link, 100));
        assert!(w.covers(&link, 199));
        assert!(!w.covers(&link, 99));
        assert!(!w.covers(&link, 200), "until is exclusive");
        let other = LinkId {
            from: 3,
            dim: 1,
            plus: true,
        };
        assert!(!w.covers(&other, 150), "direction must match");
    }

    #[test]
    fn route_down_detection() {
        let mut p = FaultPlan::none();
        p.link_down.push(LinkDownWindow {
            node: 0,
            dim: 0,
            plus: true,
            from_ns: 0,
            until_ns: 1000,
        });
        let hit = LinkId {
            from: 0,
            dim: 0,
            plus: true,
        };
        let miss = LinkId {
            from: 1,
            dim: 0,
            plus: true,
        };
        assert!(p.route_is_down(&[miss, hit], 500));
        assert!(!p.route_is_down(&[miss], 500));
        assert!(!p.route_is_down(&[hit], 1000));
    }
}
