//! 3D torus topology and dimension-ordered routing.
//!
//! Gemini builds "a three-dimensional torus of connected nodes" (paper
//! §II-A). We model one router per node (the real ASIC serves two nodes;
//! that factor is folded into link bandwidth) and route packets
//! dimension-ordered (x, then y, then z), taking the shorter way around
//! each ring. Real Gemini routes packet-by-packet adaptively; deterministic
//! DOR keeps the simulation reproducible while preserving hop counts and
//! locality, which is what latency depends on.

use serde::{Deserialize, Serialize};

/// Node index in `0..num_nodes`.
pub type NodeId = u32;

/// A directed link: from node `from`, along `dim` (0=x,1=y,2=z), in `dir`
/// (+1 or -1 step around the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId {
    pub from: NodeId,
    pub dim: u8,
    pub plus: bool,
}

/// The torus: dimensions and coordinate conversion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Torus {
    pub dims: (u32, u32, u32),
}

impl Torus {
    pub fn new(dims: (u32, u32, u32)) -> Self {
        assert!(dims.0 > 0 && dims.1 > 0 && dims.2 > 0, "empty torus");
        Torus { dims }
    }

    pub fn num_nodes(&self) -> u32 {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Node id -> (x, y, z) coordinates.
    pub fn coords(&self, n: NodeId) -> (u32, u32, u32) {
        debug_assert!(n < self.num_nodes());
        let x = n % self.dims.0;
        let y = (n / self.dims.0) % self.dims.1;
        let z = n / (self.dims.0 * self.dims.1);
        (x, y, z)
    }

    /// (x, y, z) -> node id.
    pub fn node_at(&self, c: (u32, u32, u32)) -> NodeId {
        debug_assert!(c.0 < self.dims.0 && c.1 < self.dims.1 && c.2 < self.dims.2);
        c.0 + c.1 * self.dims.0 + c.2 * self.dims.0 * self.dims.1
    }

    /// Signed shortest step count along one ring of size `k` from `a` to
    /// `b`: positive means stepping in + direction.
    fn ring_delta(k: u32, a: u32, b: u32) -> i64 {
        let fwd = ((b + k - a) % k) as i64; // steps in + direction
        let bwd = fwd - k as i64; // negative: steps in - direction
        if fwd <= -bwd {
            fwd
        } else {
            bwd
        }
    }

    /// Minimal hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (Self::ring_delta(self.dims.0, ca.0, cb.0).unsigned_abs()
            + Self::ring_delta(self.dims.1, ca.1, cb.1).unsigned_abs()
            + Self::ring_delta(self.dims.2, ca.2, cb.2).unsigned_abs()) as u32
    }

    /// The dimension-ordered route from `a` to `b` as a list of directed
    /// links. Empty when `a == b`.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        self.route_ordered(a, b, [0, 1, 2])
    }

    /// Route correcting dimensions in the given order — the building block
    /// for adaptive routing (real Gemini routes "on a packet-by-packet
    /// basis to fully utilize the links"; we pick per-message among the
    /// minimal-length dimension orders).
    pub fn route_ordered(&self, a: NodeId, b: NodeId, order: [u8; 3]) -> Vec<LinkId> {
        let mut links = Vec::new();
        let mut cur = self.coords(a);
        let dst = self.coords(b);
        let dims = [self.dims.0, self.dims.1, self.dims.2];
        for dim in order {
            let k = dims[dim as usize];
            let (c, d) = match dim {
                0 => (cur.0, dst.0),
                1 => (cur.1, dst.1),
                _ => (cur.2, dst.2),
            };
            let mut delta = Self::ring_delta(k, c, d);
            while delta != 0 {
                let plus = delta > 0;
                let from = self.node_at(cur);
                links.push(LinkId { from, dim, plus });
                let step = |v: u32| -> u32 {
                    if plus {
                        (v + 1) % k
                    } else {
                        (v + k - 1) % k
                    }
                };
                match dim {
                    0 => cur.0 = step(cur.0),
                    1 => cur.1 = step(cur.1),
                    _ => cur.2 = step(cur.2),
                }
                delta += if plus { -1 } else { 1 };
            }
        }
        debug_assert_eq!(self.node_at(cur), b);
        links
    }

    /// Map a PE (core) id to its node, given cores per node.
    pub fn node_of_pe(&self, pe: u32, cores_per_node: u32) -> NodeId {
        pe / cores_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let t = Torus::new((4, 3, 5));
        for n in 0..t.num_nodes() {
            assert_eq!(t.node_at(t.coords(n)), n);
        }
    }

    #[test]
    fn self_route_is_empty() {
        let t = Torus::new((4, 4, 4));
        assert!(t.route(13, 13).is_empty());
        assert_eq!(t.hops(13, 13), 0);
    }

    #[test]
    fn neighbor_is_one_hop() {
        let t = Torus::new((4, 4, 4));
        let a = t.node_at((0, 0, 0));
        let b = t.node_at((1, 0, 0));
        assert_eq!(t.hops(a, b), 1);
        assert_eq!(t.route(a, b).len(), 1);
    }

    #[test]
    fn wraparound_takes_short_way() {
        let t = Torus::new((8, 1, 1));
        let a = t.node_at((0, 0, 0));
        let b = t.node_at((7, 0, 0));
        // 7 forward or 1 backward: must take 1 hop.
        assert_eq!(t.hops(a, b), 1);
        let r = t.route(a, b);
        assert_eq!(r.len(), 1);
        assert!(!r[0].plus, "should step in the - direction");
    }

    #[test]
    fn route_length_equals_hops() {
        let t = Torus::new((5, 4, 3));
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.route(a, b).len() as u32, t.hops(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn hops_symmetric() {
        let t = Torus::new((5, 4, 3));
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn max_hops_bounded_by_half_dims() {
        let t = Torus::new((6, 4, 2));
        let bound = 6 / 2 + 4 / 2 + 2 / 2;
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert!(t.hops(a, b) <= bound);
            }
        }
    }

    #[test]
    fn ordered_routes_are_minimal_and_distinct() {
        let t = Torus::new((4, 4, 4));
        let a = t.node_at((0, 0, 0));
        let b = t.node_at((2, 2, 0));
        let r_xy = t.route_ordered(a, b, [0, 1, 2]);
        let r_yx = t.route_ordered(a, b, [1, 0, 2]);
        assert_eq!(r_xy.len(), r_yx.len(), "both minimal");
        assert_ne!(r_xy, r_yx, "different intermediate links");
        assert_eq!(r_xy.len() as u32, t.hops(a, b));
    }

    #[test]
    fn pe_to_node_mapping() {
        let t = Torus::new((2, 2, 2));
        assert_eq!(t.node_of_pe(0, 24), 0);
        assert_eq!(t.node_of_pe(23, 24), 0);
        assert_eq!(t.node_of_pe(24, 24), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn torus_strategy() -> impl Strategy<Value = Torus> {
        (1u32..6, 1u32..6, 1u32..6).prop_map(Torus::new)
    }

    proptest! {
        /// Routes are valid walks: consecutive links chain, and the walk
        /// ends at the destination.
        #[test]
        fn routes_are_connected_walks(t in torus_strategy(), seed in 0u64..1000) {
            let n = t.num_nodes() as u64;
            let a = (seed % n) as NodeId;
            let b = ((seed / n) % n) as NodeId;
            let route = t.route(a, b);
            let mut cur = a;
            for l in &route {
                prop_assert_eq!(l.from, cur);
                let c = t.coords(cur);
                let dims = [t.dims.0, t.dims.1, t.dims.2];
                let k = dims[l.dim as usize];
                let step = |v: u32| if l.plus { (v + 1) % k } else { (v + k - 1) % k };
                cur = match l.dim {
                    0 => t.node_at((step(c.0), c.1, c.2)),
                    1 => t.node_at((c.0, step(c.1), c.2)),
                    _ => t.node_at((c.0, c.1, step(c.2))),
                };
            }
            prop_assert_eq!(cur, b);
        }

        /// Triangle inequality on hop distance.
        #[test]
        fn hops_triangle_inequality(t in torus_strategy(), seed in 0u64..100_000) {
            let n = t.num_nodes() as u64;
            let a = (seed % n) as NodeId;
            let b = ((seed / n) % n) as NodeId;
            let c = ((seed / (n * n)) % n) as NodeId;
            prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        }
    }
}
