//! 3D torus topology and dimension-ordered routing.
//!
//! Gemini builds "a three-dimensional torus of connected nodes" (paper
//! §II-A). We model one router per node (the real ASIC serves two nodes;
//! that factor is folded into link bandwidth) and route packets
//! dimension-ordered (x, then y, then z), taking the shorter way around
//! each ring. Real Gemini routes packet-by-packet adaptively; deterministic
//! DOR keeps the simulation reproducible while preserving hop counts and
//! locality, which is what latency depends on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Node index in `0..num_nodes`.
pub type NodeId = u32;

/// Why a torus (or the PE space laid over it) cannot be constructed.
///
/// `NodeId`/PE ids are `u32`; dimension products are computed in `u64`
/// internally and rejected here instead of wrapping silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// Some dimension is zero — the torus would contain no nodes.
    EmptyDim { dims: (u32, u32, u32) },
    /// `x * y * z` does not fit a `u32` node id.
    NodeOverflow { dims: (u32, u32, u32), nodes: u64 },
    /// `num_nodes * cores_per_node` does not fit a `u32` PE id.
    PeOverflow {
        nodes: u32,
        cores_per_node: u32,
        pes: u64,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyError::EmptyDim { dims } => {
                write!(f, "empty torus: dims {dims:?} contain a zero")
            }
            TopologyError::NodeOverflow { dims, nodes } => write!(
                f,
                "torus {dims:?} has {nodes} nodes, exceeding the u32 NodeId space"
            ),
            TopologyError::PeOverflow {
                nodes,
                cores_per_node,
                pes,
            } => write!(
                f,
                "{nodes} nodes x {cores_per_node} cores = {pes} PEs, exceeding the u32 PE-id space"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A directed link: from node `from`, along `dim` (0=x,1=y,2=z), in `dir`
/// (+1 or -1 step around the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId {
    pub from: NodeId,
    pub dim: u8,
    pub plus: bool,
}

/// The torus: dimensions and coordinate conversion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    pub dims: (u32, u32, u32),
}

impl Torus {
    /// Validated constructor: every dim positive and `x*y*z` within the
    /// `u32` NodeId space (the product is taken in `u64` so large dims are
    /// rejected instead of wrapping).
    pub fn try_new(dims: (u32, u32, u32)) -> Result<Self, TopologyError> {
        if dims.0 == 0 || dims.1 == 0 || dims.2 == 0 {
            return Err(TopologyError::EmptyDim { dims });
        }
        let nodes = dims.0 as u64 * dims.1 as u64 * dims.2 as u64;
        if nodes > u32::MAX as u64 {
            return Err(TopologyError::NodeOverflow { dims, nodes });
        }
        Ok(Torus { dims })
    }

    /// Panicking constructor for in-range dims (the common path in tests
    /// and calibrated configs).
    pub fn new(dims: (u32, u32, u32)) -> Self {
        match Self::try_new(dims) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    pub fn num_nodes(&self) -> u32 {
        // `try_new` guarantees the u64 product fits; recompute widened so
        // a hand-built `Torus { dims }` (e.g. via Deserialize) still can't
        // wrap silently.
        let n = self.dims.0 as u64 * self.dims.1 as u64 * self.dims.2 as u64;
        debug_assert!(n <= u32::MAX as u64, "torus dims overflow NodeId");
        n as u32
    }

    /// Total PE count for `cores_per_node` cores laid over this torus,
    /// rejecting products that exceed the `u32` PE-id space.
    pub fn num_pes(&self, cores_per_node: u32) -> Result<u32, TopologyError> {
        let nodes = self.num_nodes();
        let pes = nodes as u64 * cores_per_node as u64;
        if pes > u32::MAX as u64 {
            return Err(TopologyError::PeOverflow {
                nodes,
                cores_per_node,
                pes,
            });
        }
        Ok(pes as u32)
    }

    /// Node id -> (x, y, z) coordinates.
    pub fn coords(&self, n: NodeId) -> (u32, u32, u32) {
        debug_assert!(n < self.num_nodes());
        let plane = self.dims.0 as u64 * self.dims.1 as u64;
        let x = n % self.dims.0;
        let y = (n / self.dims.0) % self.dims.1;
        let z = (n as u64 / plane) as u32;
        (x, y, z)
    }

    /// (x, y, z) -> node id.
    pub fn node_at(&self, c: (u32, u32, u32)) -> NodeId {
        debug_assert!(c.0 < self.dims.0 && c.1 < self.dims.1 && c.2 < self.dims.2);
        let n = c.0 as u64
            + c.1 as u64 * self.dims.0 as u64
            + c.2 as u64 * self.dims.0 as u64 * self.dims.1 as u64;
        n as NodeId
    }

    /// Signed shortest step count along one ring of size `k` from `a` to
    /// `b`: positive means stepping in + direction.
    fn ring_delta(k: u32, a: u32, b: u32) -> i64 {
        let fwd = ((b + k - a) % k) as i64; // steps in + direction
        let bwd = fwd - k as i64; // negative: steps in - direction
        if fwd <= -bwd {
            fwd
        } else {
            bwd
        }
    }

    /// Minimal hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (Self::ring_delta(self.dims.0, ca.0, cb.0).unsigned_abs()
            + Self::ring_delta(self.dims.1, ca.1, cb.1).unsigned_abs()
            + Self::ring_delta(self.dims.2, ca.2, cb.2).unsigned_abs()) as u32
    }

    /// The dimension-ordered route from `a` to `b` as a list of directed
    /// links. Empty when `a == b`.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        self.route_ordered(a, b, [0, 1, 2])
    }

    /// Route correcting dimensions in the given order — the building block
    /// for adaptive routing (real Gemini routes "on a packet-by-packet
    /// basis to fully utilize the links"; we pick per-message among the
    /// minimal-length dimension orders).
    pub fn route_ordered(&self, a: NodeId, b: NodeId, order: [u8; 3]) -> Vec<LinkId> {
        let mut links = Vec::new();
        let mut cur = self.coords(a);
        let dst = self.coords(b);
        let dims = [self.dims.0, self.dims.1, self.dims.2];
        for dim in order {
            let k = dims[dim as usize];
            let (c, d) = match dim {
                0 => (cur.0, dst.0),
                1 => (cur.1, dst.1),
                _ => (cur.2, dst.2),
            };
            let mut delta = Self::ring_delta(k, c, d);
            while delta != 0 {
                let plus = delta > 0;
                let from = self.node_at(cur);
                links.push(LinkId { from, dim, plus });
                let step = |v: u32| -> u32 {
                    if plus {
                        (v + 1) % k
                    } else {
                        (v + k - 1) % k
                    }
                };
                match dim {
                    0 => cur.0 = step(cur.0),
                    1 => cur.1 = step(cur.1),
                    _ => cur.2 = step(cur.2),
                }
                delta += if plus { -1 } else { 1 };
            }
        }
        debug_assert_eq!(self.node_at(cur), b);
        links
    }

    /// Map a PE (core) id to its node, given cores per node.
    pub fn node_of_pe(&self, pe: u32, cores_per_node: u32) -> NodeId {
        pe / cores_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let t = Torus::new((4, 3, 5));
        for n in 0..t.num_nodes() {
            assert_eq!(t.node_at(t.coords(n)), n);
        }
    }

    #[test]
    fn self_route_is_empty() {
        let t = Torus::new((4, 4, 4));
        assert!(t.route(13, 13).is_empty());
        assert_eq!(t.hops(13, 13), 0);
    }

    #[test]
    fn neighbor_is_one_hop() {
        let t = Torus::new((4, 4, 4));
        let a = t.node_at((0, 0, 0));
        let b = t.node_at((1, 0, 0));
        assert_eq!(t.hops(a, b), 1);
        assert_eq!(t.route(a, b).len(), 1);
    }

    #[test]
    fn wraparound_takes_short_way() {
        let t = Torus::new((8, 1, 1));
        let a = t.node_at((0, 0, 0));
        let b = t.node_at((7, 0, 0));
        // 7 forward or 1 backward: must take 1 hop.
        assert_eq!(t.hops(a, b), 1);
        let r = t.route(a, b);
        assert_eq!(r.len(), 1);
        assert!(!r[0].plus, "should step in the - direction");
    }

    #[test]
    fn route_length_equals_hops() {
        let t = Torus::new((5, 4, 3));
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.route(a, b).len() as u32, t.hops(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn hops_symmetric() {
        let t = Torus::new((5, 4, 3));
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn max_hops_bounded_by_half_dims() {
        let t = Torus::new((6, 4, 2));
        let bound = 6 / 2 + 4 / 2 + 2 / 2;
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert!(t.hops(a, b) <= bound);
            }
        }
    }

    #[test]
    fn ordered_routes_are_minimal_and_distinct() {
        let t = Torus::new((4, 4, 4));
        let a = t.node_at((0, 0, 0));
        let b = t.node_at((2, 2, 0));
        let r_xy = t.route_ordered(a, b, [0, 1, 2]);
        let r_yx = t.route_ordered(a, b, [1, 0, 2]);
        assert_eq!(r_xy.len(), r_yx.len(), "both minimal");
        assert_ne!(r_xy, r_yx, "different intermediate links");
        assert_eq!(r_xy.len() as u32, t.hops(a, b));
    }

    #[test]
    fn pe_to_node_mapping() {
        let t = Torus::new((2, 2, 2));
        assert_eq!(t.node_of_pe(0, 24), 0);
        assert_eq!(t.node_of_pe(23, 24), 0);
        assert_eq!(t.node_of_pe(24, 24), 1);
    }

    #[test]
    fn zero_dim_is_typed_error() {
        assert_eq!(
            Torus::try_new((4, 0, 4)),
            Err(TopologyError::EmptyDim { dims: (4, 0, 4) })
        );
    }

    #[test]
    fn node_count_at_u32_boundary_is_exact() {
        // 2^16 * 2^16 * 1 = 2^32 - must be rejected, not wrap to 0.
        let over = Torus::try_new((1 << 16, 1 << 16, 1));
        assert_eq!(
            over,
            Err(TopologyError::NodeOverflow {
                dims: (1 << 16, 1 << 16, 1),
                nodes: 1u64 << 32,
            })
        );
        // One ring shorter fits exactly.
        let t = Torus::try_new((1 << 16, (1 << 16) - 1, 1)).unwrap();
        assert_eq!(t.num_nodes() as u64, (1u64 << 16) * ((1u64 << 16) - 1));
    }

    #[test]
    fn coords_round_trip_near_u32_boundary() {
        // Largest-index nodes of a near-max torus: the old u32 products in
        // coords()/node_at() would have wrapped here for larger dims.
        let t = Torus::try_new((65536, 32767, 2)).unwrap();
        assert_eq!(t.num_nodes() as u64, 65536u64 * 32767 * 2);
        for n in [0, 1, t.num_nodes() - 1, t.num_nodes() / 2] {
            assert_eq!(t.node_at(t.coords(n)), n);
        }
    }

    #[test]
    fn pe_space_overflow_is_typed_error() {
        let t = Torus::try_new((1024, 1024, 1024)).unwrap(); // 2^30 nodes
        assert_eq!(t.num_pes(1).unwrap(), 1 << 30);
        // 2^30 * 4 = 2^32 overflows the PE-id space by exactly one:
        assert!(matches!(
            t.num_pes(4),
            Err(TopologyError::PeOverflow { pes, .. }) if pes == 1u64 << 32
        ));
        assert!(matches!(
            t.num_pes(24),
            Err(TopologyError::PeOverflow { .. })
        ));
        // Hopper itself is comfortably in range.
        let hopper = Torus::try_new((16, 21, 19)).unwrap();
        assert_eq!(hopper.num_pes(24).unwrap(), 16 * 21 * 19 * 24);
    }

    #[test]
    #[should_panic(expected = "exceeding the u32 NodeId space")]
    fn new_panics_with_typed_message_on_overflow() {
        let _ = Torus::new((1 << 16, 1 << 16, 2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn torus_strategy() -> impl Strategy<Value = Torus> {
        (1u32..6, 1u32..6, 1u32..6).prop_map(Torus::new)
    }

    proptest! {
        /// Routes are valid walks: consecutive links chain, and the walk
        /// ends at the destination.
        #[test]
        fn routes_are_connected_walks(t in torus_strategy(), seed in 0u64..1000) {
            let n = t.num_nodes() as u64;
            let a = (seed % n) as NodeId;
            let b = ((seed / n) % n) as NodeId;
            let route = t.route(a, b);
            let mut cur = a;
            for l in &route {
                prop_assert_eq!(l.from, cur);
                let c = t.coords(cur);
                let dims = [t.dims.0, t.dims.1, t.dims.2];
                let k = dims[l.dim as usize];
                let step = |v: u32| if l.plus { (v + 1) % k } else { (v + k - 1) % k };
                cur = match l.dim {
                    0 => t.node_at((step(c.0), c.1, c.2)),
                    1 => t.node_at((c.0, step(c.1), c.2)),
                    _ => t.node_at((c.0, c.1, step(c.2))),
                };
            }
            prop_assert_eq!(cur, b);
        }

        /// Triangle inequality on hop distance.
        #[test]
        fn hops_triangle_inequality(t in torus_strategy(), seed in 0u64..100_000) {
            let n = t.num_nodes() as u64;
            let a = (seed % n) as NodeId;
            let b = ((seed / n) % n) as NodeId;
            let c = ((seed / (n * n)) % n) as NodeId;
            prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        }
    }
}
